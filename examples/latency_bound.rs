//! Latency-bound maintenance under overload (the paper's Figure 7 scenario):
//! replay the soccer stream into the operator faster than it can process,
//! with the overload detector and eSPICE load shedder in the loop, and show
//! that the event latency stays below the 1 second bound while hovering
//! around `f · LB`.
//!
//! Run with: `cargo run --release --example latency_bound`

use espice_repro::cep::{Operator, SelectionPolicy};
use espice_repro::datasets::{SoccerConfig, SoccerDataset};
use espice_repro::espice::{EspiceShedder, ModelBuilder, ModelConfig};
use espice_repro::events::{EventStream, SimDuration};
use espice_repro::runtime::{queries, LatencySimConfig, LatencySimulation};

fn main() {
    let dataset = SoccerDataset::generate(&SoccerConfig {
        duration_seconds: 1_200,
        ..SoccerConfig::default()
    });
    let query = queries::q1(&dataset, 5, SimDuration::from_secs(15), SelectionPolicy::First);

    // Train the utility model on the first half of the stream.
    let training = dataset.stream.slice(0, dataset.stream.len() / 2);
    let evaluation = dataset.stream.slice(dataset.stream.len() / 2, dataset.stream.len());
    let mut builder = ModelBuilder::new(ModelConfig::with_positions(780), dataset.registry.len());
    let mut operator = Operator::new(query.clone());
    let matches = operator.run(&training, &mut builder);
    for complex in &matches {
        builder.observe_complex(complex);
    }
    let model = builder.build();

    for (label, factor) in [("R1 (+20%)", 1.2), ("R2 (+40%)", 1.4)] {
        let throughput = 800.0;
        let simulation = LatencySimulation::new(LatencySimConfig {
            throughput,
            input_rate: throughput * factor,
            latency_bound: SimDuration::from_secs(1),
            f: 0.8,
            ..LatencySimConfig::default()
        });
        let mut shedder = EspiceShedder::new(model.clone());
        let outcome = simulation.run(&query, &evaluation, &mut shedder);
        let trace = &outcome.trace;

        println!("=== {label} ===");
        println!(
            "events: {}   shedding activations: {}   drop ratio: {:.1}%",
            trace.events,
            outcome.shedding_activations,
            trace.drop_ratio * 100.0
        );
        println!(
            "latency: mean {:.3} s, max {:.3} s, bound violations: {} -> bound {}",
            trace.mean_latency_secs,
            trace.max_latency.as_secs_f64(),
            trace.violations,
            if trace.bound_held() { "HELD" } else { "VIOLATED" }
        );
        println!("time (s) -> latency (s) samples:");
        for (t, l) in trace.samples.iter().take(20) {
            let bar_len = (l * 50.0).round() as usize;
            println!("  {t:>6.1}  {l:>5.3}  {}", "#".repeat(bar_len.min(60)));
        }
        println!();
    }
}

//! Stock-market monitoring: the paper's Q3 scenario (an ordered cascade of 20
//! correlated stock symbols) on the synthetic NYSE stream, comparing eSPICE
//! against the BL baseline and random shedding under a 20 % and a 40 %
//! overload.
//!
//! Run with: `cargo run --release --example stock_monitoring`

use espice_repro::cep::SelectionPolicy;
use espice_repro::datasets::{StockConfig, StockDataset};
use espice_repro::espice::ModelConfig;
use espice_repro::runtime::{queries, Experiment, ExperimentConfig, ShedderKind};

fn main() {
    // A two-hour synthetic trading session of 500 symbols (one quote per
    // minute per symbol), with five blue-chip leaders whose moves cascade into
    // their follower symbols.
    let dataset =
        StockDataset::generate(&StockConfig { duration_minutes: 120, ..StockConfig::default() });
    println!(
        "generated {} quote events for {} symbols",
        espice_repro::events::EventStream::len(&dataset.stream),
        dataset.symbols.len()
    );

    // Q3: rising quotes of 20 specific symbols in cascade order within a
    // 600-event window opened on every leading-symbol quote.
    let query = queries::q3(&dataset, 20, 600, SelectionPolicy::First);

    let config = ExperimentConfig { throughput: 1_000.0, ..ExperimentConfig::default() };
    let experiment = Experiment::train(
        std::slice::from_ref(&query),
        &dataset.stream,
        dataset.registry.len(),
        ModelConfig::with_positions(600),
        config,
    );
    println!(
        "model trained on {} windows, {} complex events, average window size {:.0}",
        experiment.model().windows_observed(),
        experiment.model().complex_events_observed(),
        experiment.model().average_window_size()
    );

    for (label, factor) in [("R1 (+20%)", 1.2), ("R2 (+40%)", 1.4)] {
        println!("\n=== overload {label} ===");
        let overloaded = experiment.with_overload_factor(factor);
        let outcomes = overloaded
            .compare(&query, &[ShedderKind::Espice, ShedderKind::Baseline, ShedderKind::Random]);
        for outcome in outcomes {
            println!(
                "{:>7}: dropped {:>5.1}% of assignments -> {:>6.2}% false negatives, {:>6.2}% false positives ({} ground-truth matches)",
                outcome.shedder.label(),
                outcome.drop_ratio * 100.0,
                outcome.false_negative_pct(),
                outcome.false_positive_pct(),
                outcome.metrics.ground_truth
            );
        }
    }
}

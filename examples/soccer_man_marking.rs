//! Soccer man-marking detection: the paper's Q1 scenario on the synthetic RTLS
//! stream — a striker possession followed by `n` distinct defender events
//! within 15 seconds — evaluated with eSPICE and BL under overload.
//!
//! Run with: `cargo run --release --example soccer_man_marking`

use espice_repro::cep::SelectionPolicy;
use espice_repro::datasets::{SoccerConfig, SoccerDataset};
use espice_repro::espice::ModelConfig;
use espice_repro::events::{EventStream, SimDuration};
use espice_repro::runtime::experiment::profile_average_window_size;
use espice_repro::runtime::{queries, Experiment, ExperimentConfig, ShedderKind};

fn main() {
    // Two hours of simulated play: two teams, a ball, referees, possession
    // episodes and converging defenders, at roughly 52 events per second. The
    // possession rate is raised a little so the stream contains enough
    // man-marking windows to train the utility model and to make the reported
    // percentages stable.
    let dataset = SoccerDataset::generate(&SoccerConfig {
        duration_seconds: 7_200,
        possession_probability: 0.12,
        ..SoccerConfig::default()
    });
    println!(
        "generated {} position/possession/defend events ({} event types)",
        dataset.stream.len(),
        dataset.registry.len()
    );

    for pattern_size in [2usize, 4, 6] {
        let query =
            queries::q1(&dataset, pattern_size, SimDuration::from_secs(15), SelectionPolicy::First);
        let positions = profile_average_window_size(&query, &dataset.stream).round() as usize;
        // Bin neighbouring positions (≈0.3 s per bin) so the utility
        // statistics stay dense on a two-hour training stream.
        let experiment = Experiment::train(
            std::slice::from_ref(&query),
            &dataset.stream,
            dataset.registry.len(),
            ModelConfig { positions, bin_size: 16, ..ModelConfig::default() },
            ExperimentConfig::default(),
        );

        println!("\n=== Q1 with {pattern_size} defenders (≈{positions} events per window) ===");
        for (label, factor) in [("R1", 1.2), ("R2", 1.4)] {
            let overloaded = experiment.with_overload_factor(factor);
            let outcomes =
                overloaded.compare(&query, &[ShedderKind::Espice, ShedderKind::Baseline]);
            for outcome in outcomes {
                println!(
                    "{label} {:>7}: {:>6.2}% false negatives, {:>6.2}% false positives ({} matches in ground truth)",
                    outcome.shedder.label(),
                    outcome.false_negative_pct(),
                    outcome.false_positive_pct(),
                    outcome.metrics.ground_truth
                );
            }
        }
    }
}

//! Quickstart: build a tiny CEP pipeline, train the eSPICE utility model and
//! shed load from a window-based query.
//!
//! Run with: `cargo run --release --example quickstart`

use espice_repro::cep::{KeepAll, Operator, Pattern, PatternStep, Query, WindowSpec};
use espice_repro::espice::{EspiceShedder, ModelBuilder, ModelConfig, OverloadConfig, ShedPlanner};
use espice_repro::events::{
    AttributeValue, Event, EventStream, Timestamp, TypeRegistry, VecStream,
};
use espice_repro::runtime::QualityMetrics;

fn main() {
    // 1. Define the event types and a simple query: a purchase followed by two
    //    distinct shipment events within a 10-event window.
    let mut registry = TypeRegistry::new();
    let purchase = registry.intern("PURCHASE");
    let shipment_a = registry.intern("SHIP_A");
    let shipment_b = registry.intern("SHIP_B");
    let telemetry = registry.intern("TELEMETRY");

    let query = Query::builder()
        .name("purchase-fulfilment")
        .pattern(Pattern::new(vec![
            PatternStep::single(purchase),
            PatternStep::any_of([shipment_a, shipment_b], 2, true),
        ]))
        .window(WindowSpec::count_on_types(vec![purchase], 10))
        .build();

    // 2. Generate a synthetic input stream: every 10 events one purchase,
    //    followed by its shipments, padded with telemetry noise.
    let mut events = Vec::new();
    let mut seq = 0u64;
    for block in 0..2_000u64 {
        let base = block * 10;
        for offset in 0..10u64 {
            let ty = match offset {
                0 => purchase,
                2 => shipment_a,
                5 => shipment_b,
                _ => telemetry,
            };
            events.push(
                Event::builder(ty, Timestamp::from_secs(base + offset))
                    .seq(seq)
                    .attr("block", AttributeValue::from(block as i64))
                    .build(),
            );
            seq += 1;
        }
    }
    let stream = VecStream::from_ordered(events);
    let training = stream.slice(0, stream.len() / 2);
    let evaluation = stream.slice(stream.len() / 2, stream.len());

    // 3. Train the utility model on the unshedded training prefix.
    let mut builder = ModelBuilder::new(ModelConfig::with_positions(10), registry.len());
    let mut operator = Operator::new(query.clone());
    let matches = operator.run(&training, &mut builder);
    for complex in &matches {
        builder.observe_complex(complex);
    }
    let model = builder.build();
    println!(
        "trained on {} windows / {} complex events",
        model.windows_observed(),
        model.complex_events_observed()
    );

    // 4. Ground truth on the evaluation suffix (no shedding).
    let mut operator = Operator::new(query.clone());
    let ground_truth = operator.run(&evaluation, &mut KeepAll);

    // 5. Shed 30 % of the input (as if the input rate were 1.43x the operator
    //    throughput) and compare against the ground truth.
    let planner = ShedPlanner::new(OverloadConfig::default(), 1_000.0);
    let plan = planner.plan(1_430.0, 10);
    let mut shedder = EspiceShedder::new(model);
    shedder.apply(plan);

    let mut operator = Operator::new(query);
    let detected = operator.run(&evaluation, &mut shedder);
    let metrics = QualityMetrics::compare(&ground_truth, &detected);

    println!(
        "shedding dropped {:.1}% of (event, window) assignments",
        operator.stats().drop_ratio() * 100.0
    );
    println!(
        "ground truth: {}  detected: {}  false negatives: {} ({:.1}%)  false positives: {} ({:.1}%)",
        metrics.ground_truth,
        metrics.detected,
        metrics.false_negatives,
        metrics.false_negative_pct(),
        metrics.false_positives,
        metrics.false_positive_pct()
    );
    assert!(
        metrics.false_negative_pct() < 20.0,
        "eSPICE should preserve most matches on this regular workload"
    );
}

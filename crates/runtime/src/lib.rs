//! Operator runtime and experiment driver for the eSPICE reproduction.
//!
//! The paper evaluates eSPICE on a Java CEP prototype running on a throttled
//! 8-core machine. This crate replaces the wall-clock testbed with a
//! deterministic discrete-event model while keeping the quantities the paper
//! reports:
//!
//! * [`queries`] — builds the four evaluation queries (Q1–Q4) against the
//!   synthetic datasets,
//! * [`metrics`] — false-positive / false-negative accounting against the
//!   unshedded ground truth, and latency traces,
//! * [`experiment`] — the train → ground truth → shed → compare pipeline used
//!   by all quality experiments (Figures 5, 6, 8, 9),
//! * [`simulation`] — a queueing simulation of the operator with the
//!   closed-loop overload controller in the loop (Figure 7) — the
//!   deterministic oracle for the streaming backend,
//! * [`streaming`] — the real streaming backend: per-shard closed-loop
//!   shedders over the engine's measured queues,
//! * [`adaptive`] — a common trait for shedders that can receive drop commands
//!   at run time,
//! * [`report`] — plain-text table rendering for the figure binaries.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
pub mod experiment;
pub mod metrics;
pub mod queries;
pub mod report;
pub mod simulation;
pub mod streaming;

pub use adaptive::AdaptiveShedder;
pub use experiment::{
    EngineBackend, Experiment, ExperimentConfig, QualityOutcome, QueueSummary, ShedderKind,
};
pub use metrics::{LatencyTrace, QualityMetrics};
pub use simulation::{LatencySimConfig, LatencySimulation, MultiSimulationOutcome};
pub use streaming::{
    run_closed_loop, run_closed_loop_live, run_closed_loop_resilient, run_closed_loop_set,
    ChurnAction, ClosedLoopShedder, LiveStreamingOutcome, MultiStreamingOutcome, QueryChurn,
    ResilientStreamingOutcome, ShardControlReport, StreamingOutcome, StreamingRunConfig,
};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::{
        AdaptiveShedder, ClosedLoopShedder, EngineBackend, Experiment, ExperimentConfig,
        LatencySimConfig, LatencySimulation, LatencyTrace, QualityMetrics, QualityOutcome,
        ShedderKind, StreamingOutcome, StreamingRunConfig,
    };
}

//! Running the real streaming backend with closed-loop overload control.
//!
//! This module glues the three layers of the streaming pipeline together:
//! the engine's bounded per-shard queues report *measured* queue state
//! ([`QueueSample`]) to their deciders; [`ClosedLoopShedder`] forwards each
//! sample to a per-shard [`QueueOverloadController`], which derives drain
//! throughput and input rate from the measurements and emits
//! [`ControlAction`]s; the wrapped [`AdaptiveShedder`] is switched on and
//! off accordingly. No precomputed throughput or input rate exists
//! anywhere in the loop — overload is whatever the shard's own queue says
//! it is. The deterministic counterpart of this wiring is the queueing
//! simulation ([`crate::simulation`]), which drives the *same* controller
//! from simulated time and serves as the test oracle.

use crate::adaptive::AdaptiveShedder;
use espice::{
    ControlAction, ControllerStats, OverloadConfig, QueueOverloadController, SharedThroughput,
    ShedPlanner,
};
use espice_cep::{
    BatchRequest, BoxedDecider, ComplexEvent, Decision, DropSet, EngineError, EngineStats,
    LifecycleReport, OwnershipPolicy, Query, QueryId, QuerySet, QueueSample, QueueStats,
    ResilienceOptions, ShardStatus, ShardedEngine, SharedDecider, WindowEventDecider, WindowMeta,
};
use espice_events::{Event, EventSource};
use std::sync::Arc;
use std::time::Duration;

/// A shedder with its own closed-loop overload controller: decisions are
/// delegated to the wrapped [`AdaptiveShedder`], and every [`QueueSample`]
/// the engine's drain loop reports is turned into an activation /
/// deactivation of that shedder, based purely on what the shard's queue
/// measured.
#[derive(Debug, Clone)]
pub struct ClosedLoopShedder<S> {
    inner: S,
    controller: QueueOverloadController,
}

impl<S: AdaptiveShedder> ClosedLoopShedder<S> {
    /// Wraps `shedder` with a controller configured by `overload`. The
    /// shedder starts (and stays) inactive until the measured queue crosses
    /// the activation threshold.
    pub fn new(shedder: S, overload: OverloadConfig) -> Self {
        ClosedLoopShedder { inner: shedder, controller: QueueOverloadController::new(overload) }
    }

    /// Like [`new`](Self::new), but the controller additionally shares its
    /// measured-throughput estimate with the other controllers of the same
    /// queue (the per-query controllers of one multi-query shard): the
    /// paper's `f·qmax` check now governs a queue that serves *all*
    /// queries, so the capacity estimate behind `qmax` must not fragment
    /// across them.
    pub fn with_shared_throughput(
        shedder: S,
        overload: OverloadConfig,
        shared: Arc<SharedThroughput>,
    ) -> Self {
        let mut controller = QueueOverloadController::new(overload);
        controller.share_throughput(shared);
        ClosedLoopShedder { inner: shedder, controller }
    }

    /// Declares that this shedder's query joins a drain loop that is
    /// already running (a mid-stream admission): the controller's first
    /// sample only aligns its baselines against the loop's cumulative
    /// clocks instead of misreading them as one giant measurement interval
    /// (see [`QueueOverloadController::join_in_progress`]). Call before
    /// handing the shedder to [`EngineControl::admit`].
    ///
    /// [`EngineControl::admit`]: espice_cep::EngineControl::admit
    pub fn join_in_progress(&mut self) {
        self.controller.join_in_progress();
    }

    /// The wrapped shedder.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The shard's overload controller (measured throughput, counters).
    pub fn controller(&self) -> &QueueOverloadController {
        &self.controller
    }
}

impl<S: AdaptiveShedder> WindowEventDecider for ClosedLoopShedder<S> {
    fn decide(&mut self, meta: &WindowMeta, position: usize, event: &Event) -> Decision {
        self.inner.decide(meta, position, event)
    }

    fn decide_batch(
        &mut self,
        event: &Event,
        requests: &[BatchRequest],
        decisions: &mut Vec<Decision>,
    ) {
        self.inner.decide_batch(event, requests, decisions);
    }

    fn decide_span(
        &mut self,
        meta: &WindowMeta,
        start_position: usize,
        events: &[Event],
        drops: &mut DropSet,
    ) -> usize {
        // Forwarded so a wrapped shedder's compiled span kernel (e.g.
        // [`EspiceShedder`](espice::EspiceShedder)) is reached from the
        // closed-loop path instead of falling back to per-event delegation.
        self.inner.decide_span(meta, start_position, events, drops)
    }

    fn window_closed(&mut self, meta: &WindowMeta, size: usize) {
        self.inner.window_closed(meta, size);
    }

    fn queue_sample(&mut self, sample: &QueueSample) {
        match self.controller.sample(sample) {
            Some(ControlAction::Shed(plan)) => self.inner.apply_plan(plan),
            Some(ControlAction::Resume) => self.inner.deactivate(),
            None => {}
        }
    }
}

/// Configuration of a closed-loop streaming run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingRunConfig {
    /// Number of engine shards (each with its own queue and controller).
    pub shards: usize,
    /// Capacity of each shard's bounded input queue, in hand-off slots
    /// (one slot carries a whole chunk on the chunked path). See
    /// [`sized`](Self::sized) to derive this from the overload parameters
    /// instead of hand-picking it.
    pub queue_capacity: usize,
    /// Events batched per shared chunk on the ingestion hand-off; 1
    /// selects the per-event broadcast. Output is invariant in this knob.
    pub chunk_capacity: usize,
    /// Overload parameters (latency bound, `f`, check interval). The check
    /// interval doubles as the engine's queue-sampling cadence.
    pub overload: OverloadConfig,
    /// Optional seed for the window-size prediction (time-based windows).
    pub window_size_hint: Option<usize>,
    /// Route each new window to the least-loaded shard
    /// ([`OwnershipPolicy::StealAtOpen`]) instead of the static modulo
    /// partition. Output is invariant in this knob; it only moves work
    /// between shards on skewed window populations.
    pub work_stealing: bool,
}

impl Default for StreamingRunConfig {
    fn default() -> Self {
        StreamingRunConfig {
            shards: 1,
            queue_capacity: espice_cep::DEFAULT_QUEUE_CAPACITY,
            chunk_capacity: espice_cep::DEFAULT_CHUNK_CAPACITY,
            overload: OverloadConfig::default(),
            window_size_hint: None,
            work_stealing: false,
        }
    }
}

impl StreamingRunConfig {
    /// Derives the queue and chunk capacities from the overload parameters
    /// and a drain-throughput estimate instead of hand-picked constants:
    /// the queue is sized to hold `qmax · (1 + burst_slack)` **events**
    /// ([`ShedPlanner::sized_event_capacity`]) so the measured depth can
    /// actually reach the `f · qmax` activation threshold before
    /// backpressure clips it, and the chunk size is capped at the shedding
    /// buffer `(1 − f) · qmax` so one batch cannot blow through the
    /// headroom between two depth samples.
    ///
    /// `throughput_hint` is the expected per-shard drain rate in events/s —
    /// a calibration run's measurement or a profiled figure. The controller
    /// still measures the real throughput online; the hint only sizes the
    /// buffers.
    ///
    /// # Panics
    ///
    /// Panics if the overload configuration is invalid or the hint is not
    /// positive and finite.
    pub fn sized(shards: usize, overload: OverloadConfig, throughput_hint: f64) -> Self {
        let planner = ShedPlanner::new(overload, throughput_hint);
        let chunk_capacity = espice_cep::DEFAULT_CHUNK_CAPACITY.min(planner.buffer_size()).max(1);
        StreamingRunConfig {
            shards,
            queue_capacity: planner.sized_queue_capacity(chunk_capacity),
            chunk_capacity,
            overload,
            window_size_hint: None,
            work_stealing: false,
        }
    }
}

/// Per-shard control outcome of a closed-loop run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardControlReport {
    /// The controller's counters (checks, `qmax` violations).
    pub stats: ControllerStats,
    /// How often shedding was (re-)activated on this shard.
    pub activations: u64,
    /// The final measured-throughput estimate, if the shard calibrated.
    pub measured_throughput: Option<f64>,
}

/// Everything a closed-loop streaming run reports.
#[derive(Debug, Clone)]
pub struct StreamingOutcome {
    /// The merged complex events, in single-operator emission order.
    pub complex_events: Vec<ComplexEvent>,
    /// Engine statistics (per-shard operator counters + merged totals).
    pub stats: EngineStats,
    /// Queue counters, one per shard: peak depth, backpressure events.
    pub queues: Vec<QueueStats>,
    /// Control outcomes, one per shard.
    pub control: Vec<ShardControlReport>,
}

impl StreamingOutcome {
    /// Total shedding activations across all shards.
    pub fn activations(&self) -> u64 {
        self.control.iter().map(|c| c.activations).sum()
    }

    /// Largest queue depth any shard ever reached, in **events** (with
    /// chunked hand-off one queue slot can carry a whole batch, so this can
    /// exceed the slot capacity).
    pub fn peak_queue_depth(&self) -> usize {
        self.queues.iter().map(|q| q.peak_event_depth as usize).max().unwrap_or(0)
    }
}

/// Everything a multi-query closed-loop streaming run reports: per-query
/// outputs and per-(shard, query) control reports over the shared shard
/// queues.
#[derive(Debug, Clone)]
pub struct MultiStreamingOutcome {
    /// Each query's complex events, indexed by query, in single-operator
    /// emission order.
    pub complex_events: Vec<Vec<ComplexEvent>>,
    /// Engine statistics: merged, per-shard and per-query counters.
    pub stats: EngineStats,
    /// Queue counters, one per shard (one queue serves all queries).
    pub queues: Vec<QueueStats>,
    /// Control outcomes, indexed `[shard][query]`.
    pub control: Vec<Vec<ShardControlReport>>,
}

impl MultiStreamingOutcome {
    /// Total shedding activations across all shards and queries.
    pub fn activations(&self) -> u64 {
        self.control.iter().flatten().map(|c| c.activations).sum()
    }

    /// Largest queue depth any shard ever reached, in **events** (with
    /// chunked hand-off one queue slot can carry a whole batch, so this can
    /// exceed the slot capacity).
    pub fn peak_queue_depth(&self) -> usize {
        self.queues.iter().map(|q| q.peak_event_depth as usize).max().unwrap_or(0)
    }
}

/// One lifecycle change of a closed-loop run's admission/retire schedule,
/// anchored at a run-relative stream position. The same schedule replays
/// deterministically on the real streaming engine
/// ([`run_closed_loop_live`]) and in the queueing simulation
/// ([`LatencySimulation::run_set_live`](crate::LatencySimulation::run_set_live)),
/// which is what makes the simulation the lifecycle oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryChurn {
    /// Run-relative stream position: the change applies before the `at`-th
    /// event of the run.
    pub at: u64,
    /// What changes.
    pub action: ChurnAction,
}

impl QueryChurn {
    /// An admission of `query` at position `at`.
    pub fn admit(at: u64, query: Query) -> Self {
        QueryChurn { at, action: ChurnAction::Admit(query) }
    }

    /// A retirement of the query at `slot` at position `at`.
    pub fn retire(at: u64, slot: QueryId) -> Self {
        QueryChurn { at, action: ChurnAction::Retire(slot) }
    }
}

/// The two kinds of lifecycle change a churn schedule can carry.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnAction {
    /// Admit this query. Slots are assigned to admissions in ascending
    /// `at` order (ties: schedule order), continuing after the initial
    /// set's slots — so a schedule can name the slots of its own
    /// admissions in later [`ChurnAction::Retire`] entries.
    Admit(Query),
    /// Retire the query at this slot (initial queries occupy slots
    /// `0..initial.len()`).
    Retire(QueryId),
}

/// Everything a lifecycle-enabled closed-loop streaming run reports: the
/// per-slot outputs and control reports (retired slots keep their final
/// state) plus the engine's lifecycle report.
#[derive(Debug, Clone)]
pub struct LiveStreamingOutcome {
    /// Each slot's complex events, indexed by slot, in single-operator
    /// emission order.
    pub complex_events: Vec<Vec<ComplexEvent>>,
    /// Engine statistics: merged, per-shard and per-slot counters.
    pub stats: EngineStats,
    /// Queue counters, one per shard (one queue serves all queries).
    pub queues: Vec<QueueStats>,
    /// Control outcomes, indexed `[shard][slot]`; a retired slot's report
    /// is frozen at its teardown.
    pub control: Vec<Vec<ShardControlReport>>,
    /// Admissions, retirements and rejections, with stream positions.
    pub lifecycle: LifecycleReport,
}

impl LiveStreamingOutcome {
    /// Total shedding activations across all shards and slots.
    pub fn activations(&self) -> u64 {
        self.control.iter().flatten().map(|c| c.activations).sum()
    }

    /// Largest queue depth any shard ever reached, in **events** (with
    /// chunked hand-off one queue slot can carry a whole batch, so this can
    /// exceed the slot capacity).
    pub fn peak_queue_depth(&self) -> usize {
        self.queues.iter().map(|q| q.peak_event_depth as usize).max().unwrap_or(0)
    }
}

/// Streams `source` through a fresh engine with one closed-loop shedder
/// per shard and returns the merged output plus the measured queue and
/// control reports. `shedders` supplies the per-shard shedder instances
/// (decorrelate randomised shedders by seed, as the experiment driver
/// does). Single-query wrapper over
/// [`run_closed_loop_set`].
///
/// # Panics
///
/// Panics if `shedders.len()` differs from `config.shards`, or the
/// configuration is invalid.
pub fn run_closed_loop<Src, S>(
    query: &Query,
    source: &mut Src,
    shedders: Vec<S>,
    config: &StreamingRunConfig,
) -> StreamingOutcome
where
    Src: EventSource + ?Sized,
    S: AdaptiveShedder + Send,
{
    assert_eq!(shedders.len(), config.shards, "need exactly one shedder per shard");
    let per_shard: Vec<Vec<S>> = shedders.into_iter().map(|shedder| vec![shedder]).collect();
    let mut outcome =
        run_closed_loop_set(&QuerySet::single(query.clone()), source, per_shard, config);
    StreamingOutcome {
        complex_events: outcome.complex_events.pop().expect("one query"),
        stats: outcome.stats,
        queues: outcome.queues,
        control: outcome
            .control
            .into_iter()
            .map(|mut per_query| per_query.pop().expect("one query"))
            .collect(),
    }
}

/// Streams `source` through a fresh *multi-query* engine: one ingestion
/// pipeline, one event hand-off per shard, and one closed-loop shedder per
/// shard **per query**. `shedders[shard][query]` supplies the instances.
///
/// Every query's controller on a shard receives the same measured queue
/// samples (the queue serves them all) but plans against its own query's
/// window geometry; the controllers of one shard share a
/// [`SharedThroughput`] signal so the capacity estimate behind the
/// `f·qmax` check cannot fragment across queries — a controller whose own
/// measurements are unusable mid-shed adopts what its peers published.
///
/// # Panics
///
/// Panics if the shedder matrix is not `shards × queries`, or the
/// configuration is invalid.
pub fn run_closed_loop_set<Src, S>(
    queries: &QuerySet,
    source: &mut Src,
    shedders: Vec<Vec<S>>,
    config: &StreamingRunConfig,
) -> MultiStreamingOutcome
where
    Src: EventSource + ?Sized,
    S: AdaptiveShedder + Send,
{
    assert!(config.shards >= 1, "need at least one shard");
    assert_eq!(shedders.len(), config.shards, "need exactly one shedder row per shard");
    config.overload.validate();

    let mut engine = ShardedEngine::for_queries(queries.clone(), config.shards);
    engine.set_queue_capacity(config.queue_capacity);
    engine.set_chunk_capacity(config.chunk_capacity);
    let interval = Duration::from_secs_f64(config.overload.check_interval.as_secs_f64());
    engine.set_check_interval(Some(interval));
    if let Some(hint) = config.window_size_hint {
        engine.set_window_size_hint(hint);
    }
    if config.work_stealing {
        engine.set_ownership_policy(OwnershipPolicy::StealAtOpen);
    }

    // Flatten shard-major, wiring one shared throughput signal per shard.
    let mut deciders: Vec<ClosedLoopShedder<S>> = Vec::with_capacity(config.shards * queries.len());
    for row in shedders {
        assert_eq!(row.len(), queries.len(), "need exactly one shedder per query per shard");
        let shared = Arc::new(SharedThroughput::new());
        for shedder in row {
            deciders.push(ClosedLoopShedder::with_shared_throughput(
                shedder,
                config.overload,
                Arc::clone(&shared),
            ));
        }
    }
    let complex_events = engine.run_source_per_query(source, &mut deciders);

    MultiStreamingOutcome {
        complex_events,
        stats: engine.stats(),
        queues: engine.queue_stats().to_vec(),
        control: deciders
            .chunks(queries.len())
            .map(|row| {
                row.iter()
                    .map(|decider| ShardControlReport {
                        stats: *decider.controller().stats(),
                        activations: decider.controller().activations(),
                        measured_throughput: decider.controller().throughput(),
                    })
                    .collect()
            })
            .collect(),
    }
}

/// What a fault-tolerant closed-loop run reports: the usual merged outputs
/// and measurements of [`MultiStreamingOutcome`], plus the per-shard
/// fault/recovery record of the engine's resilient path.
#[derive(Debug)]
pub struct ResilientStreamingOutcome {
    /// Each query's detected complex events (merged across shards).
    pub complex_events: Vec<Vec<ComplexEvent>>,
    /// Final engine statistics (failed shards report fresh counters).
    pub stats: EngineStats,
    /// Per-shard queue statistics, accumulated across shard incarnations.
    pub queues: Vec<QueueStats>,
    /// Per-shard, per-query control reports — `None` for a shard that
    /// failed permanently (its deciders died with the final incarnation).
    pub control: Vec<Option<Vec<ShardControlReport>>>,
    /// Per-shard outcome: healthy, recovered by chunk replay, or failed.
    pub shard_status: Vec<ShardStatus>,
    /// Total shard restarts across the run.
    pub recoveries: u32,
}

impl ResilientStreamingOutcome {
    /// Whether any shard failed permanently (degraded output).
    pub fn is_degraded(&self) -> bool {
        self.shard_status.iter().any(|status| matches!(status, ShardStatus::Failed(_)))
    }
}

/// The fault-tolerant variant of [`run_closed_loop_set`]: same fused
/// multi-query pipeline and closed-loop overload control, but a shard
/// panic is recovered by chunk replay, a wedged shard yields
/// [`EngineError::Stalled`] instead of hanging the producer, and a shard
/// past its restart budget degrades the run instead of aborting it (see
/// [`ShardedEngine::run_source_resilient`]).
///
/// The shedders move into the engine's drain threads by value and come
/// back through the run report, so `S` must be `Clone + Send + 'static`
/// (a replacement shard revives its shedders from clones).
///
/// # Errors
///
/// [`EngineError::Stalled`] when a shard exceeds the progress deadline;
/// decider-layout and configuration errors as on the non-resilient path.
///
/// # Panics
///
/// Panics if the shedder matrix is not `shards × queries`, or the overload
/// configuration is invalid.
pub fn run_closed_loop_resilient<Src, S>(
    queries: &QuerySet,
    source: &mut Src,
    shedders: Vec<Vec<S>>,
    config: &StreamingRunConfig,
    options: &ResilienceOptions,
) -> Result<ResilientStreamingOutcome, EngineError>
where
    Src: EventSource + ?Sized,
    S: AdaptiveShedder + Clone + Send + 'static,
{
    assert!(config.shards >= 1, "need at least one shard");
    assert_eq!(shedders.len(), config.shards, "need exactly one shedder row per shard");
    config.overload.validate();

    let mut engine = ShardedEngine::for_queries(queries.clone(), config.shards);
    engine.set_queue_capacity(config.queue_capacity);
    engine.set_chunk_capacity(config.chunk_capacity);
    let interval = Duration::from_secs_f64(config.overload.check_interval.as_secs_f64());
    engine.set_check_interval(Some(interval));
    if let Some(hint) = config.window_size_hint {
        engine.set_window_size_hint(hint);
    }
    if config.work_stealing {
        engine.set_ownership_policy(OwnershipPolicy::StealAtOpen);
    }

    let mut deciders: Vec<ClosedLoopShedder<S>> = Vec::with_capacity(config.shards * queries.len());
    for row in shedders {
        assert_eq!(row.len(), queries.len(), "need exactly one shedder per query per shard");
        let shared = Arc::new(SharedThroughput::new());
        for shedder in row {
            deciders.push(ClosedLoopShedder::with_shared_throughput(
                shedder,
                config.overload,
                Arc::clone(&shared),
            ));
        }
    }
    let report = engine.run_source_resilient(source, deciders, options)?;

    let control = report
        .deciders
        .iter()
        .map(|row| {
            row.as_ref().map(|row| {
                row.iter()
                    .map(|decider| ShardControlReport {
                        stats: *decider.controller().stats(),
                        activations: decider.controller().activations(),
                        measured_throughput: decider.controller().throughput(),
                    })
                    .collect()
            })
        })
        .collect();
    Ok(ResilientStreamingOutcome {
        complex_events: report.complex_events,
        stats: engine.stats(),
        queues: engine.queue_stats().to_vec(),
        control,
        shard_status: report.shard_status,
        recoveries: report.recoveries,
    })
}

/// The *live* closed-loop run: streams `source` through a fused engine
/// whose query population changes mid-stream according to `churn`, with
/// one closed-loop shedder per (shard, slot) built by `make_shedder(slot,
/// shard, query)`. Admissions wire their fresh controllers into the same
/// per-shard [`SharedThroughput`] signal the initial queries use (one
/// queue per shard → one capacity estimate, whenever the tenant joined);
/// retirements tear the slot's shedders and controllers down *after* its
/// open windows drained. The returned control reports cover every slot —
/// a retired slot's report is its state at teardown, observed through the
/// [`SharedDecider`] handles this function keeps outside the engine.
///
/// The schedule is issued through the engine's [`EngineControl`] before
/// the stream starts, so the same `churn` replays identically on the
/// queueing simulation
/// ([`LatencySimulation::run_set_live`](crate::LatencySimulation::run_set_live)).
///
/// [`EngineControl`]: espice_cep::EngineControl
///
/// # Panics
///
/// Panics if the configuration is invalid or a churn entry retires a slot
/// that does not exist at schedule-build time.
pub fn run_closed_loop_live<Src, S, F>(
    initial: &QuerySet,
    source: &mut Src,
    config: &StreamingRunConfig,
    churn: &[QueryChurn],
    mut make_shedder: F,
) -> LiveStreamingOutcome
where
    Src: EventSource + ?Sized,
    S: AdaptiveShedder + Send + 'static,
    F: FnMut(QueryId, usize, &Query) -> S,
{
    assert!(config.shards >= 1, "need at least one shard");
    config.overload.validate();

    let mut engine = ShardedEngine::for_queries(initial.clone(), config.shards);
    engine.set_queue_capacity(config.queue_capacity);
    engine.set_chunk_capacity(config.chunk_capacity);
    let interval = Duration::from_secs_f64(config.overload.check_interval.as_secs_f64());
    engine.set_check_interval(Some(interval));
    if let Some(hint) = config.window_size_hint {
        engine.set_window_size_hint(hint);
    }
    if config.work_stealing {
        engine.set_ownership_policy(OwnershipPolicy::StealAtOpen);
    }

    // One shared capacity signal per shard queue, reused by every
    // admission on that shard.
    let signals: Vec<Arc<SharedThroughput>> =
        (0..config.shards).map(|_| Arc::new(SharedThroughput::new())).collect();
    // The observation handles, indexed [shard][slot]: clones of the
    // engine-owned shared deciders, kept to read controller state after
    // the run (and after mid-stream teardowns).
    let mut observers: Vec<Vec<SharedDecider<ClosedLoopShedder<S>>>> =
        (0..config.shards).map(|_| Vec::new()).collect();
    let build_row = |slot: QueryId,
                     query: &Query,
                     joins_mid_stream: bool,
                     observers: &mut Vec<Vec<SharedDecider<ClosedLoopShedder<S>>>>,
                     make_shedder: &mut F|
     -> Vec<BoxedDecider> {
        (0..config.shards)
            .map(|shard| {
                let shedder = make_shedder(slot, shard, query);
                let mut closed_loop = ClosedLoopShedder::with_shared_throughput(
                    shedder,
                    config.overload,
                    Arc::clone(&signals[shard]),
                );
                if joins_mid_stream {
                    closed_loop.join_in_progress();
                }
                let decider = SharedDecider::new(closed_loop);
                observers[shard].push(decider.clone());
                Box::new(decider) as BoxedDecider
            })
            .collect()
    };

    // Initial deciders, shard-major, as the static paths lay them out.
    let mut rows: Vec<Vec<BoxedDecider>> = (0..initial.len() as QueryId)
        .map(|slot| {
            build_row(
                slot,
                &initial.queries()[slot as usize],
                false,
                &mut observers,
                &mut make_shedder,
            )
        })
        .collect();
    let mut initial_deciders: Vec<BoxedDecider> = Vec::with_capacity(config.shards * initial.len());
    for _shard in 0..config.shards {
        for row in &mut rows {
            initial_deciders.push(row.remove(0));
        }
    }

    // Issue the schedule up-front through the control channel, admissions
    // in ascending position order so slots are assigned deterministically.
    let control = engine.control();
    let mut ordered: Vec<&QueryChurn> = churn.iter().collect();
    ordered.sort_by_key(|change| change.at);
    let mut handles: Vec<espice_cep::QueryHandle> = (0..initial.len())
        .map(|slot| engine.query_handle(slot as QueryId).expect("initial slots are live"))
        .collect();
    for change in ordered {
        match &change.action {
            ChurnAction::Admit(query) => {
                let slot = handles.len() as QueryId;
                let deciders = build_row(slot, query, true, &mut observers, &mut make_shedder);
                let handle = control.admit_at(change.at, query.clone(), deciders);
                assert_eq!(handle.slot, slot, "slot allocation must follow schedule order");
                handles.push(handle);
            }
            ChurnAction::Retire(slot) => {
                let handle = *handles
                    .get(*slot as usize)
                    .unwrap_or_else(|| panic!("churn retires unknown slot {slot}"));
                control.retire_at(change.at, handle);
            }
        }
    }

    let outcome = engine.run_source_live(source, initial_deciders);
    let stats = engine.stats();
    let control_reports: Vec<Vec<ShardControlReport>> = observers
        .iter()
        .map(|row| {
            row.iter()
                .map(|observer| {
                    let decider = observer.lock();
                    let controller = decider.controller();
                    ShardControlReport {
                        stats: *controller.stats(),
                        activations: controller.activations(),
                        measured_throughput: controller.throughput(),
                    }
                })
                .collect()
        })
        .collect();

    LiveStreamingOutcome {
        complex_events: outcome.complex_events,
        stats,
        queues: engine.queue_stats().to_vec(),
        control: control_reports,
        lifecycle: outcome.lifecycle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::RandomAdaptive;
    use espice::{RandomShedder, ShedPlan};
    use espice_cep::{Pattern, WindowSpec};
    use espice_events::{EventStream, EventType, SimDuration, SliceSource, Timestamp, VecStream};
    use std::time::Instant;

    fn ty(i: u32) -> EventType {
        EventType::from_index(i)
    }

    /// A shedder wrapper that burns a fixed amount of CPU per decision
    /// batch, pinning the shard's drain throughput well below what the
    /// producer can push — the deterministic way to overload a real queue.
    #[derive(Debug, Clone)]
    struct Throttled<S> {
        inner: S,
        spin: Duration,
    }

    impl<S: WindowEventDecider> WindowEventDecider for Throttled<S> {
        fn decide(&mut self, meta: &WindowMeta, position: usize, event: &Event) -> Decision {
            self.inner.decide(meta, position, event)
        }

        fn decide_batch(
            &mut self,
            event: &Event,
            requests: &[BatchRequest],
            decisions: &mut Vec<Decision>,
        ) {
            let start = Instant::now();
            while start.elapsed() < self.spin {
                std::hint::spin_loop();
            }
            self.inner.decide_batch(event, requests, decisions);
        }

        fn decide_span(
            &mut self,
            meta: &WindowMeta,
            start_position: usize,
            events: &[Event],
            drops: &mut espice_cep::DropSet,
        ) -> usize {
            let start = Instant::now();
            while start.elapsed() < self.spin {
                std::hint::spin_loop();
            }
            self.inner.decide_span(meta, start_position, events, drops)
        }

        fn window_closed(&mut self, meta: &WindowMeta, size: usize) {
            self.inner.window_closed(meta, size);
        }
    }

    impl<S: AdaptiveShedder> AdaptiveShedder for Throttled<S> {
        fn apply_plan(&mut self, plan: ShedPlan) {
            self.inner.apply_plan(plan);
        }

        fn deactivate(&mut self) {
            self.inner.deactivate();
        }

        fn is_active(&self) -> bool {
            self.inner.is_active()
        }
    }

    /// The closed-loop acceptance test: overfill a real shard queue and
    /// observe shedding activate from *measured* depth alone. The
    /// controller is built from an [`OverloadConfig`] only — no throughput
    /// and no input rate are configured anywhere.
    #[test]
    fn overfilled_queue_activates_shedding_without_precomputed_rates() {
        // Sliding windows keep a window open for every event, so every
        // event pays the throttled decide_batch: the consumer drains at
        // most ~1/spin events per second while the producer pushes orders
        // of magnitude faster — the queue must sit at capacity.
        let query = Query::builder()
            .pattern(Pattern::sequence([ty(0), ty(1)]))
            .window(WindowSpec::count_sliding(100, 10))
            .build();
        let events: Vec<Event> = (0..3_000u64)
            .map(|i| Event::new(ty((i % 2) as u32), Timestamp::from_millis(i), i))
            .collect();
        let stream = VecStream::from_ordered(events);

        let shedder = Throttled {
            inner: RandomAdaptive::new(RandomShedder::new(7), 100.0),
            spin: Duration::from_micros(50),
        };
        // Drain capacity is bounded by the spin at ~20k events/s, so
        // qmax <= ~200 with a 10 ms latency bound — far below the 2048
        // events (128 slots × 16-event chunks) the producer keeps filled.
        let config = StreamingRunConfig {
            shards: 1,
            queue_capacity: 128,
            chunk_capacity: 16,
            overload: OverloadConfig {
                latency_bound: SimDuration::from_millis(10),
                f: 0.8,
                check_interval: SimDuration::from_millis(5),
                ..OverloadConfig::default()
            },
            window_size_hint: None,
            work_stealing: false,
        };
        let mut source = SliceSource::from_stream(&stream);
        let outcome = run_closed_loop(&query, &mut source, vec![shedder], &config);

        assert_eq!(outcome.stats.merged.events_processed, stream.len() as u64);
        let report = &outcome.control[0];
        let throughput = report.measured_throughput.expect("controller must calibrate");
        assert!(
            throughput < 100_000.0,
            "measured throughput {throughput} is implausibly high for a throttled consumer"
        );
        assert!(
            outcome.activations() >= 1,
            "an overfilled queue must activate shedding (checks: {}, peak depth: {})",
            report.stats.checks,
            outcome.peak_queue_depth()
        );
        assert!(outcome.stats.merged.dropped > 0, "active shedding must drop assignments");
        assert!(
            outcome.peak_queue_depth() > 200,
            "the producer should have overfilled the queue (peak {})",
            outcome.peak_queue_depth()
        );
        assert!(outcome.queues[0].backpressure_events > 0, "a full queue must backpressure");
    }

    /// A fused multi-query closed-loop run over an unloaded queue: no
    /// query sheds, and every query's output equals its own single-query
    /// slice run — the per-query identity the multi-query engine promises,
    /// here with the whole control stack in the loop.
    #[test]
    fn unloaded_multi_query_closed_loop_matches_per_query_slice_runs() {
        let make = |size: usize| {
            Query::builder()
                .pattern(Pattern::sequence([ty(0), ty(1)]))
                .window(WindowSpec::count_sliding(size, 5))
                .build()
        };
        let queries = QuerySet::new(vec![make(50), make(30)]);
        let events: Vec<Event> = (0..2_000u64)
            .map(|i| Event::new(ty((i % 3) as u32), Timestamp::from_millis(i), i))
            .collect();
        let stream = VecStream::from_ordered(events);

        let shedder = |seed| RandomAdaptive::new(RandomShedder::new(seed), 50.0);
        let config = StreamingRunConfig {
            shards: 2,
            queue_capacity: 4096,
            chunk_capacity: 64,
            overload: OverloadConfig {
                latency_bound: SimDuration::from_secs(30),
                f: 0.8,
                check_interval: SimDuration::from_millis(1),
                ..OverloadConfig::default()
            },
            window_size_hint: None,
            work_stealing: false,
        };
        let mut source = SliceSource::from_stream(&stream);
        let outcome = run_closed_loop_set(
            &queries,
            &mut source,
            vec![vec![shedder(1), shedder(2)], vec![shedder(3), shedder(4)]],
            &config,
        );
        assert_eq!(outcome.activations(), 0, "an unloaded run must never shed");
        assert_eq!(outcome.stats.merged.dropped, 0);
        assert_eq!(outcome.control.len(), 2);
        assert_eq!(outcome.control[0].len(), 2);
        for (id, query) in queries.iter() {
            let expected =
                espice_cep::Operator::new(query.clone()).run(&stream, &mut espice_cep::KeepAll);
            assert_eq!(outcome.complex_events[id as usize], expected, "query {id} diverged");
        }
        // One queue per shard carried the whole stream once for both
        // queries.
        for queue in &outcome.queues {
            assert_eq!(queue.pushed, stream.len() as u64);
        }
    }

    /// Wall-clock pacing: a paced source drives the closed loop at a real
    /// rate the drain threads can sustain, so nothing sheds and the run
    /// takes at least as long as the arrival schedule.
    #[test]
    fn paced_replay_drives_the_closed_loop_at_the_configured_rate() {
        let query = Query::builder()
            .pattern(Pattern::sequence([ty(0), ty(1)]))
            .window(WindowSpec::count_sliding(20, 5))
            .build();
        let events: Vec<Event> = (0..600u64)
            .map(|i| Event::new(ty((i % 3) as u32), Timestamp::from_millis(i), i))
            .collect();
        let stream = VecStream::from_ordered(events);

        let config = StreamingRunConfig {
            shards: 1,
            queue_capacity: 256,
            // Far more than the paced flush will ever fill: partial chunks
            // must be flushed on the deadline, not at capacity.
            chunk_capacity: 256,
            overload: OverloadConfig {
                latency_bound: SimDuration::from_secs(5),
                f: 0.8,
                check_interval: SimDuration::from_millis(2),
                ..OverloadConfig::default()
            },
            window_size_hint: None,
            work_stealing: false,
        };
        // 600 events at 20k events/s: the schedule spans ~30 ms of wall
        // time, far slower than an unthrottled drain.
        let rate = 20_000.0;
        let mut source = espice_events::PacedSource::from_stream(&stream, rate);
        let started = Instant::now();
        let outcome = run_closed_loop(
            &query,
            &mut source,
            vec![RandomAdaptive::new(RandomShedder::new(5), 20.0)],
            &config,
        );
        let elapsed = started.elapsed();
        assert!(
            elapsed >= Duration::from_secs_f64(599.0 / rate),
            "paced run finished in {elapsed:?}, faster than its schedule"
        );
        assert_eq!(outcome.activations(), 0, "a sustainable paced rate must not shed");
        assert_eq!(outcome.stats.merged.dropped, 0);
        let expected =
            espice_cep::Operator::new(query.clone()).run(&stream, &mut espice_cep::KeepAll);
        assert_eq!(outcome.complex_events, expected);
    }

    /// The live closed-loop service under churn: a query is admitted
    /// mid-stream and another retired, with the whole control stack (per
    /// (shard, slot) controllers on shared throughput signals) in the
    /// loop. Unloaded, so nothing sheds — every slot's output must equal
    /// its static oracle: the survivor its full standalone run, the
    /// admitted query a fresh run over the admission suffix, the retired
    /// query a drained prefix of its standalone run.
    #[test]
    fn live_closed_loop_churn_matches_static_oracles_per_slot() {
        let make = |size: usize| {
            Query::builder()
                .pattern(Pattern::sequence([ty(0), ty(1)]))
                .window(WindowSpec::count_sliding(size, 5))
                .build()
        };
        let initial = QuerySet::new(vec![make(50), make(30)]);
        let admitted = make(40);
        let events: Vec<Event> = (0..2_000u64)
            .map(|i| Event::new(ty((i % 3) as u32), Timestamp::from_millis(i), i))
            .collect();
        let stream = VecStream::from_ordered(events);
        let (retire_at, admit_at) = (400u64, 700u64);

        let config = StreamingRunConfig {
            shards: 2,
            queue_capacity: 4096,
            // Small chunks so the churn positions fall mid-chunk and force
            // partial seals before the in-band commands.
            chunk_capacity: 32,
            overload: OverloadConfig {
                latency_bound: SimDuration::from_secs(30),
                f: 0.8,
                check_interval: SimDuration::from_millis(1),
                ..OverloadConfig::default()
            },
            window_size_hint: None,
            work_stealing: false,
        };
        let churn =
            vec![QueryChurn::retire(retire_at, 0), QueryChurn::admit(admit_at, admitted.clone())];
        let mut source = SliceSource::from_stream(&stream);
        let outcome =
            run_closed_loop_live(&initial, &mut source, &config, &churn, |slot, shard, _| {
                RandomAdaptive::new(RandomShedder::new(1 + slot as u64 * 10 + shard as u64), 50.0)
            });

        assert_eq!(outcome.activations(), 0, "an unloaded run must never shed");
        assert_eq!(outcome.stats.merged.dropped, 0);
        assert_eq!(outcome.complex_events.len(), 3);
        assert_eq!(outcome.control.len(), 2);
        assert_eq!(outcome.control[0].len(), 3, "control reports cover every slot");
        assert_eq!(outcome.lifecycle.retired.len(), 1);
        assert_eq!(outcome.lifecycle.admitted.len(), 1);
        assert_eq!(outcome.lifecycle.retired[0].1, retire_at);
        assert_eq!(outcome.lifecycle.admitted[0].1, admit_at);

        // Survivor (slot 1): byte-identical to running alone.
        let survivor = espice_cep::Operator::new(initial.queries()[1].clone())
            .run(&stream, &mut espice_cep::KeepAll);
        assert_eq!(outcome.complex_events[1], survivor);

        // Admitted (slot 2): a fresh run over the admission suffix.
        let suffix = VecStream::from_ordered(stream.events()[admit_at as usize..].to_vec());
        let fresh = espice_cep::Operator::new(admitted).run(&suffix, &mut espice_cep::KeepAll);
        assert_eq!(outcome.complex_events[2], fresh);

        // Retired (slot 0): the windows opened before retirement, drained
        // to completion — a strict prefix of the standalone output.
        let full = espice_cep::Operator::new(initial.queries()[0].clone())
            .run(&stream, &mut espice_cep::KeepAll);
        let retired = &outcome.complex_events[0];
        assert!(!retired.is_empty() && retired.len() < full.len());
        assert_eq!(retired.as_slice(), &full[..retired.len()]);
    }

    /// Under no throttling and a generous bound the loop must never shed:
    /// the producer finishes quickly, the queue drains, output equals the
    /// slice run exactly.
    #[test]
    fn unloaded_closed_loop_never_sheds_and_matches_slice_output() {
        let query = Query::builder()
            .pattern(Pattern::sequence([ty(0), ty(1)]))
            .window(WindowSpec::count_sliding(50, 5))
            .build();
        let events: Vec<Event> = (0..2_000u64)
            .map(|i| Event::new(ty((i % 3) as u32), Timestamp::from_millis(i), i))
            .collect();
        let stream = VecStream::from_ordered(events);
        let expected =
            espice_cep::Operator::new(query.clone()).run(&stream, &mut espice_cep::KeepAll);

        let shedder = RandomAdaptive::new(RandomShedder::new(3), 50.0);
        let config = StreamingRunConfig {
            shards: 2,
            queue_capacity: 4096,
            chunk_capacity: espice_cep::DEFAULT_CHUNK_CAPACITY,
            overload: OverloadConfig {
                latency_bound: SimDuration::from_secs(30),
                f: 0.8,
                check_interval: SimDuration::from_millis(1),
                ..OverloadConfig::default()
            },
            window_size_hint: None,
            work_stealing: false,
        };
        let mut source = SliceSource::from_stream(&stream);
        let outcome = run_closed_loop(&query, &mut source, vec![shedder.clone(), shedder], &config);
        assert_eq!(outcome.activations(), 0, "an unloaded run must never shed");
        assert_eq!(outcome.stats.merged.dropped, 0);
        assert_eq!(outcome.complex_events, expected);
    }

    /// `work_stealing: true` must be output-invariant on the streaming
    /// path: the balancer only moves window *ownership* between shards,
    /// every shard still scans the full stream, and `merge_outputs`
    /// re-sorts per query — so the merged complex events and counters
    /// match the static-modulo run exactly.
    #[test]
    fn work_stealing_matches_static_output_on_the_streaming_path() {
        let query = Query::builder()
            .pattern(Pattern::sequence([ty(0), ty(1)]))
            .window(WindowSpec::time_on_types(vec![ty(0)], SimDuration::from_millis(40)))
            .build();
        let events: Vec<Event> = (0..2_000u64)
            .map(|i| Event::new(ty((i % 3) as u32), Timestamp::from_millis(i), i))
            .collect();
        let stream = VecStream::from_ordered(events);

        let run = |work_stealing: bool| {
            let config = StreamingRunConfig {
                shards: 4,
                queue_capacity: 4096,
                chunk_capacity: espice_cep::DEFAULT_CHUNK_CAPACITY,
                overload: OverloadConfig {
                    latency_bound: SimDuration::from_secs(30),
                    f: 0.8,
                    check_interval: SimDuration::from_millis(1),
                    ..OverloadConfig::default()
                },
                window_size_hint: None,
                work_stealing,
            };
            let shedders = (0..4u64)
                .map(|shard| RandomAdaptive::new(RandomShedder::new(11 + shard), 50.0))
                .collect();
            let mut source = SliceSource::from_stream(&stream);
            run_closed_loop(&query, &mut source, shedders, &config)
        };

        let stolen = run(true);
        let fixed = run(false);
        assert_eq!(
            stolen.stats.merged.dropped + fixed.stats.merged.dropped,
            0,
            "an unloaded run must never shed"
        );
        assert_eq!(stolen.complex_events, fixed.complex_events);
        assert_eq!(stolen.stats.merged, fixed.stats.merged);
    }

    /// [`StreamingRunConfig::sized`] must track the planner's sizing rule:
    /// enough event capacity for the `f · qmax` activation signal to show
    /// up before backpressure, with chunks capped at the shedding buffer.
    #[test]
    fn sized_config_tracks_the_planner_and_respects_the_shedding_buffer() {
        let overload = OverloadConfig {
            latency_bound: SimDuration::from_millis(100),
            f: 0.8,
            check_interval: SimDuration::from_millis(5),
            ..OverloadConfig::default()
        };
        let planner = ShedPlanner::new(overload, 10_000.0);
        let config = StreamingRunConfig::sized(3, overload, 10_000.0);
        assert_eq!(config.shards, 3);
        // One batch never exceeds the shedding buffer `(1 − f) · qmax`, so
        // a single chunk cannot blow through the headroom between samples…
        assert!(config.chunk_capacity >= 1);
        assert!(config.chunk_capacity <= planner.buffer_size());
        assert!(config.chunk_capacity <= espice_cep::DEFAULT_CHUNK_CAPACITY);
        // …while the queue still buffers `qmax · (1 + burst_slack)` events,
        // so backpressure cannot clip the activation threshold.
        assert!(config.queue_capacity * config.chunk_capacity >= planner.sized_event_capacity());
        assert!(planner.sized_event_capacity() >= planner.qmax());
    }
}

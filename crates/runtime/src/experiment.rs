//! The train → ground truth → shed → compare pipeline behind all quality
//! experiments (Figures 5, 6, 8 and 9 of the paper).
//!
//! The paper's procedure (§4.2): stream the dataset at a rate at or below the
//! operator throughput until the model is built, then raise the input rate 20 %
//! (`R1`) or 40 % (`R2`) above the throughput and measure the number of false
//! negatives and false positives caused by shedding. This module reproduces
//! that procedure deterministically:
//!
//! 1. the dataset stream is split into a training prefix and an evaluation
//!    suffix,
//! 2. the model is trained on the unshedded training prefix,
//! 3. the drop amount implied by the overload (`x = δ·psize/R`) is computed
//!    with the same arithmetic as the overload detector and applied statically,
//! 4. the evaluation suffix is processed twice — once without shedding (ground
//!    truth), once with the shedder — and the outputs are compared.

use crate::adaptive::{AdaptiveShedder, RandomAdaptive};
use crate::metrics::QualityMetrics;
use espice::{
    BaselineShedder, EspiceShedder, GspiceShedder, HspiceShedder, ModelBuilder, ModelConfig,
    OverloadConfig, PspiceShedder, RandomShedder, SharedUtilityStats, ShedPlan, ShedPlanner,
    UtilityModel,
};
use espice_cep::{
    ComplexEvent, Operator, Query, QuerySet, ResilienceOptions, ShardStatus, ShardedEngine,
};
use espice_events::{EventStream, SliceSource, VecStream};
use serde::{Deserialize, Serialize};

/// Which execution backend evaluates the shedded run.
///
/// On count-based windows the two backends produce byte-identical complex
/// events for the deciders the experiments use (property-tested), so
/// quality results never depend on this choice; the streaming backend
/// additionally reports measured queue behaviour ([`QueueSummary`]).
/// On time-based windows with `shards >= 2`, eSPICE's predicted-size
/// scaling reads the engine-shared size estimator while other shard
/// threads update it, so individual drop decisions can vary with thread
/// timing (on either backend) — the price of shard-count-invariant
/// predictions; single-shard evaluations remain fully deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineBackend {
    /// Slice-driven: the engine consumes the materialised evaluation
    /// stream directly.
    Slice,
    /// Stream-driven: events are produced incrementally into bounded
    /// per-shard queues of the given capacity (backpressure engages when a
    /// shard falls behind).
    Streaming {
        /// Capacity of each shard's bounded input queue.
        queue_capacity: usize,
    },
}

/// Aggregate queue behaviour of a streaming evaluation run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueSummary {
    /// Configured per-shard queue capacity.
    pub capacity: usize,
    /// Largest depth any shard's queue reached.
    pub peak_depth: usize,
    /// Events (summed over shards) whose push had to wait for queue space.
    pub backpressure_events: u64,
}

/// Which load-shedding strategy to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShedderKind {
    /// eSPICE (utility-table based, this paper's contribution).
    Espice,
    /// The `BL` baseline (type-utility based, order-agnostic).
    Baseline,
    /// Uniform random shedding.
    Random,
    /// hSPICE: per-operator, pattern-aware utility tables over the shared
    /// model ([`HspiceShedder`]).
    Hspice,
    /// pSPICE: partial-match shedding inside the operator
    /// ([`PspiceShedder`]).
    Pspice,
    /// gSPICE: model-based verdicts with empirical-Bayes shrinkage over the
    /// shared model ([`GspiceShedder`]).
    Gspice,
}

impl ShedderKind {
    /// Short label used in reports ("eSPICE", "BL", "Random", "hSPICE",
    /// "pSPICE", "gSPICE").
    pub fn label(&self) -> &'static str {
        match self {
            ShedderKind::Espice => "eSPICE",
            ShedderKind::Baseline => "BL",
            ShedderKind::Random => "Random",
            ShedderKind::Hspice => "hSPICE",
            ShedderKind::Pspice => "pSPICE",
            ShedderKind::Gspice => "gSPICE",
        }
    }

    /// The four SPICE-family strategies compared by the quality matrix, in
    /// report order.
    pub fn family() -> [ShedderKind; 4] {
        [ShedderKind::Espice, ShedderKind::Hspice, ShedderKind::Pspice, ShedderKind::Gspice]
    }
}

/// Parameters of a quality experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Operator throughput `th` in events per second (the resource limit).
    pub throughput: f64,
    /// Input rate as a multiple of the throughput (1.2 for the paper's `R1`,
    /// 1.4 for `R2`).
    pub overload_factor: f64,
    /// Overload-detector parameters (latency bound `LB`, `f`).
    pub overload: OverloadConfig,
    /// Fraction of the stream used for model training (the rest is evaluated).
    pub training_fraction: f64,
    /// Seed for the randomised shedders (BL sampling, random shedding).
    pub seed: u64,
    /// Number of engine shards the evaluation runs on (1 = the paper's
    /// single-threaded operator). Each shard owns a disjoint subset of the
    /// windows and gets its own shedder instance; ground truth is identical
    /// for every shard count.
    pub shards: usize,
    /// Which engine backend runs the shedded evaluation pass.
    pub backend: EngineBackend,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            throughput: 1000.0,
            overload_factor: 1.2,
            overload: OverloadConfig::default(),
            training_fraction: 0.5,
            seed: 1,
            shards: 1,
            backend: EngineBackend::Slice,
        }
    }
}

impl ExperimentConfig {
    /// The absolute input rate `R = overload_factor · th`.
    pub fn input_rate(&self) -> f64 {
        self.overload_factor * self.throughput
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the throughput, overload factor or training fraction are out
    /// of range.
    pub fn validate(&self) {
        assert!(self.throughput > 0.0, "throughput must be positive");
        assert!(self.overload_factor >= 1.0, "overload factor must be >= 1");
        assert!(
            self.training_fraction > 0.0 && self.training_fraction < 1.0,
            "training fraction must be in (0, 1)"
        );
        assert!(self.shards >= 1, "need at least one shard");
        if let EngineBackend::Streaming { queue_capacity } = self.backend {
            assert!(queue_capacity >= 1, "queue capacity must be at least 1");
        }
        self.overload.validate();
    }
}

/// Result of evaluating one shedder on one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityOutcome {
    /// Which shedder was evaluated.
    pub shedder: ShedderKind,
    /// Quality against the unshedded ground truth.
    pub metrics: QualityMetrics,
    /// The drop command that was applied.
    pub plan: ShedPlan,
    /// Fraction of (event, window) assignments actually dropped.
    pub drop_ratio: f64,
    /// Number of windows evaluated.
    pub windows: u64,
    /// Measured queue behaviour of the run — `Some` for the streaming
    /// backend, `None` for the slice backend.
    pub queue: Option<QueueSummary>,
}

impl QualityOutcome {
    /// Shorthand for the false-negative percentage.
    pub fn false_negative_pct(&self) -> f64 {
        self.metrics.false_negative_pct()
    }

    /// Shorthand for the false-positive percentage.
    pub fn false_positive_pct(&self) -> f64 {
        self.metrics.false_positive_pct()
    }
}

/// A trained experiment: model + stream split, ready to evaluate shedders.
#[derive(Debug, Clone)]
pub struct Experiment {
    config: ExperimentConfig,
    model: UtilityModel,
    /// One shared handle over the trained model for the whole experiment:
    /// every hSPICE/pSPICE/gSPICE shedder built by [`shedder_for`]
    /// (`Self::shedder_for`) — across shards *and* across queries —
    /// derives from this one handle, so a fused run trains once and shares
    /// the model everywhere (the family's cross-query model sharing).
    shared: SharedUtilityStats,
    training_stream: VecStream,
    eval_stream: VecStream,
    type_count: usize,
}

impl Experiment {
    /// Trains the utility model by running every query in `training_queries`
    /// over the training prefix of `stream` without shedding.
    ///
    /// Most experiments train with a single query; the variable-window-size
    /// experiment (Figure 8) trains with several queries that differ only in
    /// their window size, mirroring the paper's randomised window sizes during
    /// model building.
    ///
    /// # Panics
    ///
    /// Panics if `training_queries` is empty or the configuration is invalid.
    pub fn train(
        training_queries: &[Query],
        stream: &VecStream,
        type_count: usize,
        model_config: ModelConfig,
        config: ExperimentConfig,
    ) -> Self {
        assert!(!training_queries.is_empty(), "need at least one training query");
        config.validate();
        model_config.validate();

        let split = (stream.len() as f64 * config.training_fraction).round() as usize;
        let split = split.clamp(1, stream.len().saturating_sub(1).max(1));
        let training_stream = stream.slice(0, split);
        let eval_stream = stream.slice(split, stream.len());

        let mut builder = ModelBuilder::new(model_config, type_count);
        for query in training_queries {
            let mut operator = Operator::new(query.clone());
            let matches = operator.run(&training_stream, &mut builder);
            for complex in &matches {
                builder.observe_complex(complex);
            }
        }
        let model = builder.build();
        let shared = SharedUtilityStats::new(model.clone());

        Experiment { config, model, shared, training_stream, eval_stream, type_count }
    }

    /// The trained utility model.
    pub fn model(&self) -> &UtilityModel {
        &self.model
    }

    /// The shared-model handle every family shedder of this experiment
    /// derives from (cross-query model sharing).
    pub fn shared_stats(&self) -> &SharedUtilityStats {
        &self.shared
    }

    /// The experiment configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// The training portion of the stream.
    pub fn training_stream(&self) -> &VecStream {
        &self.training_stream
    }

    /// The evaluation portion of the stream.
    pub fn eval_stream(&self) -> &VecStream {
        &self.eval_stream
    }

    /// Number of event types the model was trained for.
    pub fn type_count(&self) -> usize {
        self.type_count
    }

    /// Returns a copy of this experiment whose evaluation uses a different
    /// overload factor (input rate relative to throughput). Training does not
    /// depend on the rate, so the model is reused — this is how the figure
    /// harnesses evaluate the paper's `R1` (1.2) and `R2` (1.4) rates from a
    /// single training pass.
    pub fn with_overload_factor(&self, overload_factor: f64) -> Experiment {
        let mut copy = self.clone();
        copy.config.overload_factor = overload_factor;
        copy.config.validate();
        copy
    }

    /// Runs the unshedded ground truth for `query` over the evaluation
    /// stream. The engine's sharded output is identical to a single
    /// operator's, so the ground truth depends on neither the shard count
    /// nor the backend; it always runs on the slice path (the deterministic
    /// oracle, and the cheapest way through a fully materialised stream).
    pub fn ground_truth(&self, query: &Query) -> Vec<ComplexEvent> {
        let mut engine = self.engine_for(query);
        let mut deciders = vec![espice_cep::KeepAll; self.config.shards.max(1)];
        engine.run_slice(&self.eval_stream, &mut deciders)
    }

    /// Creates the evaluation engine for `query`: `config.shards` shards
    /// whose window-size prediction is seeded with the average window size
    /// observed during training (relevant for time-based, variable-size
    /// windows).
    fn engine_for(&self, query: &Query) -> ShardedEngine {
        let mut engine = ShardedEngine::new(query.clone(), self.config.shards.max(1));
        if query.window().expected_size().is_none() {
            engine.set_window_size_hint(self.model.average_window_size().round().max(1.0) as usize);
        }
        engine
    }

    /// The drop command implied by the configured overload for windows of the
    /// size `query` uses (the same arithmetic the overload detector applies).
    pub fn shed_plan(&self, query: &Query) -> ShedPlan {
        let planner = ShedPlanner::new(self.config.overload, self.config.throughput);
        let window_size = query
            .window()
            .expected_size()
            .unwrap_or_else(|| self.model.average_window_size().round().max(1.0) as usize);
        planner.plan(self.config.input_rate(), window_size)
    }

    /// Evaluates one shedder on `query`: runs the shedded evaluation pass and
    /// compares it against the unshedded ground truth.
    pub fn evaluate(&self, query: &Query, kind: ShedderKind) -> QualityOutcome {
        let ground_truth = self.ground_truth(query);
        self.evaluate_against(query, kind, &ground_truth)
    }

    /// Like [`evaluate`](Self::evaluate) but reuses a precomputed ground truth
    /// (useful when several shedders are compared on the same query).
    pub fn evaluate_against(
        &self,
        query: &Query,
        kind: ShedderKind,
        ground_truth: &[ComplexEvent],
    ) -> QualityOutcome {
        let plan = self.shed_plan(query);
        // One shedder instance per shard (the sharding property gSPICE and
        // He et al. rely on: shedding state partitions with the windows),
        // each activated with the same plan. Randomised shedders are
        // decorrelated by shard so they do not drop in lockstep.
        let shards = self.config.shards.max(1);
        let mut deciders: Vec<Box<dyn AdaptiveShedder + Send>> = (0..shards)
            .map(|shard| {
                let mut shedder = self.shedder_for(query, kind, self.config.seed + shard as u64);
                shedder.apply_plan(plan);
                shedder
            })
            .collect();

        let mut engine = self.engine_for(query);
        let detected = match self.config.backend {
            EngineBackend::Slice => engine.run_slice(&self.eval_stream, &mut deciders),
            EngineBackend::Streaming { queue_capacity } => {
                engine.set_queue_capacity(queue_capacity);
                let mut source = SliceSource::from_stream(&self.eval_stream);
                engine.run_source(&mut source, &mut deciders)
            }
        };
        let stats = engine.stats().merged;
        let queue = match self.config.backend {
            EngineBackend::Slice => None,
            EngineBackend::Streaming { queue_capacity } => Some(QueueSummary {
                capacity: queue_capacity,
                peak_depth: engine.queue_stats().iter().map(|q| q.peak_depth).max().unwrap_or(0),
                backpressure_events: engine
                    .queue_stats()
                    .iter()
                    .map(|q| q.backpressure_events)
                    .sum(),
            }),
        };

        QualityOutcome {
            shedder: kind,
            metrics: QualityMetrics::compare(ground_truth, &detected),
            plan,
            drop_ratio: stats.drop_ratio(),
            windows: stats.windows_closed,
            queue,
        }
    }

    /// Compares every requested shedder on `query` against a single ground
    /// truth run.
    pub fn compare(&self, query: &Query, kinds: &[ShedderKind]) -> Vec<QualityOutcome> {
        let ground_truth = self.ground_truth(query);
        kinds.iter().map(|&k| self.evaluate_against(query, k, &ground_truth)).collect()
    }

    /// Evaluates one shedder kind on a whole query set running on the
    /// *fused* multi-query engine: one ingestion pipeline and one event
    /// scan per shard serve every query, each query gets its own shedder
    /// instance (per shard) armed with its own plan, and the returned
    /// outcomes — one per query, in query order — carry per-query quality
    /// metrics, per-query drop ratios from the engine's `per_query` stats,
    /// and (on the streaming backend) the shared queue summary.
    ///
    /// Per-query results are identical to evaluating each query on its own
    /// engine ([`evaluate`](Self::evaluate)) — the fused engine only
    /// changes *how* events are fed, never what is decided — which is
    /// pinned by proptests.
    pub fn evaluate_set(&self, queries: &QuerySet, kind: ShedderKind) -> Vec<QualityOutcome> {
        let kinds = vec![kind; queries.len()];
        self.evaluate_mixed(queries, &kinds)
    }

    /// Evaluates a **heterogeneous** shedder mix on the fused engine: one
    /// shedder kind *per query* in a single run — eSPICE on one query, the
    /// baseline on another, random on a third — all sharing one ingestion
    /// pipeline. The decider rows are type-erased boxed shedders, the same
    /// mechanism the lifecycle paths use, so no driver-level enum mediates
    /// between shedder types anymore.
    ///
    /// # Panics
    ///
    /// Panics if `kinds.len()` differs from the query count.
    pub fn evaluate_mixed(&self, queries: &QuerySet, kinds: &[ShedderKind]) -> Vec<QualityOutcome> {
        assert_eq!(kinds.len(), queries.len(), "need exactly one shedder kind per query");
        let shards = self.config.shards.max(1);

        // Ground truth for all queries in one fused keep-everything pass.
        let mut gt_engine = self.engine_for_set(queries);
        let mut gt_deciders = vec![espice_cep::KeepAll; shards * queries.len()];
        let ground_truth = gt_engine.run_slice_per_query(&self.eval_stream, &mut gt_deciders);

        // One shedder per (shard, query), shard-major — seeded exactly as
        // an independent engine for that query would seed its shards, so
        // fused and independent evaluations stay byte-identical even for
        // randomised shedders.
        let plans: Vec<ShedPlan> = queries.queries().iter().map(|q| self.shed_plan(q)).collect();
        let mut deciders: Vec<Box<dyn AdaptiveShedder + Send>> =
            Vec::with_capacity(shards * queries.len());
        for shard in 0..shards {
            for (id, query) in queries.iter() {
                let mut shedder =
                    self.shedder_for(query, kinds[id as usize], self.config.seed + shard as u64);
                shedder.apply_plan(plans[id as usize]);
                deciders.push(shedder);
            }
        }

        let mut engine = self.engine_for_set(queries);
        let detected = match self.config.backend {
            EngineBackend::Slice => engine.run_slice_per_query(&self.eval_stream, &mut deciders),
            EngineBackend::Streaming { queue_capacity } => {
                engine.set_queue_capacity(queue_capacity);
                let mut source = SliceSource::from_stream(&self.eval_stream);
                engine.run_source_per_query(&mut source, &mut deciders)
            }
        };
        let stats = engine.stats();
        let queue = match self.config.backend {
            EngineBackend::Slice => None,
            EngineBackend::Streaming { queue_capacity } => Some(QueueSummary {
                capacity: queue_capacity,
                peak_depth: engine.queue_stats().iter().map(|q| q.peak_depth).max().unwrap_or(0),
                backpressure_events: engine
                    .queue_stats()
                    .iter()
                    .map(|q| q.backpressure_events)
                    .sum(),
            }),
        };

        queries
            .iter()
            .map(|(id, _)| {
                let id = id as usize;
                QualityOutcome {
                    shedder: kinds[id],
                    metrics: QualityMetrics::compare(&ground_truth[id], &detected[id]),
                    plan: plans[id],
                    drop_ratio: stats.per_query[id].drop_ratio(),
                    windows: stats.per_query[id].windows_closed,
                    queue,
                }
            })
            .collect()
    }

    /// The comparative quality study behind the CI quality matrix: runs one
    /// fused [`evaluate_mixed`](Self::evaluate_mixed) pass per strategy in
    /// `kinds` — every query of the set armed with that strategy — and
    /// returns one `Vec<QualityOutcome>` per strategy, in `kinds` order
    /// (outcomes within each vector are in query order).
    ///
    /// All strategies share one ground truth per study (the fused
    /// keep-everything pass embedded in `evaluate_mixed` is deterministic),
    /// and every family shedder shares the experiment's single trained
    /// model via [`shared_stats`](Self::shared_stats).
    pub fn quality_study(
        &self,
        queries: &QuerySet,
        kinds: &[ShedderKind],
    ) -> Vec<Vec<QualityOutcome>> {
        kinds.iter().map(|&kind| self.evaluate_set(queries, kind)).collect()
    }

    /// Evaluates `queries` with the eSPICE shedder on the **fault-tolerant**
    /// streaming backend ([`ShardedEngine::run_source_resilient`]): the same
    /// fused pipeline as [`evaluate_set`](Self::evaluate_set) with
    /// [`EngineBackend::Streaming`], but shard panics — e.g. an injected
    /// fault plan carried in `options` — are recovered by chunk replay and a
    /// wedged shard fails the run instead of hanging it. Returns the usual
    /// per-query quality outcomes plus the per-shard status record and the
    /// total recovery count; because recovery is byte-identical, a seeded
    /// crash must not change the quality outcomes (pinned by the chaos
    /// tests).
    ///
    /// # Panics
    ///
    /// Panics if the resilient run itself fails (stall deadline exceeded).
    pub fn evaluate_set_resilient(
        &self,
        queries: &QuerySet,
        options: &ResilienceOptions,
    ) -> (Vec<QualityOutcome>, Vec<ShardStatus>, u32) {
        let shards = self.config.shards.max(1);

        let mut gt_engine = self.engine_for_set(queries);
        let mut gt_deciders = vec![espice_cep::KeepAll; shards * queries.len()];
        let ground_truth = gt_engine.run_slice_per_query(&self.eval_stream, &mut gt_deciders);

        // Concrete (cloneable) eSPICE shedders rather than the boxed
        // heterogeneous rows: a replacement shard revives its deciders
        // from clones, which a `Box<dyn …>` row cannot provide.
        let plans: Vec<ShedPlan> = queries.queries().iter().map(|q| self.shed_plan(q)).collect();
        let mut deciders: Vec<EspiceShedder> = Vec::with_capacity(shards * queries.len());
        for _ in 0..shards {
            for (id, _) in queries.iter() {
                let mut shedder = EspiceShedder::new(self.model.clone());
                shedder.apply(plans[id as usize]);
                deciders.push(shedder);
            }
        }

        let mut engine = self.engine_for_set(queries);
        let queue_capacity = match self.config.backend {
            EngineBackend::Streaming { queue_capacity } => queue_capacity,
            EngineBackend::Slice => espice_cep::DEFAULT_QUEUE_CAPACITY,
        };
        engine.set_queue_capacity(queue_capacity);
        let mut source = SliceSource::from_stream(&self.eval_stream);
        let report = engine
            .run_source_resilient(&mut source, deciders, options)
            .unwrap_or_else(|error| panic!("resilient evaluation failed: {error}"));
        let stats = engine.stats();
        let queue = Some(QueueSummary {
            capacity: queue_capacity,
            peak_depth: engine.queue_stats().iter().map(|q| q.peak_depth).max().unwrap_or(0),
            backpressure_events: engine.queue_stats().iter().map(|q| q.backpressure_events).sum(),
        });

        let outcomes = queries
            .iter()
            .map(|(id, _)| {
                let id = id as usize;
                QualityOutcome {
                    shedder: ShedderKind::Espice,
                    metrics: QualityMetrics::compare(&ground_truth[id], &report.complex_events[id]),
                    plan: plans[id],
                    drop_ratio: stats.per_query[id].drop_ratio(),
                    windows: stats.per_query[id].windows_closed,
                    queue,
                }
            })
            .collect();
        (outcomes, report.shard_status, report.recoveries)
    }

    /// Creates the fused evaluation engine for a whole query set (the
    /// multi-query counterpart of `engine_for`).
    fn engine_for_set(&self, queries: &QuerySet) -> ShardedEngine {
        let mut engine = ShardedEngine::for_queries(queries.clone(), self.config.shards.max(1));
        if queries.queries().iter().any(|q| q.window().expected_size().is_none()) {
            engine.set_window_size_hint(self.model.average_window_size().round().max(1.0) as usize);
        }
        engine
    }

    /// Builds one shedder instance of `kind` for `query`, armed with
    /// nothing yet, as a type-erased boxed decider — one element of the
    /// heterogeneous rows the engine API accepts directly (the per-query
    /// `AnyShedder` enum this driver used to carry is gone: boxed rows are
    /// the engine-level mechanism now, shared with the lifecycle paths).
    pub fn shedder_for(
        &self,
        query: &Query,
        kind: ShedderKind,
        seed: u64,
    ) -> Box<dyn AdaptiveShedder + Send> {
        match kind {
            ShedderKind::Espice => Box::new(EspiceShedder::new(self.model.clone())),
            ShedderKind::Baseline => {
                Box::new(BaselineShedder::new(query.pattern(), &self.model, seed))
            }
            ShedderKind::Random => Box::new(RandomAdaptive::new(
                RandomShedder::new(seed),
                self.model.average_window_size(),
            )),
            ShedderKind::Hspice => {
                Box::new(HspiceShedder::new(self.shared.clone(), query.pattern()))
            }
            ShedderKind::Pspice => Box::new(PspiceShedder::new(self.shared.clone())),
            ShedderKind::Gspice => Box::new(GspiceShedder::new(self.shared.clone())),
        }
    }
}

/// Runs the operator once over the training prefix of `stream` to measure the
/// average window size of `query` — the paper's way of choosing the model
/// dimension `N` for variable-size (time-based) windows.
pub fn profile_average_window_size(query: &Query, stream: &VecStream) -> f64 {
    let mut operator = Operator::new(query.clone());
    let mut builder = ModelBuilder::new(ModelConfig::with_positions(16), 1);
    let _ = operator.run(stream, &mut builder);
    builder.average_window_size()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries;
    use espice_cep::SelectionPolicy;
    use espice_datasets::{StockConfig, StockDataset};

    fn dataset() -> StockDataset {
        StockDataset::generate(&StockConfig {
            num_symbols: 40,
            num_leading: 2,
            followers_per_leading: 15,
            duration_minutes: 120,
            cascade_probability: 0.7,
            seed: 3,
            ..StockConfig::default()
        })
    }

    fn config() -> ExperimentConfig {
        ExperimentConfig { throughput: 200.0, overload_factor: 1.2, ..ExperimentConfig::default() }
    }

    #[test]
    fn training_splits_the_stream() {
        let ds = dataset();
        let query = queries::q3(&ds, 8, 200, SelectionPolicy::First);
        let experiment = Experiment::train(
            &[query],
            &ds.stream,
            ds.registry.len(),
            ModelConfig::with_positions(200),
            config(),
        );
        let total = experiment.training_stream().len() + experiment.eval_stream().len();
        assert_eq!(total, ds.stream.len());
        assert!(experiment.model().windows_observed() > 0);
        assert!(experiment.model().complex_events_observed() > 0);
        assert_eq!(experiment.type_count(), ds.registry.len());
    }

    #[test]
    fn shed_plan_reflects_overload_factor() {
        let ds = dataset();
        let query = queries::q3(&ds, 8, 200, SelectionPolicy::First);
        let experiment = Experiment::train(
            std::slice::from_ref(&query),
            &ds.stream,
            ds.registry.len(),
            ModelConfig::with_positions(200),
            config(),
        );
        let plan = experiment.shed_plan(&query);
        assert!(plan.active);
        // δ/R = 1 − 1/1.2 ≈ 16.7 % of every partition must be dropped.
        let fraction = plan.events_to_drop / plan.partition_size as f64;
        assert!((fraction - (1.0 - 1.0 / 1.2)).abs() < 0.02);
    }

    #[test]
    fn espice_beats_random_on_ordered_cascades() {
        let ds = dataset();
        let query = queries::q3(&ds, 8, 200, SelectionPolicy::First);
        let experiment = Experiment::train(
            std::slice::from_ref(&query),
            &ds.stream,
            ds.registry.len(),
            ModelConfig::with_positions(200),
            config(),
        );
        let outcomes = experiment.compare(&query, &[ShedderKind::Espice, ShedderKind::Random]);
        let espice = &outcomes[0];
        let random = &outcomes[1];
        assert!(espice.metrics.ground_truth > 0, "no ground-truth complex events");
        assert!(espice.drop_ratio > 0.05, "eSPICE dropped almost nothing");
        assert!(
            espice.false_negative_pct() <= random.false_negative_pct(),
            "eSPICE ({}) must not lose more matches than random shedding ({})",
            espice.false_negative_pct(),
            random.false_negative_pct()
        );
    }

    #[test]
    fn evaluation_is_deterministic_for_espice() {
        let ds = dataset();
        let query = queries::q3(&ds, 8, 200, SelectionPolicy::First);
        let experiment = Experiment::train(
            std::slice::from_ref(&query),
            &ds.stream,
            ds.registry.len(),
            ModelConfig::with_positions(200),
            config(),
        );
        let a = experiment.evaluate(&query, ShedderKind::Espice);
        let b = experiment.evaluate(&query, ShedderKind::Espice);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn family_strategies_shed_and_share_one_model() {
        let ds = dataset();
        let query = queries::q3(&ds, 8, 200, SelectionPolicy::First);
        let experiment = Experiment::train(
            std::slice::from_ref(&query),
            &ds.stream,
            ds.registry.len(),
            ModelConfig::with_positions(200),
            ExperimentConfig { shards: 2, ..config() },
        );
        let set = espice_cep::QuerySet::new(vec![query]);
        let study = experiment.quality_study(&set, &ShedderKind::family());
        assert_eq!(study.len(), 4);
        for (kind, outcomes) in ShedderKind::family().iter().zip(&study) {
            assert_eq!(outcomes.len(), 1);
            let outcome = &outcomes[0];
            assert_eq!(outcome.shedder, *kind);
            assert!(outcome.metrics.ground_truth > 0, "{}: no ground truth", kind.label());
            // pSPICE sheds operator *state* (retro-dropping only events
            // orphaned by evicted partial matches), so its assignment drop
            // ratio is legitimately near zero when the match store stays
            // within budget; the input-shedding strategies must drop.
            if *kind != ShedderKind::Pspice {
                assert!(outcome.drop_ratio > 0.01, "{}: dropped almost nothing", kind.label());
            }
            assert!(outcome.metrics.recall() > 0.0, "{}: shed everything useful", kind.label());
        }
        // All shedders derived from the experiment's single shared model.
        assert!(espice::SharedUtilityStats::handles(experiment.shared_stats()) >= 1);
    }

    #[test]
    fn family_labels_are_distinct() {
        let labels: std::collections::HashSet<_> = [
            ShedderKind::Espice,
            ShedderKind::Baseline,
            ShedderKind::Random,
            ShedderKind::Hspice,
            ShedderKind::Pspice,
            ShedderKind::Gspice,
        ]
        .iter()
        .map(|k| k.label())
        .collect();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn profile_average_window_size_estimates_count_windows_exactly() {
        let ds = dataset();
        let query = queries::q3(&ds, 8, 200, SelectionPolicy::First);
        // Windows still open at the end of the profiling stream are flushed
        // with fewer events, so the average sits slightly below the nominal
        // 200-event window size.
        let avg = profile_average_window_size(&query, &ds.stream.slice(0, 2000));
        assert!(avg > 150.0 && avg <= 200.0, "average window size {avg} out of range");
    }

    #[test]
    fn streaming_backend_matches_slice_backend_and_reports_queues() {
        let ds = dataset();
        let query = queries::q3(&ds, 8, 200, SelectionPolicy::First);
        let slice = Experiment::train(
            std::slice::from_ref(&query),
            &ds.stream,
            ds.registry.len(),
            ModelConfig::with_positions(200),
            ExperimentConfig { shards: 2, ..config() },
        );
        let streaming = Experiment::train(
            std::slice::from_ref(&query),
            &ds.stream,
            ds.registry.len(),
            ModelConfig::with_positions(200),
            ExperimentConfig {
                shards: 2,
                backend: EngineBackend::Streaming { queue_capacity: 32 },
                ..config()
            },
        );
        let a = slice.evaluate(&query, ShedderKind::Espice);
        let b = streaming.evaluate(&query, ShedderKind::Espice);
        // Identical quality and drop decisions — the backend only changes
        // how events are fed, never what is decided.
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.drop_ratio, b.drop_ratio);
        assert_eq!(a.queue, None);
        let queue = b.queue.expect("streaming backend must report queues");
        assert_eq!(queue.capacity, 32);
        assert!(queue.peak_depth >= 1 && queue.peak_depth <= 32);
    }

    #[test]
    fn fused_multi_query_evaluation_equals_independent_evaluations() {
        let ds = dataset();
        let q_short = queries::q3(&ds, 6, 150, SelectionPolicy::First);
        let q_long = queries::q3(&ds, 8, 200, SelectionPolicy::First);
        let set = espice_cep::QuerySet::new(vec![q_short.clone(), q_long.clone()]);
        let experiment = Experiment::train(
            set.queries(),
            &ds.stream,
            ds.registry.len(),
            ModelConfig::with_positions(200),
            ExperimentConfig { shards: 2, ..config() },
        );
        let fused = experiment.evaluate_set(&set, ShedderKind::Espice);
        assert_eq!(fused.len(), 2);
        for (id, query) in set.iter() {
            let solo = experiment.evaluate(query, ShedderKind::Espice);
            assert_eq!(fused[id as usize].metrics, solo.metrics, "query {id} metrics diverged");
            assert_eq!(fused[id as usize].drop_ratio, solo.drop_ratio);
            assert_eq!(fused[id as usize].windows, solo.windows);
            assert_eq!(fused[id as usize].plan, solo.plan);
        }
    }

    #[test]
    fn fused_streaming_evaluation_reports_one_shared_queue() {
        let ds = dataset();
        let q_short = queries::q3(&ds, 6, 150, SelectionPolicy::First);
        let q_long = queries::q3(&ds, 8, 200, SelectionPolicy::First);
        let set = espice_cep::QuerySet::new(vec![q_short, q_long]);
        let experiment = Experiment::train(
            set.queries(),
            &ds.stream,
            ds.registry.len(),
            ModelConfig::with_positions(200),
            ExperimentConfig {
                shards: 2,
                backend: EngineBackend::Streaming { queue_capacity: 64 },
                ..config()
            },
        );
        let outcomes = experiment.evaluate_set(&set, ShedderKind::Espice);
        let queue = outcomes[0].queue.expect("streaming backend must report queues");
        assert_eq!(queue.capacity, 64);
        // Both queries ride the same shard queues, so they report the same
        // queue summary.
        assert_eq!(outcomes[0].queue, outcomes[1].queue);
    }

    #[test]
    #[should_panic(expected = "queue capacity")]
    fn zero_streaming_queue_capacity_rejected() {
        ExperimentConfig {
            backend: EngineBackend::Streaming { queue_capacity: 0 },
            ..ExperimentConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "training fraction")]
    fn invalid_training_fraction_rejected() {
        ExperimentConfig { training_fraction: 1.5, ..ExperimentConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ExperimentConfig { shards: 0, ..ExperimentConfig::default() }.validate();
    }

    #[test]
    fn ground_truth_is_invariant_under_sharding() {
        let ds = dataset();
        let query = queries::q3(&ds, 8, 200, SelectionPolicy::First);
        let single = Experiment::train(
            std::slice::from_ref(&query),
            &ds.stream,
            ds.registry.len(),
            ModelConfig::with_positions(200),
            config(),
        );
        let sharded = Experiment::train(
            std::slice::from_ref(&query),
            &ds.stream,
            ds.registry.len(),
            ModelConfig::with_positions(200),
            ExperimentConfig { shards: 4, ..config() },
        );
        assert_eq!(single.ground_truth(&query), sharded.ground_truth(&query));
    }

    #[test]
    fn sharded_evaluation_sheds_and_reports_merged_stats() {
        let ds = dataset();
        let query = queries::q3(&ds, 8, 200, SelectionPolicy::First);
        let experiment = Experiment::train(
            std::slice::from_ref(&query),
            &ds.stream,
            ds.registry.len(),
            ModelConfig::with_positions(200),
            ExperimentConfig { shards: 4, ..config() },
        );
        let single = experiment.evaluate(&query, ShedderKind::Espice);
        assert!(single.metrics.ground_truth > 0);
        assert!(single.drop_ratio > 0.05, "sharded eSPICE dropped almost nothing");
        assert!(single.windows > 0);
        // The per-shard shedders follow the same plan, so the realised drop
        // ratio matches a single-shard run closely.
        let unsharded = Experiment::train(
            std::slice::from_ref(&query),
            &ds.stream,
            ds.registry.len(),
            ModelConfig::with_positions(200),
            config(),
        )
        .evaluate(&query, ShedderKind::Espice);
        assert!((single.drop_ratio - unsharded.drop_ratio).abs() < 0.05);
    }
}

//! A common interface for shedders that react to drop commands at run time.

use espice::{
    BaselineShedder, EspiceShedder, GspiceShedder, HspiceShedder, PspiceShedder, RandomShedder,
    ShedPlan,
};
use espice_cep::{Decision, SharedDecider, WindowEventDecider, WindowMeta};
use espice_events::Event;

/// A load shedder that can be (de)activated with [`ShedPlan`]s while acting as
/// the operator's [`WindowEventDecider`].
///
/// Implemented for eSPICE, the `BL` baseline and the random shedder so the
/// experiment driver and the queueing simulation can treat them uniformly.
/// The trait is object-safe, and boxed trait objects
/// (`Box<dyn AdaptiveShedder + Send>`) implement it too — that is the
/// *heterogeneous decider row*: one engine run can arm eSPICE on one query
/// and a baseline on another, statically or through the lifecycle control
/// channel, without the enum the experiment driver used to carry.
pub trait AdaptiveShedder: WindowEventDecider {
    /// Applies a drop command (an inactive plan deactivates shedding).
    fn apply_plan(&mut self, plan: ShedPlan);

    /// Stops shedding.
    fn deactivate(&mut self);

    /// Whether the shedder is currently dropping events.
    fn is_active(&self) -> bool;
}

impl<S: AdaptiveShedder + ?Sized> AdaptiveShedder for &mut S {
    fn apply_plan(&mut self, plan: ShedPlan) {
        (**self).apply_plan(plan);
    }

    fn deactivate(&mut self) {
        (**self).deactivate();
    }

    fn is_active(&self) -> bool {
        (**self).is_active()
    }
}

impl<S: AdaptiveShedder + ?Sized> AdaptiveShedder for Box<S> {
    fn apply_plan(&mut self, plan: ShedPlan) {
        (**self).apply_plan(plan);
    }

    fn deactivate(&mut self) {
        (**self).deactivate();
    }

    fn is_active(&self) -> bool {
        (**self).is_active()
    }
}

/// A [`SharedDecider`] wrapper is itself adaptive: lock, delegate. This is
/// what lets a closed-loop shedder move into an engine-owned boxed row
/// while the caller keeps a clone to read controller state after the run
/// (or after the query's mid-stream teardown).
impl<S: AdaptiveShedder> AdaptiveShedder for SharedDecider<S> {
    fn apply_plan(&mut self, plan: ShedPlan) {
        self.lock().apply_plan(plan);
    }

    fn deactivate(&mut self) {
        self.lock().deactivate();
    }

    fn is_active(&self) -> bool {
        self.lock().is_active()
    }
}

impl AdaptiveShedder for EspiceShedder {
    fn apply_plan(&mut self, plan: ShedPlan) {
        self.apply(plan);
    }

    fn deactivate(&mut self) {
        EspiceShedder::deactivate(self);
    }

    fn is_active(&self) -> bool {
        EspiceShedder::is_active(self)
    }
}

impl AdaptiveShedder for BaselineShedder {
    fn apply_plan(&mut self, plan: ShedPlan) {
        self.apply(plan);
    }

    fn deactivate(&mut self) {
        BaselineShedder::deactivate(self);
    }

    fn is_active(&self) -> bool {
        BaselineShedder::is_active(self)
    }
}

impl AdaptiveShedder for HspiceShedder {
    fn apply_plan(&mut self, plan: ShedPlan) {
        self.apply(plan);
    }

    fn deactivate(&mut self) {
        HspiceShedder::deactivate(self);
    }

    fn is_active(&self) -> bool {
        HspiceShedder::is_active(self)
    }
}

impl AdaptiveShedder for GspiceShedder {
    fn apply_plan(&mut self, plan: ShedPlan) {
        self.apply(plan);
    }

    fn deactivate(&mut self) {
        GspiceShedder::deactivate(self);
    }

    fn is_active(&self) -> bool {
        GspiceShedder::is_active(self)
    }
}

impl AdaptiveShedder for PspiceShedder {
    fn apply_plan(&mut self, plan: ShedPlan) {
        self.apply(plan);
    }

    fn deactivate(&mut self) {
        PspiceShedder::deactivate(self);
    }

    fn is_active(&self) -> bool {
        PspiceShedder::is_active(self)
    }
}

/// [`RandomShedder`] adaptor that remembers the expected window size the drop
/// probability must be computed against.
#[derive(Debug, Clone)]
pub struct RandomAdaptive {
    inner: RandomShedder,
    expected_window_size: f64,
}

impl RandomAdaptive {
    /// Wraps a random shedder for windows of `expected_window_size` events.
    pub fn new(inner: RandomShedder, expected_window_size: f64) -> Self {
        RandomAdaptive { inner, expected_window_size }
    }

    /// The wrapped shedder.
    pub fn inner(&self) -> &RandomShedder {
        &self.inner
    }
}

impl WindowEventDecider for RandomAdaptive {
    fn decide(&mut self, meta: &WindowMeta, position: usize, event: &Event) -> Decision {
        self.inner.decide(meta, position, event)
    }
}

impl AdaptiveShedder for RandomAdaptive {
    fn apply_plan(&mut self, plan: ShedPlan) {
        self.inner.apply(plan, self.expected_window_size);
    }

    fn deactivate(&mut self) {
        self.inner.deactivate();
    }

    fn is_active(&self) -> bool {
        self.inner.is_active()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espice::{ModelBuilder, ModelConfig};
    use espice_cep::Pattern;
    use espice_events::EventType;

    fn plan() -> ShedPlan {
        ShedPlan { active: true, partitions: 1, partition_size: 10, events_to_drop: 2.0 }
    }

    #[test]
    fn espice_implements_adaptive() {
        let model = ModelBuilder::new(ModelConfig::with_positions(10), 1).build();
        let mut shedder = EspiceShedder::new(model);
        shedder.apply_plan(plan());
        assert!(AdaptiveShedder::is_active(&shedder));
        AdaptiveShedder::deactivate(&mut shedder);
        assert!(!AdaptiveShedder::is_active(&shedder));
    }

    #[test]
    fn baseline_implements_adaptive() {
        let model = ModelBuilder::new(ModelConfig::with_positions(10), 1).build();
        let pattern = Pattern::sequence([EventType::from_index(0)]);
        let mut shedder = BaselineShedder::new(&pattern, &model, 1);
        shedder.apply_plan(plan());
        assert!(AdaptiveShedder::is_active(&shedder));
        AdaptiveShedder::deactivate(&mut shedder);
        assert!(!AdaptiveShedder::is_active(&shedder));
    }

    #[test]
    fn family_backends_implement_adaptive() {
        use espice::SharedUtilityStats;
        let model = ModelBuilder::new(ModelConfig::with_positions(10), 1).build();
        let shared = SharedUtilityStats::new(model);
        let pattern = Pattern::sequence([EventType::from_index(0)]);
        let mut shedders: Vec<Box<dyn AdaptiveShedder + Send>> = vec![
            Box::new(HspiceShedder::new(shared.clone(), &pattern)),
            Box::new(GspiceShedder::new(shared.clone())),
            Box::new(PspiceShedder::new(shared)),
        ];
        for shedder in &mut shedders {
            shedder.apply_plan(plan());
            assert!(shedder.is_active());
            shedder.deactivate();
            assert!(!shedder.is_active());
        }
    }

    #[test]
    fn random_adaptor_translates_plans_into_probabilities() {
        let mut shedder = RandomAdaptive::new(RandomShedder::new(1), 10.0);
        shedder.apply_plan(plan());
        assert!(AdaptiveShedder::is_active(&shedder));
        assert!((shedder.inner().drop_probability() - 0.2).abs() < 1e-9);
        AdaptiveShedder::deactivate(&mut shedder);
        assert!(!AdaptiveShedder::is_active(&shedder));
    }
}

//! The four evaluation queries of the paper (§4.1), built against the
//! synthetic datasets.
//!
//! | Query | Operator class | Dataset | Window |
//! |---|---|---|---|
//! | Q1 | sequence with `any(n, DF…)` | soccer (RTLS) | time-based, opened on striker possession |
//! | Q2 | sequence with `any(n, RE…)` | stock | time-based, opened on leading-symbol quotes |
//! | Q3 | sequence of 20 specific symbols | stock | count-based, opened on leading-symbol quotes |
//! | Q4 | sequence with repetition | stock | count-based sliding (slide = 100 events) |
//!
//! All queries use skip-till-next/any-match semantics and at most one complex
//! event per window, matching the paper's default settings. The paper's
//! "rising or falling" disjunction is represented by the rising branch (the
//! falling branch is symmetric and exercises identical code paths).

use espice_cep::{CmpOp, Pattern, PatternStep, Predicate, Query, SelectionPolicy, WindowSpec};
use espice_datasets::{SoccerDataset, StockDataset};
use espice_events::SimDuration;

/// Q1: a striker possession followed by any `pattern_size` distinct defender
/// events within a time window of `window` (the man-marking query).
pub fn q1(
    dataset: &SoccerDataset,
    pattern_size: usize,
    window: SimDuration,
    selection: SelectionPolicy,
) -> Query {
    let strikers = dataset.striker_events.clone();
    let defenders = dataset.defender_events.clone();
    Query::builder()
        .name(&format!("Q1(n={pattern_size}, ws={window})"))
        .pattern(Pattern::new(vec![
            PatternStep::any_single(strikers.iter().copied()),
            PatternStep::any_of(defenders, pattern_size, true),
        ]))
        .window(WindowSpec::time_on_types(strikers, window))
        .selection(selection)
        .build()
}

/// Q2: a rising quote of a leading symbol followed by any `pattern_size`
/// distinct rising quotes within a time window of `window`.
pub fn q2(
    dataset: &StockDataset,
    pattern_size: usize,
    window: SimDuration,
    selection: SelectionPolicy,
) -> Query {
    let rising = Predicate::attr_cmp("change", CmpOp::Gt, 0.0);
    let leading = dataset.leading.clone();
    let all_symbols = dataset.symbols.clone();
    Query::builder()
        .name(&format!("Q2(n={pattern_size}, ws={window})"))
        .pattern(Pattern::new(vec![
            PatternStep::any_single(leading.iter().copied()).with_predicate(rising.clone()),
            PatternStep::any_of(all_symbols, pattern_size, true).with_predicate(rising),
        ]))
        .window(WindowSpec::time_on_types(leading, window))
        .selection(selection)
        .build()
}

/// Q3: rising quotes of `sequence_length` specific symbols (the first
/// followers of the first leading symbol, in cascade order) within a
/// count-based window of `window_events` events opened on leading quotes.
pub fn q3(
    dataset: &StockDataset,
    sequence_length: usize,
    window_events: usize,
    selection: SelectionPolicy,
) -> Query {
    let rising = Predicate::attr_cmp("change", CmpOp::Gt, 0.0);
    let sequence = dataset.cascade_prefix(sequence_length);
    let steps = sequence
        .into_iter()
        .map(|ty| PatternStep::single(ty).with_predicate(rising.clone()))
        .collect();
    Query::builder()
        .name(&format!("Q3(len={sequence_length}, ws={window_events})"))
        .pattern(Pattern::new(steps))
        .window(WindowSpec::count_on_types(dataset.leading.clone(), window_events))
        .selection(selection)
        .build()
}

/// Q4: a sequence *with repetition* over `distinct_symbols` specific symbols
/// (each appears twice, matching two consecutive cascade rounds) within a
/// count-based sliding window of `window_events` events and a slide of
/// `slide` events (the paper uses a slide of 100 events).
pub fn q4(
    dataset: &StockDataset,
    distinct_symbols: usize,
    window_events: usize,
    slide: usize,
    selection: SelectionPolicy,
) -> Query {
    let rising = Predicate::attr_cmp("change", CmpOp::Gt, 0.0);
    let base = dataset.cascade_prefix(distinct_symbols);
    // Repetition: the whole sub-sequence occurs twice (the generator's cascade
    // forces followers to rise for two consecutive quotes).
    let mut order: Vec<_> = base.clone();
    order.extend(base);
    let steps = order
        .into_iter()
        .map(|ty| PatternStep::single(ty).with_predicate(rising.clone()))
        .collect();
    Query::builder()
        .name(&format!("Q4(len={distinct_symbols}x2, ws={window_events})"))
        .pattern(Pattern::new(steps))
        .window(WindowSpec::count_sliding(window_events, slide))
        .selection(selection)
        .build()
}

/// Named multi-query mixes for the fused engine: reusable [`QuerySet`]s
/// that put several of the paper's query shapes on one ingestion pipeline.
///
/// The registry gives experiments, benches and examples a shared
/// vocabulary ("run `q3-ladder` at 4 shards") instead of every harness
/// assembling its own ad-hoc set.
///
/// [`QuerySet`]: espice_cep::QuerySet
pub mod mixes {
    use super::{q2, q3, q4};
    use espice_cep::{QuerySet, SelectionPolicy};
    use espice_datasets::StockDataset;
    use espice_events::SimDuration;

    /// The registered mix names, resolvable via [`by_name`].
    pub const NAMES: &[&str] = &["q3-ladder", "q4-slides", "stock-blend"];

    /// A ladder of Q3 cascade queries that differ only in sequence length
    /// (4, 6, 8, … up to `rungs` queries) over a shared 200-event window —
    /// the homogeneous mix: identical open policies, so the fused engine
    /// runs one open tracker for the whole set.
    ///
    /// # Panics
    ///
    /// Panics if `rungs` is zero.
    pub fn q3_ladder(dataset: &StockDataset, rungs: usize) -> QuerySet {
        assert!(rungs >= 1, "a ladder needs at least one rung");
        QuerySet::new(
            (0..rungs).map(|i| q3(dataset, 4 + 2 * i, 200, SelectionPolicy::First)).collect(),
        )
    }

    /// Q4 repetition queries at three different slides over the same
    /// window span — sliding (count-slide) open policies that differ, so
    /// every query keeps its own open tracker while still sharing the
    /// event hand-off.
    pub fn q4_slides(dataset: &StockDataset) -> QuerySet {
        QuerySet::new(
            [50usize, 100, 200]
                .into_iter()
                .map(|slide| q4(dataset, 5, 600, slide, SelectionPolicy::First))
                .collect(),
        )
    }

    /// A heterogeneous blend on the stock stream: a time-window Q2, a
    /// count-window Q3 and a sliding Q4 — three window kinds, three open
    /// policies, one pipeline.
    pub fn stock_blend(dataset: &StockDataset) -> QuerySet {
        QuerySet::new(vec![
            q2(dataset, 10, SimDuration::from_secs(240), SelectionPolicy::First),
            q3(dataset, 8, 200, SelectionPolicy::First),
            q4(dataset, 5, 600, 100, SelectionPolicy::First),
        ])
    }

    /// Resolves a registered mix by name (see [`NAMES`]).
    pub fn by_name(dataset: &StockDataset, name: &str) -> Option<QuerySet> {
        match name {
            "q3-ladder" => Some(q3_ladder(dataset, 3)),
            "q4-slides" => Some(q4_slides(dataset)),
            "stock-blend" => Some(stock_blend(dataset)),
            _ => None,
        }
    }

    /// The registered churn scenario: a tenant ladder in motion. Starts
    /// with two Q3 rungs, admits a third rung a third of the way into a
    /// stream of `stream_len` events, and retires the first rung at the
    /// two-thirds mark — the canonical admit-and-retire schedule the live
    /// engine ([`run_closed_loop_live`](crate::run_closed_loop_live)) and
    /// the simulation oracle
    /// ([`LatencySimulation::run_set_live`](crate::LatencySimulation::run_set_live))
    /// both replay.
    ///
    /// # Panics
    ///
    /// Panics if `stream_len` is shorter than 3 events.
    pub fn q3_churn(
        dataset: &StockDataset,
        stream_len: usize,
    ) -> (QuerySet, Vec<crate::streaming::QueryChurn>) {
        assert!(stream_len >= 3, "the churn schedule needs at least 3 events of stream");
        let initial = q3_ladder(dataset, 2);
        let admitted = super::q3(dataset, 8, 200, SelectionPolicy::First);
        let churn = vec![
            crate::streaming::QueryChurn::admit(stream_len as u64 / 3, admitted),
            crate::streaming::QueryChurn::retire(2 * stream_len as u64 / 3, 0),
        ];
        (initial, churn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espice_cep::{KeepAll, Operator};
    use espice_datasets::{SoccerConfig, StockConfig};

    fn stock() -> StockDataset {
        StockDataset::generate(&StockConfig {
            num_symbols: 60,
            num_leading: 2,
            followers_per_leading: 25,
            duration_minutes: 60,
            cascade_probability: 0.8,
            ..StockConfig::default()
        })
    }

    fn soccer() -> SoccerDataset {
        SoccerDataset::generate(&SoccerConfig {
            players_per_team: 8,
            duration_seconds: 600,
            possession_probability: 0.15,
            ..SoccerConfig::default()
        })
    }

    #[test]
    fn q1_detects_man_marking_complex_events() {
        let dataset = soccer();
        let query = q1(&dataset, 3, SimDuration::from_secs(15), SelectionPolicy::First);
        assert_eq!(query.pattern().total_events(), 4);
        let mut op = Operator::new(query);
        let matches = op.run(&dataset.stream, &mut KeepAll);
        assert!(!matches.is_empty(), "Q1 found no complex events in the soccer stream");
        // Every match starts with a possession event.
        for m in &matches {
            assert!(dataset.striker_events.contains(&m.constituents()[0].event_type));
        }
    }

    #[test]
    fn q2_detects_correlated_risers() {
        let dataset = stock();
        let query = q2(&dataset, 10, SimDuration::from_secs(240), SelectionPolicy::First);
        let mut op = Operator::new(query);
        let matches = op.run(&dataset.stream, &mut KeepAll);
        assert!(!matches.is_empty(), "Q2 found no complex events in the stock stream");
        // All constituents are rising quotes.
        for m in &matches {
            assert_eq!(m.len(), 11);
        }
    }

    #[test]
    fn q3_detects_ordered_cascades() {
        let dataset = stock();
        let query = q3(&dataset, 10, 600, SelectionPolicy::First);
        assert_eq!(query.pattern().len(), 10);
        let mut op = Operator::new(query);
        let matches = op.run(&dataset.stream, &mut KeepAll);
        assert!(!matches.is_empty(), "Q3 found no ordered cascades");
    }

    #[test]
    fn q4_detects_repeated_cascades() {
        let dataset = stock();
        let query = q4(&dataset, 5, 600, 100, SelectionPolicy::First);
        assert_eq!(query.pattern().len(), 10);
        assert_eq!(query.pattern().referenced_types().len(), 5);
        let mut op = Operator::new(query);
        let matches = op.run(&dataset.stream, &mut KeepAll);
        assert!(!matches.is_empty(), "Q4 found no repeated cascades");
    }

    #[test]
    fn every_registered_mix_resolves_and_produces_matches_on_the_fused_engine() {
        let dataset = stock();
        for &name in mixes::NAMES {
            let set = mixes::by_name(&dataset, name).expect("registered name must resolve");
            assert!(set.len() >= 2, "mix {name} is not multi-query");
            let mut engine = espice_cep::ShardedEngine::for_queries(set.clone(), 2);
            let mut deciders = vec![KeepAll; 2 * set.len()];
            let outputs = engine.run_per_query(&dataset.stream, &mut deciders);
            assert_eq!(outputs.len(), set.len());
            assert!(
                outputs.iter().any(|o| !o.is_empty()),
                "mix {name} found no complex events at all"
            );
        }
        assert!(mixes::by_name(&dataset, "no-such-mix").is_none());
    }

    #[test]
    fn q3_ladder_shares_one_open_tracker() {
        let dataset = stock();
        let set = mixes::q3_ladder(&dataset, 3);
        let shard = espice_cep::Shard::for_queries(&set, 0, 1);
        assert_eq!(shard.open_groups(), 1, "homogeneous open policies must fuse");
        // The blend's Q2 and Q3 both open on the leading symbols (their
        // *extents* differ, but the open policy is shared), so three
        // queries need only two trackers.
        let blend = mixes::stock_blend(&dataset);
        let shard = espice_cep::Shard::for_queries(&blend, 0, 1);
        assert_eq!(shard.open_groups(), 2, "Q2/Q3 share a policy; Q4 slides on its own");
    }

    #[test]
    fn last_selection_also_produces_matches() {
        let dataset = stock();
        let query = q2(&dataset, 5, SimDuration::from_secs(240), SelectionPolicy::Last);
        let mut op = Operator::new(query);
        let matches = op.run(&dataset.stream, &mut KeepAll);
        assert!(!matches.is_empty());
    }
}

//! Quality-of-result and latency metrics.
//!
//! The paper measures result quality as the number of false positives and
//! false negatives relative to the complex events an unshedded run would have
//! produced (§2.1), and reports them as percentages of the ground-truth count.

use espice_cep::ComplexEvent;
use espice_events::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// False-positive / false-negative counts of a shedded run against the
/// unshedded ground truth.
///
/// # Example
///
/// ```
/// use espice_cep::{ComplexEvent, Constituent};
/// use espice_events::{EventType, Timestamp};
/// use espice_runtime::QualityMetrics;
///
/// let c = |w, seq| ComplexEvent::new(w, Timestamp::ZERO, vec![Constituent {
///     seq, event_type: EventType::from_index(0), position: 0 }]);
/// let ground_truth = vec![c(0, 1), c(1, 2)];
/// let detected = vec![c(0, 1), c(1, 9)];
/// let m = QualityMetrics::compare(&ground_truth, &detected);
/// assert_eq!(m.true_positives, 1);
/// assert_eq!(m.false_negatives, 1);
/// assert_eq!(m.false_positives, 1);
/// assert_eq!(m.false_negative_pct(), 50.0);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QualityMetrics {
    /// Complex events detected by the unshedded (ground truth) run.
    pub ground_truth: usize,
    /// Complex events detected by the shedded run.
    pub detected: usize,
    /// Detected complex events that are also in the ground truth.
    pub true_positives: usize,
    /// Detected complex events that are *not* in the ground truth.
    pub false_positives: usize,
    /// Ground-truth complex events that were *not* detected.
    pub false_negatives: usize,
}

impl QualityMetrics {
    /// Compares a shedded run against the ground truth. Complex events are
    /// identified by their window and constituent set ([`ComplexEvent::key`]).
    pub fn compare(ground_truth: &[ComplexEvent], detected: &[ComplexEvent]) -> Self {
        let gt_keys: HashSet<_> = ground_truth.iter().map(ComplexEvent::key).collect();
        let detected_keys: HashSet<_> = detected.iter().map(ComplexEvent::key).collect();
        let true_positives = detected_keys.intersection(&gt_keys).count();
        QualityMetrics {
            ground_truth: gt_keys.len(),
            detected: detected_keys.len(),
            true_positives,
            false_positives: detected_keys.difference(&gt_keys).count(),
            false_negatives: gt_keys.difference(&detected_keys).count(),
        }
    }

    /// False negatives as a percentage of the ground-truth count (the y-axis
    /// of Figures 5, 8, 9). 0 when the ground truth is empty.
    pub fn false_negative_pct(&self) -> f64 {
        percentage(self.false_negatives, self.ground_truth)
    }

    /// False positives as a percentage of the ground-truth count (Figure 6).
    pub fn false_positive_pct(&self) -> f64 {
        percentage(self.false_positives, self.ground_truth)
    }

    /// Recall of the shedded run (`1 − FN/GT`), in `[0, 1]`.
    pub fn recall(&self) -> f64 {
        if self.ground_truth == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.ground_truth as f64
        }
    }

    /// Precision of the shedded run, in `[0, 1]` (1 when nothing was detected).
    pub fn precision(&self) -> f64 {
        if self.detected == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.detected as f64
        }
    }
}

fn percentage(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64 * 100.0
    }
}

/// Per-event latency trace of a queueing simulation run (Figure 7).
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyTrace {
    /// `(simulated time in seconds, event latency in seconds)` samples,
    /// sampled once per [`sample_interval`](Self::sample_interval).
    pub samples: Vec<(f64, f64)>,
    /// The latency bound the run was configured with.
    pub bound: SimDuration,
    /// Sampling interval used for `samples`.
    pub sample_interval: SimDuration,
    /// Number of events processed.
    pub events: usize,
    /// Number of events whose latency exceeded the bound.
    pub violations: usize,
    /// Largest observed latency.
    pub max_latency: SimDuration,
    /// Mean observed latency in seconds.
    pub mean_latency_secs: f64,
    /// Fraction of (event, window) assignments dropped by the shedder.
    pub drop_ratio: f64,
    /// Largest input-queue depth observed during the run (events arrived
    /// but not yet completed).
    pub peak_queue_depth: usize,
}

impl LatencyTrace {
    /// Whether the latency bound was held for every event.
    pub fn bound_held(&self) -> bool {
        self.violations == 0
    }

    /// The largest sampled latency in seconds (0 for empty traces).
    pub fn peak_sampled_latency(&self) -> f64 {
        self.samples.iter().map(|&(_, l)| l).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espice_cep::Constituent;
    use espice_events::{EventType, Timestamp};

    fn complex(window: u64, seqs: &[u64]) -> ComplexEvent {
        ComplexEvent::new(
            window,
            Timestamp::ZERO,
            seqs.iter()
                .map(|&s| Constituent { seq: s, event_type: EventType::from_index(0), position: 0 })
                .collect(),
        )
    }

    #[test]
    fn identical_runs_have_perfect_quality() {
        let gt = vec![complex(0, &[1, 2]), complex(1, &[3, 4])];
        let m = QualityMetrics::compare(&gt, &gt);
        assert_eq!(m.false_negatives, 0);
        assert_eq!(m.false_positives, 0);
        assert_eq!(m.true_positives, 2);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.false_negative_pct(), 0.0);
    }

    #[test]
    fn missing_and_extra_matches_are_counted() {
        let gt = vec![complex(0, &[1, 2]), complex(1, &[3, 4]), complex(2, &[5])];
        let detected = vec![complex(0, &[1, 2]), complex(1, &[3, 9])];
        let m = QualityMetrics::compare(&gt, &detected);
        assert_eq!(m.true_positives, 1);
        assert_eq!(m.false_negatives, 2);
        assert_eq!(m.false_positives, 1);
        assert!((m.false_negative_pct() - 66.666).abs() < 0.01);
        assert!((m.false_positive_pct() - 33.333).abs() < 0.01);
        assert!((m.precision() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn same_constituents_in_different_windows_are_different_situations() {
        let gt = vec![complex(0, &[1, 2])];
        let detected = vec![complex(1, &[1, 2])];
        let m = QualityMetrics::compare(&gt, &detected);
        assert_eq!(m.true_positives, 0);
        assert_eq!(m.false_positives, 1);
        assert_eq!(m.false_negatives, 1);
    }

    #[test]
    fn empty_ground_truth_is_handled() {
        let m = QualityMetrics::compare(&[], &[complex(0, &[1])]);
        assert_eq!(m.false_positive_pct(), 0.0);
        assert_eq!(m.false_negative_pct(), 0.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.precision(), 0.0);
        let empty = QualityMetrics::compare(&[], &[]);
        assert_eq!(empty.precision(), 1.0);
    }

    #[test]
    fn latency_trace_summaries() {
        let trace = LatencyTrace {
            samples: vec![(0.0, 0.1), (1.0, 0.8), (2.0, 0.5)],
            bound: SimDuration::from_secs(1),
            sample_interval: SimDuration::from_secs(1),
            events: 3,
            violations: 0,
            max_latency: SimDuration::from_millis(800),
            mean_latency_secs: 0.46,
            drop_ratio: 0.1,
            peak_queue_depth: 42,
        };
        assert!(trace.bound_held());
        assert!((trace.peak_sampled_latency() - 0.8).abs() < 1e-9);
        assert_eq!(LatencyTrace::default().peak_sampled_latency(), 0.0);
    }
}

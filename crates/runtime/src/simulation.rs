//! Discrete-event queueing simulation of the CEP operator under overload
//! (reproduces Figure 7: event latency over time with a 1 s latency bound).
//!
//! The operator is modelled as a single FIFO server (the paper throttles its
//! prototype to a single thread as the resource limitation): events arrive at
//! the configured input rate, wait in the input queue and are processed one by
//! one. Processing an event costs `1 / th` of simulated time when nothing is
//! shed; when the load shedder drops the event from a fraction of its windows,
//! the cost shrinks proportionally — dropping an event from every window it
//! belongs to makes it (almost) free, which is how shedding relieves the
//! queue.
//!
//! Overload detection is **closed-loop**: the simulation drives the same
//! [`QueueOverloadController`] the real streaming engine uses, feeding it
//! the simulated clock, the simulated queue depth and the drain/busy
//! counters of the simulated servers every `check_interval`. The
//! configured `throughput` and `input_rate` only define the simulated
//! *world* (service cost and arrival process); the controller never sees
//! them — it measures both from the queue, exactly as it would against
//! real hardware. That makes this module the deterministic test oracle for
//! the closed control loop.

use crate::adaptive::AdaptiveShedder;
use crate::metrics::LatencyTrace;
use crate::streaming::{ChurnAction, QueryChurn};
use espice::{ControlAction, QueueOverloadController};
use espice_cep::{ComplexEvent, Operator, OperatorStats, Query, QueryId, QuerySet};
use espice_events::{RateReplay, SimDuration, Timestamp, VecStream};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Parameters of the queueing simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySimConfig {
    /// Operator throughput `th` in events per second.
    pub throughput: f64,
    /// Input rate in events per second (e.g. `1.2 · th` for the paper's R1).
    pub input_rate: f64,
    /// Latency bound `LB`.
    pub latency_bound: SimDuration,
    /// Queue-fill factor `f` at which shedding starts.
    pub f: f64,
    /// How often the overload detector checks the queue.
    pub check_interval: SimDuration,
    /// How often a latency sample is recorded for the trace.
    pub sample_interval: SimDuration,
    /// Fixed per-event overhead of consulting the load shedder, as a fraction
    /// of the per-event processing cost (the paper measures ≤ 5 %).
    pub shedding_overhead: f64,
    /// Number of parallel engine shards serving the input queue (1 = the
    /// paper's single-threaded operator). Each shard is a server with
    /// `throughput` events/s of capacity; events are dispatched to the shard
    /// that frees up first, so `shards` multiplies the service capacity the
    /// overload detector works against.
    pub shards: usize,
}

impl Default for LatencySimConfig {
    fn default() -> Self {
        LatencySimConfig {
            throughput: 1000.0,
            input_rate: 1200.0,
            latency_bound: SimDuration::from_secs(1),
            f: 0.8,
            check_interval: SimDuration::from_millis(100),
            sample_interval: SimDuration::from_millis(500),
            shedding_overhead: 0.01,
            shards: 1,
        }
    }
}

impl LatencySimConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if rates are non-positive, `f` is out of range, or intervals are
    /// zero.
    pub fn validate(&self) {
        assert!(self.throughput > 0.0 && self.input_rate > 0.0, "rates must be positive");
        assert!((0.0..=1.0).contains(&self.f), "f must be in [0, 1]");
        assert!(!self.check_interval.is_zero(), "check interval must be positive");
        assert!(!self.sample_interval.is_zero(), "sample interval must be positive");
        assert!(
            (0.0..1.0).contains(&self.shedding_overhead),
            "shedding overhead must be a fraction in [0, 1)"
        );
        assert!(self.shards >= 1, "need at least one shard");
    }
}

/// Result of a simulation run: the latency trace plus the complex events the
/// operator produced while shedding.
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// The latency trace (Figure 7 series).
    pub trace: LatencyTrace,
    /// Complex events detected during the simulated run.
    pub complex_events: Vec<ComplexEvent>,
    /// How often the overload detector switched shedding on.
    pub shedding_activations: u64,
    /// The controller's final *measured* throughput estimate (events/s),
    /// if it calibrated. Compare against the configured service capacity
    /// to judge the measurement path.
    pub measured_throughput: Option<f64>,
}

/// Result of a multi-query simulation run: one latency trace for the
/// shared queue, plus each query's complex events.
#[derive(Debug, Clone)]
pub struct MultiSimulationOutcome {
    /// The latency trace of the shared queue (service times sum every
    /// query's work per event).
    pub trace: LatencyTrace,
    /// Complex events detected per query, indexed by query.
    pub complex_events: Vec<Vec<ComplexEvent>>,
    /// Shedding activations summed over all per-query controllers.
    pub shedding_activations: u64,
    /// The largest final *measured* throughput estimate across the
    /// per-query controllers, if any calibrated (they share one published
    /// signal, so they rarely disagree by more than smoothing lag).
    pub measured_throughput: Option<f64>,
}

/// The queueing simulation.
#[derive(Debug, Clone)]
pub struct LatencySimulation {
    config: LatencySimConfig,
}

impl LatencySimulation {
    /// Creates a simulation with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: LatencySimConfig) -> Self {
        config.validate();
        LatencySimulation { config }
    }

    /// The simulation parameters.
    pub fn config(&self) -> &LatencySimConfig {
        &self.config
    }

    /// Replays `stream` into an operator running `query` at the configured
    /// input rate, with `shedder` in the loop, and records per-event
    /// latencies. Single-query wrapper over [`run_set`](Self::run_set).
    pub fn run<S>(&self, query: &Query, stream: &VecStream, shedder: &mut S) -> SimulationOutcome
    where
        S: AdaptiveShedder,
    {
        let mut outcome =
            self.run_set(&QuerySet::single(query.clone()), stream, std::slice::from_mut(shedder));
        SimulationOutcome {
            trace: outcome.trace,
            complex_events: outcome.complex_events.pop().expect("one query"),
            shedding_activations: outcome.shedding_activations,
            measured_throughput: outcome.measured_throughput,
        }
    }

    /// Replays `stream` into one operator **per query** of `queries` at the
    /// configured input rate, with one adaptive shedder per query in the
    /// loop, and records per-event latencies over the *shared* queue.
    ///
    /// This is the deterministic oracle for the fused multi-query engine:
    /// all queries are served by the same simulated FIFO servers (an
    /// event's service time sums the work every query actually performed on
    /// it), one queue feeds them all, and — exactly as on the real
    /// streaming path — each query runs its own
    /// [`QueueOverloadController`] fed the same measured samples, with a
    /// [`SharedThroughput`](espice::SharedThroughput) signal keeping their
    /// capacity estimates in agreement. The paper's `f·qmax` check thereby
    /// governs a queue serving all queries at once.
    pub fn run_set<S>(
        &self,
        queries: &QuerySet,
        stream: &VecStream,
        shedders: &mut [S],
    ) -> MultiSimulationOutcome
    where
        S: AdaptiveShedder,
    {
        assert_eq!(shedders.len(), queries.len(), "need exactly one shedder per query");
        let borrowed: Vec<&mut S> = shedders.iter_mut().collect();
        self.run_set_live(queries, stream, borrowed, &[], |_, _| {
            unreachable!("an empty churn schedule admits nothing")
        })
    }

    /// [`run_set`](Self::run_set) with a lifecycle schedule in the loop:
    /// the simulated query population changes mid-stream according to
    /// `churn` — admissions get a fresh operator (window ids from zero, as
    /// a fresh engine's would), a fresh shedder from `make_shedder(slot,
    /// query)` and a fresh controller on the shared throughput signal;
    /// retirements stop opening windows at their position, drain the open
    /// windows to completion and then tear operator, shedder and
    /// controller down. Positions are event indices into `stream`, exactly
    /// the anchors [`run_closed_loop_live`](crate::run_closed_loop_live)
    /// replays on the real engine — this simulation is the deterministic
    /// oracle for that path.
    ///
    /// The outcome's per-slot axis covers every slot ever admitted;
    /// retired slots keep the complex events they produced while live.
    ///
    /// # Panics
    ///
    /// Panics if the initial shedder count mismatches, or a churn entry
    /// retires a slot that does not exist when its position is reached.
    pub fn run_set_live<S, F>(
        &self,
        initial: &QuerySet,
        stream: &VecStream,
        initial_shedders: Vec<S>,
        churn: &[QueryChurn],
        mut make_shedder: F,
    ) -> MultiSimulationOutcome
    where
        S: AdaptiveShedder,
        F: FnMut(QueryId, &Query) -> S,
    {
        assert_eq!(
            initial_shedders.len(),
            initial.len(),
            "need exactly one shedder per initial query"
        );
        let cfg = &self.config;
        let base_service = SimDuration::from_secs_f64(1.0 / cfg.throughput);
        let overhead = base_service.mul_f64(cfg.shedding_overhead);
        let servers = cfg.shards.max(1);

        // The closed-loop controllers measure the *aggregate* drain
        // capacity by themselves: with N servers the summed busy time
        // scales the estimate, so both the tolerable queue length (qmax)
        // and the rate surplus to shed follow the real service capacity —
        // no precomputed throughput or input rate is handed over. One
        // controller per query (each plans against its own window
        // geometry), sharing one published throughput estimate since one
        // queue serves them all; admitted queries join the same signal.
        let shared = std::sync::Arc::new(espice::SharedThroughput::new());
        let overload = espice::OverloadConfig {
            latency_bound: cfg.latency_bound,
            f: cfg.f,
            check_interval: cfg.check_interval,
            ..espice::OverloadConfig::default()
        };
        let fresh_controller = || {
            let mut controller = QueueOverloadController::with_servers(overload, servers);
            controller.share_throughput(std::sync::Arc::clone(&shared));
            controller
        };

        let mut slots: Vec<SimSlot<S>> = initial
            .iter()
            .zip(initial_shedders)
            .map(|((query_id, query), shedder)| SimSlot::Live {
                operator: Operator::for_query(query.clone(), query_id, 0, 1),
                shedder,
                controller: fresh_controller(),
                draining: false,
            })
            .collect();
        let mut complex_events: Vec<Vec<ComplexEvent>> =
            (0..slots.len()).map(|_| Vec::new()).collect();
        let mut ordered: Vec<&QueryChurn> = churn.iter().collect();
        ordered.sort_by_key(|change| change.at);
        let mut next_change = 0usize;

        // Completion times of events still "in the system" (with their
        // service durations, so completed work can be credited to the
        // controllers' busy-time measurement); used to derive the queue
        // length seen by the overload controllers. A min-heap because with
        // several servers completions are not monotone in arrival order.
        let mut in_flight: BinaryHeap<Reverse<(Timestamp, SimDuration)>> = BinaryHeap::new();
        // One FIFO server per engine shard; an event is dispatched to the
        // server that frees up first. `shards == 1` is the paper's
        // single-threaded operator.
        let mut server_free: Vec<Timestamp> = vec![Timestamp::ZERO; servers];
        let mut next_check = cfg.check_interval;
        let mut next_sample = Timestamp::ZERO;
        // Cumulative busy time of all servers (sum of completed service
        // durations) and events drained since the last check.
        let mut busy_total = SimDuration::ZERO;
        let mut drained_since_check = 0u64;
        // Summed operator counters at the previous check (for the
        // kept/assignment deltas in the controllers' samples). Retired
        // slots keep contributing their frozen totals so the deltas stay
        // monotone across a teardown.
        let mut assignments_at_check = 0u64;
        let mut kept_at_check = 0u64;
        let mut peak_queue_depth = 0usize;

        let mut trace = LatencyTrace {
            bound: cfg.latency_bound,
            sample_interval: cfg.sample_interval,
            ..LatencyTrace::default()
        };
        let mut latency_sum = 0.0f64;

        for (index, (arrival, event)) in RateReplay::new(stream, cfg.input_rate).enumerate() {
            // Lifecycle changes due at this stream position, applied
            // before the event is offered to anyone — the same safe point
            // the real engine's in-band commands occupy.
            while next_change < ordered.len() && ordered[next_change].at <= index as u64 {
                let change = ordered[next_change];
                next_change += 1;
                match &change.action {
                    ChurnAction::Admit(query) => {
                        let slot = slots.len() as QueryId;
                        let shedder = make_shedder(slot, query);
                        // A mid-stream join: the first sample this
                        // controller sees carries the run's cumulative
                        // clocks, so it must align, not measure.
                        let mut controller = fresh_controller();
                        controller.join_in_progress();
                        slots.push(SimSlot::Live {
                            operator: Operator::for_query(query.clone(), slot, 0, 1),
                            shedder,
                            controller,
                            draining: false,
                        });
                        complex_events.push(Vec::new());
                    }
                    ChurnAction::Retire(slot) => {
                        let state = slots
                            .get_mut(*slot as usize)
                            .unwrap_or_else(|| panic!("churn retires unknown slot {slot}"));
                        let finished = match state {
                            SimSlot::Live { operator, draining, .. } => {
                                *draining = true;
                                operator.open_windows() == 0
                            }
                            SimSlot::Retired { .. } => false,
                        };
                        if finished {
                            finalize_sim_slot(state);
                        }
                    }
                }
            }

            // The event starts on the earliest-free server once it has
            // arrived.
            let mut server = 0;
            for idx in 1..server_free.len() {
                if server_free[idx] < server_free[server] {
                    server = idx;
                }
            }
            let start = arrival.max(server_free[server]);

            // Fire overload checks that are due before this event arrives.
            // Checks are anchored to arrival time so the queue length they
            // observe counts exactly the events that have arrived but not
            // yet completed at the check instant.
            while Timestamp::ZERO + next_check <= arrival {
                let check_time = Timestamp::ZERO + next_check;
                while in_flight.peek().is_some_and(|&Reverse((c, _))| c <= check_time) {
                    let Reverse((_, service)) = in_flight.pop().expect("peeked above");
                    busy_total += service;
                    drained_since_check += 1;
                }
                // The controllers see exactly what a drain loop would
                // report: cumulative time/busy, current depth, the drain
                // delta and the kept/assignment deltas of the processed
                // events (the kept fraction that normalises mid-shed
                // throughput measurements). Queue state is shared; only
                // the window-size prediction is per query.
                let assignments_now: u64 = slots.iter().map(SimSlot::assignments).sum();
                let kept_now: u64 = slots.iter().map(SimSlot::kept).sum();
                let mut measurement = espice_cep::QueueSample {
                    elapsed: next_check,
                    busy: busy_total,
                    depth: in_flight.len(),
                    drained: drained_since_check,
                    assignments: assignments_now - assignments_at_check,
                    kept: kept_now - kept_at_check,
                    predicted_window_size: 0,
                };
                assignments_at_check = assignments_now;
                kept_at_check = kept_now;
                drained_since_check = 0;
                for state in slots.iter_mut() {
                    let SimSlot::Live { operator, shedder, controller, .. } = state else {
                        continue;
                    };
                    measurement.predicted_window_size = operator.predicted_window_size();
                    match controller.sample(&measurement) {
                        Some(ControlAction::Shed(plan)) => shedder.apply_plan(plan),
                        Some(ControlAction::Resume) => shedder.deactivate(),
                        None => {}
                    }
                }
                next_check += cfg.check_interval;
            }

            // Process the event through every live query's operator (this
            // is where shedding decisions for each window happen). The
            // service time sums each query's share: proportional to the
            // window assignments that were actually processed, plus the
            // (small) shedding overhead whenever an active shedder is
            // consulted. Events that fall into no open window of a query
            // only pay the small constant cost of being parsed and
            // discarded — that operator has nothing to match them against.
            // Draining queries stop opening windows but keep feeding their
            // open ones; the moment the last closes, the slot is torn down
            // and stops costing service time at all.
            let mut service = SimDuration::ZERO;
            for (slot, state) in slots.iter_mut().enumerate() {
                let finished = match state {
                    SimSlot::Live { operator, shedder, draining, .. } => {
                        let assignments_before = operator.stats().assignments;
                        let kept_before = operator.stats().kept;
                        if *draining {
                            complex_events[slot]
                                .extend(operator.push_opened(&event, false, shedder));
                        } else {
                            complex_events[slot].extend(operator.push(&event, shedder));
                        }
                        let assignments = operator.stats().assignments - assignments_before;
                        let kept = operator.stats().kept - kept_before;
                        let work_fraction = if assignments == 0 {
                            0.05
                        } else {
                            (kept as f64 / assignments as f64).max(0.05)
                        };
                        service += base_service.mul_f64(work_fraction);
                        if shedder.is_active() {
                            service += overhead;
                        }
                        *draining && operator.open_windows() == 0
                    }
                    SimSlot::Retired { .. } => false,
                };
                if finished {
                    finalize_sim_slot(state);
                }
            }

            let completion = start + service;
            server_free[server] = completion;
            // Drain completions up to this arrival before recording the peak,
            // so the peak measures the true backlog (arrived, not yet
            // completed) rather than entries no check has pruned yet; the
            // drain/busy credit is identical wherever an entry is popped.
            while in_flight.peek().is_some_and(|&Reverse((c, _))| c <= arrival) {
                let Reverse((_, done_service)) = in_flight.pop().expect("peeked above");
                busy_total += done_service;
                drained_since_check += 1;
            }
            in_flight.push(Reverse((completion, service)));
            peak_queue_depth = peak_queue_depth.max(in_flight.len());

            let latency = completion.saturating_since(arrival);
            trace.events += 1;
            latency_sum += latency.as_secs_f64();
            if latency > cfg.latency_bound {
                trace.violations += 1;
            }
            if latency > trace.max_latency {
                trace.max_latency = latency;
            }
            if arrival >= next_sample {
                trace.samples.push((arrival.as_secs_f64(), latency.as_secs_f64()));
                next_sample = arrival + cfg.sample_interval;
            }
        }

        // Churn anchored at or past the end of the stream still applies —
        // exactly as the engine broadcasts late commands before the final
        // flush: late admissions create slots that never saw an event,
        // late retires tear down through the flush below.
        while next_change < ordered.len() {
            let change = ordered[next_change];
            next_change += 1;
            match &change.action {
                ChurnAction::Admit(query) => {
                    let slot = slots.len() as QueryId;
                    let shedder = make_shedder(slot, query);
                    let mut controller = fresh_controller();
                    controller.join_in_progress();
                    slots.push(SimSlot::Live {
                        operator: Operator::for_query(query.clone(), slot, 0, 1),
                        shedder,
                        controller,
                        draining: false,
                    });
                    complex_events.push(Vec::new());
                }
                ChurnAction::Retire(slot) => {
                    if let Some(SimSlot::Live { draining, .. }) = slots.get_mut(*slot as usize) {
                        *draining = true;
                    }
                }
            }
        }

        for (slot, state) in slots.iter_mut().enumerate() {
            let finished = match state {
                SimSlot::Live { operator, shedder, draining, .. } => {
                    complex_events[slot].extend(operator.flush(shedder));
                    *draining
                }
                SimSlot::Retired { .. } => continue,
            };
            if finished {
                finalize_sim_slot(state);
            }
        }
        trace.mean_latency_secs =
            if trace.events == 0 { 0.0 } else { latency_sum / trace.events as f64 };
        let mut merged_stats = OperatorStats::default();
        for state in &slots {
            merged_stats.merge(state.stats());
        }
        trace.drop_ratio = merged_stats.drop_ratio();
        trace.peak_queue_depth = peak_queue_depth;

        MultiSimulationOutcome {
            trace,
            complex_events,
            shedding_activations: slots.iter().map(SimSlot::activations).sum(),
            measured_throughput: slots
                .iter()
                .filter_map(SimSlot::throughput)
                .fold(None, |best: Option<f64>, th| Some(best.map_or(th, |b| b.max(th)))),
        }
    }
}

/// One entry of the simulation's per-query axis (the simulated counterpart
/// of the engine's query slots). Like the engine's slots, the common
/// `Live` variant stays unboxed — the vector is tiny and walked per event.
#[allow(clippy::large_enum_variant)]
enum SimSlot<S> {
    Live { operator: Operator, shedder: S, controller: QueueOverloadController, draining: bool },
    Retired { stats: OperatorStats, activations: u64, throughput: Option<f64> },
}

impl<S> SimSlot<S> {
    fn stats(&self) -> &OperatorStats {
        match self {
            SimSlot::Live { operator, .. } => operator.stats(),
            SimSlot::Retired { stats, .. } => stats,
        }
    }

    fn assignments(&self) -> u64 {
        self.stats().assignments
    }

    fn kept(&self) -> u64 {
        self.stats().kept
    }

    fn activations(&self) -> u64 {
        match self {
            SimSlot::Live { controller, .. } => controller.activations(),
            SimSlot::Retired { activations, .. } => *activations,
        }
    }

    fn throughput(&self) -> Option<f64> {
        match self {
            SimSlot::Live { controller, .. } => controller.throughput(),
            SimSlot::Retired { throughput, .. } => *throughput,
        }
    }
}

/// Freezes a drained slot: operator counters, controller activations and
/// the final throughput estimate survive; operator, shedder and controller
/// are dropped — the simulated teardown.
fn finalize_sim_slot<S>(state: &mut SimSlot<S>) {
    if let SimSlot::Live { operator, controller, .. } = state {
        let stats = operator.stats().clone();
        let activations = controller.activations();
        let throughput = controller.throughput();
        *state = SimSlot::Retired { stats, activations, throughput };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::RandomAdaptive;
    use crate::queries;
    use espice::{ModelBuilder, ModelConfig, RandomShedder};
    use espice_cep::{Operator as CepOperator, SelectionPolicy};
    use espice_datasets::{StockConfig, StockDataset};
    use espice_events::EventStream;

    fn dataset() -> StockDataset {
        StockDataset::generate(&StockConfig {
            num_symbols: 40,
            num_leading: 2,
            followers_per_leading: 10,
            duration_minutes: 60,
            cascade_probability: 0.6,
            ..StockConfig::default()
        })
    }

    fn sim_config(rate_factor: f64) -> LatencySimConfig {
        // A deliberately small throughput so the ~1200-event evaluation stream
        // covers several seconds of simulated time and the queue has time to
        // build up under overload.
        LatencySimConfig {
            throughput: 100.0,
            input_rate: 100.0 * rate_factor,
            ..LatencySimConfig::default()
        }
    }

    /// Trains an eSPICE shedder on the first half of the stream.
    fn trained_espice(ds: &StockDataset, query: &espice_cep::Query) -> espice::EspiceShedder {
        let half = ds.stream.slice(0, ds.stream.len() / 2);
        let mut builder = ModelBuilder::new(ModelConfig::with_positions(200), ds.registry.len());
        let mut op = CepOperator::new(query.clone());
        let matches = op.run(&half, &mut builder);
        for m in &matches {
            builder.observe_complex(m);
        }
        espice::EspiceShedder::new(builder.build())
    }

    #[test]
    fn underload_never_sheds_and_meets_bound() {
        let ds = dataset();
        let query = queries::q3(&ds, 5, 200, SelectionPolicy::First);
        let mut shedder = trained_espice(&ds, &query);
        let sim = LatencySimulation::new(sim_config(0.9));
        let eval = ds.stream.slice(ds.stream.len() / 2, ds.stream.len());
        let outcome = sim.run(&query, &eval, &mut shedder);
        assert_eq!(outcome.shedding_activations, 0);
        assert_eq!(outcome.trace.drop_ratio, 0.0);
        assert!(outcome.trace.bound_held());
        assert!(outcome.trace.mean_latency_secs < 0.1);
    }

    #[test]
    fn overload_with_espice_keeps_latency_near_f_times_bound() {
        let ds = dataset();
        let query = queries::q3(&ds, 5, 200, SelectionPolicy::First);
        let mut shedder = trained_espice(&ds, &query);
        let sim = LatencySimulation::new(sim_config(1.4));
        let eval = ds.stream.slice(ds.stream.len() / 2, ds.stream.len());
        let outcome = sim.run(&query, &eval, &mut shedder);
        assert!(outcome.shedding_activations >= 1, "overload must trigger shedding");
        assert!(outcome.trace.drop_ratio > 0.0);
        // The latency bound is 1 s; the shedder must keep the maximum latency
        // at or below it (allowing the one check-interval of slack the
        // detector needs to react).
        assert!(
            outcome.trace.max_latency.as_secs_f64() <= 1.05,
            "latency bound violated: {}",
            outcome.trace.max_latency
        );
        // Latency stabilises in the vicinity of f·LB = 0.8 s rather than
        // collapsing to zero (the queue stays near the activation threshold).
        assert!(outcome.trace.peak_sampled_latency() > 0.4);
    }

    #[test]
    fn overload_without_shedding_violates_the_bound() {
        let ds = dataset();
        let query = queries::q3(&ds, 5, 200, SelectionPolicy::First);
        // A shedder that never drops: random shedder that is never activated
        // because we strip the detector's plans by deactivating on every apply.
        #[derive(Debug)]
        struct NeverShed(RandomAdaptive);
        impl espice_cep::WindowEventDecider for NeverShed {
            fn decide(
                &mut self,
                meta: &espice_cep::WindowMeta,
                position: usize,
                event: &espice_events::Event,
            ) -> espice_cep::Decision {
                self.0.decide(meta, position, event)
            }
        }
        impl AdaptiveShedder for NeverShed {
            fn apply_plan(&mut self, _plan: espice::ShedPlan) {}
            fn deactivate(&mut self) {}
            fn is_active(&self) -> bool {
                false
            }
        }
        let mut shedder = NeverShed(RandomAdaptive::new(RandomShedder::new(1), 200.0));
        let sim = LatencySimulation::new(sim_config(1.4));
        let eval = ds.stream.slice(ds.stream.len() / 2, ds.stream.len());
        let outcome = sim.run(&query, &eval, &mut shedder);
        assert!(
            !outcome.trace.bound_held(),
            "a 40 % overload without shedding must violate the 1 s latency bound"
        );
    }

    #[test]
    fn two_shards_absorb_overload_without_shedding() {
        // 40 % overload saturates one server but only ~70 % of two: the
        // sharded engine holds the latency bound without dropping anything.
        let ds = dataset();
        let query = queries::q3(&ds, 5, 200, SelectionPolicy::First);
        let mut shedder = trained_espice(&ds, &query);
        let sim = LatencySimulation::new(LatencySimConfig { shards: 2, ..sim_config(1.4) });
        let eval = ds.stream.slice(ds.stream.len() / 2, ds.stream.len());
        let outcome = sim.run(&query, &eval, &mut shedder);
        assert_eq!(outcome.trace.drop_ratio, 0.0);
        assert!(outcome.trace.bound_held());
        assert!(outcome.trace.mean_latency_secs < 0.1);
    }

    #[test]
    fn sharded_overload_sheds_against_aggregate_capacity() {
        // Input at 1.4x the *aggregate* capacity of two shards: the detector
        // must plan against 2*th — shedding activates, the bound holds, and
        // the drop ratio reflects the true surplus (~29 %), not the ~64 %
        // a single-server plan would impose.
        let ds = dataset();
        let query = queries::q3(&ds, 5, 200, SelectionPolicy::First);
        let mut shedder = trained_espice(&ds, &query);
        let sim = LatencySimulation::new(LatencySimConfig { shards: 2, ..sim_config(2.8) });
        let eval = ds.stream.slice(ds.stream.len() / 2, ds.stream.len());
        let outcome = sim.run(&query, &eval, &mut shedder);
        assert!(outcome.shedding_activations >= 1, "aggregate overload must trigger shedding");
        assert!(outcome.trace.drop_ratio > 0.0);
        assert!(
            outcome.trace.drop_ratio < 0.5,
            "drop ratio {} suggests the plan ignored the second shard's capacity",
            outcome.trace.drop_ratio
        );
        assert!(
            outcome.trace.max_latency.as_secs_f64() <= 1.05,
            "latency bound violated: {}",
            outcome.trace.max_latency
        );
    }

    /// The multi-query oracle at underload: every query's simulated output
    /// equals its own standalone operator run, nothing sheds, and the
    /// shared queue holds the bound even though each event now carries two
    /// queries' worth of work.
    #[test]
    fn multi_query_underload_matches_standalone_operators() {
        let ds = dataset();
        let q_short = queries::q3(&ds, 5, 200, SelectionPolicy::First);
        let q_long = queries::q3(&ds, 8, 300, SelectionPolicy::First);
        let set = QuerySet::new(vec![q_short.clone(), q_long.clone()]);
        let mut shedders = vec![trained_espice(&ds, &q_short), trained_espice(&ds, &q_long)];
        // Two queries double the per-event work: halve the rate so the
        // shared server still runs below its aggregate capacity.
        let sim = LatencySimulation::new(sim_config(0.45));
        let eval = ds.stream.slice(ds.stream.len() / 2, ds.stream.len());
        let outcome = sim.run_set(&set, &eval, &mut shedders);
        assert_eq!(outcome.shedding_activations, 0);
        assert_eq!(outcome.trace.drop_ratio, 0.0);
        assert!(outcome.trace.bound_held());
        for (id, query) in set.iter() {
            let expected = CepOperator::new(query.clone()).run(&eval, &mut espice_cep::KeepAll);
            assert_eq!(outcome.complex_events[id as usize], expected, "query {id} diverged");
        }
    }

    /// Overloading the shared queue with two queries: the per-query
    /// controllers (one shared throughput signal) must activate shedding
    /// and keep the shared queue's latency bounded.
    #[test]
    fn multi_query_overload_sheds_and_holds_the_bound() {
        let ds = dataset();
        let q_short = queries::q3(&ds, 5, 200, SelectionPolicy::First);
        let q_long = queries::q3(&ds, 8, 300, SelectionPolicy::First);
        let set = QuerySet::new(vec![q_short.clone(), q_long.clone()]);
        let mut shedders = vec![trained_espice(&ds, &q_short), trained_espice(&ds, &q_long)];
        // ~0.7 of the single-query capacity, but each event costs two
        // queries' worth of work: ~1.4x the shared server's capacity.
        let sim = LatencySimulation::new(sim_config(0.7));
        let eval = ds.stream.slice(ds.stream.len() / 2, ds.stream.len());
        let outcome = sim.run_set(&set, &eval, &mut shedders);
        assert!(outcome.shedding_activations >= 1, "shared overload must trigger shedding");
        assert!(outcome.trace.drop_ratio > 0.0);
        assert!(
            outcome.trace.max_latency.as_secs_f64() <= 1.05,
            "latency bound violated: {}",
            outcome.trace.max_latency
        );
        let measured = outcome.measured_throughput.expect("controllers must calibrate");
        // The shared server's full-work capacity is ~th/2 per event at two
        // queries; the measured estimate must land near it, not near the
        // configured single-query throughput.
        assert!(
            measured < sim.config().throughput,
            "measured aggregate capacity {measured} should sit below the single-query rate"
        );
    }

    /// The simulated lifecycle oracle: the same churn schedule the real
    /// engine replays, here in deterministic simulated time. Underload, so
    /// nothing sheds — per-slot outputs must equal their static oracles.
    #[test]
    fn simulated_churn_matches_standalone_operators_per_slot() {
        let ds = dataset();
        let q_keep = queries::q3(&ds, 5, 200, SelectionPolicy::First);
        let q_retire = queries::q3(&ds, 6, 250, SelectionPolicy::First);
        let q_admit = queries::q3(&ds, 8, 300, SelectionPolicy::First);
        let set = QuerySet::new(vec![q_retire.clone(), q_keep.clone()]);
        let eval = ds.stream.slice(ds.stream.len() / 2, ds.stream.len());
        let (retire_at, admit_at) = (150u64, 400u64);
        let churn = vec![
            crate::streaming::QueryChurn::retire(retire_at, 0),
            crate::streaming::QueryChurn::admit(admit_at, q_admit.clone()),
        ];

        let sim = LatencySimulation::new(sim_config(0.3));
        let shedders = vec![trained_espice(&ds, &q_retire), trained_espice(&ds, &q_keep)];
        let outcome = sim.run_set_live(&set, &eval, shedders, &churn, |slot, query| {
            assert_eq!(slot, 2, "exactly one admission expected");
            trained_espice(&ds, query)
        });

        assert_eq!(outcome.shedding_activations, 0, "underload must not shed");
        assert_eq!(outcome.trace.drop_ratio, 0.0);
        assert_eq!(outcome.complex_events.len(), 3);

        // Survivor: identical to its standalone run.
        let survivor = CepOperator::new(q_keep).run(&eval, &mut espice_cep::KeepAll);
        assert_eq!(outcome.complex_events[1], survivor);

        // Admitted: identical to a fresh operator over the suffix.
        let suffix = eval.slice(admit_at as usize, eval.len());
        let admitted = CepOperator::new(q_admit).run(&suffix, &mut espice_cep::KeepAll);
        assert_eq!(outcome.complex_events[2], admitted);

        // Retired: a drained prefix of its standalone output.
        let full = CepOperator::new(q_retire).run(&eval, &mut espice_cep::KeepAll);
        let retired = &outcome.complex_events[0];
        assert!(retired.len() <= full.len());
        assert_eq!(retired.as_slice(), &full[..retired.len()]);
    }

    /// Churn anchored at or past the stream end still applies, mirroring
    /// the engine's late-command semantics: a late admission yields an
    /// empty extra slot, a late retire tears down through the final flush.
    #[test]
    fn churn_past_the_stream_end_still_applies() {
        let ds = dataset();
        let q_keep = queries::q3(&ds, 5, 200, SelectionPolicy::First);
        let q_admit = queries::q3(&ds, 6, 250, SelectionPolicy::First);
        let set = QuerySet::new(vec![q_keep.clone()]);
        let eval = ds.stream.slice(ds.stream.len() / 2, ds.stream.len());
        let churn = vec![
            crate::streaming::QueryChurn::admit(eval.len() as u64 + 10, q_admit),
            crate::streaming::QueryChurn::retire(eval.len() as u64 + 10, 0),
        ];
        let sim = LatencySimulation::new(sim_config(0.3));
        let outcome = sim.run_set_live(
            &set,
            &eval,
            vec![trained_espice(&ds, &q_keep)],
            &churn,
            |_, query| trained_espice(&ds, query),
        );
        assert_eq!(outcome.complex_events.len(), 2, "late admission still creates its slot");
        assert!(outcome.complex_events[1].is_empty(), "a slot admitted at the end saw no events");
        // The retired slot still flushed its open windows first.
        let expected = CepOperator::new(q_keep).run(&eval, &mut espice_cep::KeepAll);
        assert_eq!(outcome.complex_events[0], expected);
    }

    #[test]
    #[should_panic(expected = "rates must be positive")]
    fn invalid_config_rejected() {
        LatencySimConfig { throughput: 0.0, ..LatencySimConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        LatencySimConfig { shards: 0, ..LatencySimConfig::default() }.validate();
    }
}

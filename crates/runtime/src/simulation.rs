//! Discrete-event queueing simulation of the CEP operator under overload
//! (reproduces Figure 7: event latency over time with a 1 s latency bound).
//!
//! The operator is modelled as a single FIFO server (the paper throttles its
//! prototype to a single thread as the resource limitation): events arrive at
//! the configured input rate, wait in the input queue and are processed one by
//! one. Processing an event costs `1 / th` of simulated time when nothing is
//! shed; when the load shedder drops the event from a fraction of its windows,
//! the cost shrinks proportionally — dropping an event from every window it
//! belongs to makes it (almost) free, which is how shedding relieves the
//! queue.
//!
//! Overload detection is **closed-loop**: the simulation drives the same
//! [`QueueOverloadController`] the real streaming engine uses, feeding it
//! the simulated clock, the simulated queue depth and the drain/busy
//! counters of the simulated servers every `check_interval`. The
//! configured `throughput` and `input_rate` only define the simulated
//! *world* (service cost and arrival process); the controller never sees
//! them — it measures both from the queue, exactly as it would against
//! real hardware. That makes this module the deterministic test oracle for
//! the closed control loop.

use crate::adaptive::AdaptiveShedder;
use crate::metrics::LatencyTrace;
use espice::{ControlAction, QueueOverloadController};
use espice_cep::{ComplexEvent, Operator, Query};
use espice_events::{RateReplay, SimDuration, Timestamp, VecStream};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Parameters of the queueing simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySimConfig {
    /// Operator throughput `th` in events per second.
    pub throughput: f64,
    /// Input rate in events per second (e.g. `1.2 · th` for the paper's R1).
    pub input_rate: f64,
    /// Latency bound `LB`.
    pub latency_bound: SimDuration,
    /// Queue-fill factor `f` at which shedding starts.
    pub f: f64,
    /// How often the overload detector checks the queue.
    pub check_interval: SimDuration,
    /// How often a latency sample is recorded for the trace.
    pub sample_interval: SimDuration,
    /// Fixed per-event overhead of consulting the load shedder, as a fraction
    /// of the per-event processing cost (the paper measures ≤ 5 %).
    pub shedding_overhead: f64,
    /// Number of parallel engine shards serving the input queue (1 = the
    /// paper's single-threaded operator). Each shard is a server with
    /// `throughput` events/s of capacity; events are dispatched to the shard
    /// that frees up first, so `shards` multiplies the service capacity the
    /// overload detector works against.
    pub shards: usize,
}

impl Default for LatencySimConfig {
    fn default() -> Self {
        LatencySimConfig {
            throughput: 1000.0,
            input_rate: 1200.0,
            latency_bound: SimDuration::from_secs(1),
            f: 0.8,
            check_interval: SimDuration::from_millis(100),
            sample_interval: SimDuration::from_millis(500),
            shedding_overhead: 0.01,
            shards: 1,
        }
    }
}

impl LatencySimConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if rates are non-positive, `f` is out of range, or intervals are
    /// zero.
    pub fn validate(&self) {
        assert!(self.throughput > 0.0 && self.input_rate > 0.0, "rates must be positive");
        assert!((0.0..=1.0).contains(&self.f), "f must be in [0, 1]");
        assert!(!self.check_interval.is_zero(), "check interval must be positive");
        assert!(!self.sample_interval.is_zero(), "sample interval must be positive");
        assert!(
            (0.0..1.0).contains(&self.shedding_overhead),
            "shedding overhead must be a fraction in [0, 1)"
        );
        assert!(self.shards >= 1, "need at least one shard");
    }
}

/// Result of a simulation run: the latency trace plus the complex events the
/// operator produced while shedding.
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// The latency trace (Figure 7 series).
    pub trace: LatencyTrace,
    /// Complex events detected during the simulated run.
    pub complex_events: Vec<ComplexEvent>,
    /// How often the overload detector switched shedding on.
    pub shedding_activations: u64,
    /// The controller's final *measured* throughput estimate (events/s),
    /// if it calibrated. Compare against the configured service capacity
    /// to judge the measurement path.
    pub measured_throughput: Option<f64>,
}

/// The queueing simulation.
#[derive(Debug, Clone)]
pub struct LatencySimulation {
    config: LatencySimConfig,
}

impl LatencySimulation {
    /// Creates a simulation with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: LatencySimConfig) -> Self {
        config.validate();
        LatencySimulation { config }
    }

    /// The simulation parameters.
    pub fn config(&self) -> &LatencySimConfig {
        &self.config
    }

    /// Replays `stream` into an operator running `query` at the configured
    /// input rate, with `shedder` in the loop, and records per-event
    /// latencies.
    pub fn run<S>(&self, query: &Query, stream: &VecStream, shedder: &mut S) -> SimulationOutcome
    where
        S: AdaptiveShedder,
    {
        let cfg = &self.config;
        let base_service = SimDuration::from_secs_f64(1.0 / cfg.throughput);
        let overhead = base_service.mul_f64(cfg.shedding_overhead);

        let mut operator = Operator::new(query.clone());
        // The closed-loop controller measures the *aggregate* drain
        // capacity by itself: with N servers the summed busy time scales
        // the estimate, so both the tolerable queue length (qmax) and the
        // rate surplus to shed follow the real service capacity — no
        // precomputed throughput or input rate is handed over.
        let mut controller = QueueOverloadController::with_servers(
            espice::OverloadConfig {
                latency_bound: cfg.latency_bound,
                f: cfg.f,
                check_interval: cfg.check_interval,
            },
            cfg.shards.max(1),
        );

        let mut complex_events = Vec::new();
        // Completion times of events still "in the system" (with their
        // service durations, so completed work can be credited to the
        // controller's busy-time measurement); used to derive the queue
        // length seen by the overload controller. A min-heap because with
        // several servers completions are not monotone in arrival order.
        let mut in_flight: BinaryHeap<Reverse<(Timestamp, SimDuration)>> = BinaryHeap::new();
        // One FIFO server per engine shard; an event is dispatched to the
        // server that frees up first. `shards == 1` is the paper's
        // single-threaded operator.
        let mut server_free: Vec<Timestamp> = vec![Timestamp::ZERO; cfg.shards.max(1)];
        let mut next_check = cfg.check_interval;
        let mut next_sample = Timestamp::ZERO;
        // Cumulative busy time of all servers (sum of completed service
        // durations) and events drained since the last check.
        let mut busy_total = SimDuration::ZERO;
        let mut drained_since_check = 0u64;
        let mut peak_queue_depth = 0usize;

        let mut trace = LatencyTrace {
            bound: cfg.latency_bound,
            sample_interval: cfg.sample_interval,
            ..LatencyTrace::default()
        };
        let mut latency_sum = 0.0f64;

        for (arrival, event) in RateReplay::new(stream, cfg.input_rate) {
            // The event starts on the earliest-free server once it has
            // arrived.
            let mut server = 0;
            for idx in 1..server_free.len() {
                if server_free[idx] < server_free[server] {
                    server = idx;
                }
            }
            let start = arrival.max(server_free[server]);

            // Fire overload checks that are due before this event arrives.
            // Checks are anchored to arrival time so the queue length they
            // observe counts exactly the events that have arrived but not
            // yet completed at the check instant.
            while Timestamp::ZERO + next_check <= arrival {
                let check_time = Timestamp::ZERO + next_check;
                while in_flight.peek().is_some_and(|&Reverse((c, _))| c <= check_time) {
                    let Reverse((_, service)) = in_flight.pop().expect("peeked above");
                    busy_total += service;
                    drained_since_check += 1;
                }
                let window_size = operator.predicted_window_size();
                let action = controller.sample(
                    next_check,
                    busy_total,
                    in_flight.len(),
                    drained_since_check,
                    window_size,
                );
                drained_since_check = 0;
                match action {
                    Some(ControlAction::Shed(plan)) => shedder.apply_plan(plan),
                    Some(ControlAction::Resume) => shedder.deactivate(),
                    None => {}
                }
                next_check += cfg.check_interval;
            }

            // Process the event through the operator (this is where shedding
            // decisions for each window happen).
            let assignments_before = operator.stats().assignments;
            let kept_before = operator.stats().kept;
            complex_events.extend(operator.push(&event, shedder));
            let assignments = operator.stats().assignments - assignments_before;
            let kept = operator.stats().kept - kept_before;

            // Service time: proportional to the window assignments that were
            // actually processed, plus the (small) shedding overhead when the
            // shedder is consulted. Events that fall into no open window only
            // pay the small constant cost of being parsed and discarded — the
            // operator has nothing to match them against.
            let work_fraction =
                if assignments == 0 { 0.05 } else { (kept as f64 / assignments as f64).max(0.05) };
            let mut service = base_service.mul_f64(work_fraction);
            if shedder.is_active() {
                service += overhead;
            }

            let completion = start + service;
            server_free[server] = completion;
            // Drain completions up to this arrival before recording the peak,
            // so the peak measures the true backlog (arrived, not yet
            // completed) rather than entries no check has pruned yet; the
            // drain/busy credit is identical wherever an entry is popped.
            while in_flight.peek().is_some_and(|&Reverse((c, _))| c <= arrival) {
                let Reverse((_, done_service)) = in_flight.pop().expect("peeked above");
                busy_total += done_service;
                drained_since_check += 1;
            }
            in_flight.push(Reverse((completion, service)));
            peak_queue_depth = peak_queue_depth.max(in_flight.len());

            let latency = completion.saturating_since(arrival);
            trace.events += 1;
            latency_sum += latency.as_secs_f64();
            if latency > cfg.latency_bound {
                trace.violations += 1;
            }
            if latency > trace.max_latency {
                trace.max_latency = latency;
            }
            if arrival >= next_sample {
                trace.samples.push((arrival.as_secs_f64(), latency.as_secs_f64()));
                next_sample = arrival + cfg.sample_interval;
            }
        }

        complex_events.extend(operator.flush(shedder));
        trace.mean_latency_secs =
            if trace.events == 0 { 0.0 } else { latency_sum / trace.events as f64 };
        trace.drop_ratio = operator.stats().drop_ratio();
        trace.peak_queue_depth = peak_queue_depth;

        SimulationOutcome {
            trace,
            complex_events,
            shedding_activations: controller.activations(),
            measured_throughput: controller.throughput(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::RandomAdaptive;
    use crate::queries;
    use espice::{ModelBuilder, ModelConfig, RandomShedder};
    use espice_cep::{Operator as CepOperator, SelectionPolicy};
    use espice_datasets::{StockConfig, StockDataset};
    use espice_events::EventStream;

    fn dataset() -> StockDataset {
        StockDataset::generate(&StockConfig {
            num_symbols: 40,
            num_leading: 2,
            followers_per_leading: 10,
            duration_minutes: 60,
            cascade_probability: 0.6,
            ..StockConfig::default()
        })
    }

    fn sim_config(rate_factor: f64) -> LatencySimConfig {
        // A deliberately small throughput so the ~1200-event evaluation stream
        // covers several seconds of simulated time and the queue has time to
        // build up under overload.
        LatencySimConfig {
            throughput: 100.0,
            input_rate: 100.0 * rate_factor,
            ..LatencySimConfig::default()
        }
    }

    /// Trains an eSPICE shedder on the first half of the stream.
    fn trained_espice(ds: &StockDataset, query: &espice_cep::Query) -> espice::EspiceShedder {
        let half = ds.stream.slice(0, ds.stream.len() / 2);
        let mut builder = ModelBuilder::new(ModelConfig::with_positions(200), ds.registry.len());
        let mut op = CepOperator::new(query.clone());
        let matches = op.run(&half, &mut builder);
        for m in &matches {
            builder.observe_complex(m);
        }
        espice::EspiceShedder::new(builder.build())
    }

    #[test]
    fn underload_never_sheds_and_meets_bound() {
        let ds = dataset();
        let query = queries::q3(&ds, 5, 200, SelectionPolicy::First);
        let mut shedder = trained_espice(&ds, &query);
        let sim = LatencySimulation::new(sim_config(0.9));
        let eval = ds.stream.slice(ds.stream.len() / 2, ds.stream.len());
        let outcome = sim.run(&query, &eval, &mut shedder);
        assert_eq!(outcome.shedding_activations, 0);
        assert_eq!(outcome.trace.drop_ratio, 0.0);
        assert!(outcome.trace.bound_held());
        assert!(outcome.trace.mean_latency_secs < 0.1);
    }

    #[test]
    fn overload_with_espice_keeps_latency_near_f_times_bound() {
        let ds = dataset();
        let query = queries::q3(&ds, 5, 200, SelectionPolicy::First);
        let mut shedder = trained_espice(&ds, &query);
        let sim = LatencySimulation::new(sim_config(1.4));
        let eval = ds.stream.slice(ds.stream.len() / 2, ds.stream.len());
        let outcome = sim.run(&query, &eval, &mut shedder);
        assert!(outcome.shedding_activations >= 1, "overload must trigger shedding");
        assert!(outcome.trace.drop_ratio > 0.0);
        // The latency bound is 1 s; the shedder must keep the maximum latency
        // at or below it (allowing the one check-interval of slack the
        // detector needs to react).
        assert!(
            outcome.trace.max_latency.as_secs_f64() <= 1.05,
            "latency bound violated: {}",
            outcome.trace.max_latency
        );
        // Latency stabilises in the vicinity of f·LB = 0.8 s rather than
        // collapsing to zero (the queue stays near the activation threshold).
        assert!(outcome.trace.peak_sampled_latency() > 0.4);
    }

    #[test]
    fn overload_without_shedding_violates_the_bound() {
        let ds = dataset();
        let query = queries::q3(&ds, 5, 200, SelectionPolicy::First);
        // A shedder that never drops: random shedder that is never activated
        // because we strip the detector's plans by deactivating on every apply.
        #[derive(Debug)]
        struct NeverShed(RandomAdaptive);
        impl espice_cep::WindowEventDecider for NeverShed {
            fn decide(
                &mut self,
                meta: &espice_cep::WindowMeta,
                position: usize,
                event: &espice_events::Event,
            ) -> espice_cep::Decision {
                self.0.decide(meta, position, event)
            }
        }
        impl AdaptiveShedder for NeverShed {
            fn apply_plan(&mut self, _plan: espice::ShedPlan) {}
            fn deactivate(&mut self) {}
            fn is_active(&self) -> bool {
                false
            }
        }
        let mut shedder = NeverShed(RandomAdaptive::new(RandomShedder::new(1), 200.0));
        let sim = LatencySimulation::new(sim_config(1.4));
        let eval = ds.stream.slice(ds.stream.len() / 2, ds.stream.len());
        let outcome = sim.run(&query, &eval, &mut shedder);
        assert!(
            !outcome.trace.bound_held(),
            "a 40 % overload without shedding must violate the 1 s latency bound"
        );
    }

    #[test]
    fn two_shards_absorb_overload_without_shedding() {
        // 40 % overload saturates one server but only ~70 % of two: the
        // sharded engine holds the latency bound without dropping anything.
        let ds = dataset();
        let query = queries::q3(&ds, 5, 200, SelectionPolicy::First);
        let mut shedder = trained_espice(&ds, &query);
        let sim = LatencySimulation::new(LatencySimConfig { shards: 2, ..sim_config(1.4) });
        let eval = ds.stream.slice(ds.stream.len() / 2, ds.stream.len());
        let outcome = sim.run(&query, &eval, &mut shedder);
        assert_eq!(outcome.trace.drop_ratio, 0.0);
        assert!(outcome.trace.bound_held());
        assert!(outcome.trace.mean_latency_secs < 0.1);
    }

    #[test]
    fn sharded_overload_sheds_against_aggregate_capacity() {
        // Input at 1.4x the *aggregate* capacity of two shards: the detector
        // must plan against 2*th — shedding activates, the bound holds, and
        // the drop ratio reflects the true surplus (~29 %), not the ~64 %
        // a single-server plan would impose.
        let ds = dataset();
        let query = queries::q3(&ds, 5, 200, SelectionPolicy::First);
        let mut shedder = trained_espice(&ds, &query);
        let sim = LatencySimulation::new(LatencySimConfig { shards: 2, ..sim_config(2.8) });
        let eval = ds.stream.slice(ds.stream.len() / 2, ds.stream.len());
        let outcome = sim.run(&query, &eval, &mut shedder);
        assert!(outcome.shedding_activations >= 1, "aggregate overload must trigger shedding");
        assert!(outcome.trace.drop_ratio > 0.0);
        assert!(
            outcome.trace.drop_ratio < 0.5,
            "drop ratio {} suggests the plan ignored the second shard's capacity",
            outcome.trace.drop_ratio
        );
        assert!(
            outcome.trace.max_latency.as_secs_f64() <= 1.05,
            "latency bound violated: {}",
            outcome.trace.max_latency
        );
    }

    #[test]
    #[should_panic(expected = "rates must be positive")]
    fn invalid_config_rejected() {
        LatencySimConfig { throughput: 0.0, ..LatencySimConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        LatencySimConfig { shards: 0, ..LatencySimConfig::default() }.validate();
    }
}

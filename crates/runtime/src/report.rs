//! Plain-text reporting helpers for the figure binaries.
//!
//! Every figure harness prints the series it reproduces as an aligned text
//! table (one row per x-axis value, one column per series), plus an optional
//! CSV form that can be piped into a plotting tool.

use std::fmt::Write as _;

/// A two-dimensional result table: one labelled row per x-axis value and one
/// labelled column per series.
///
/// # Example
///
/// ```
/// use espice_runtime::report::Table;
///
/// let mut table = Table::new("pattern size", vec!["R1: eSPICE".into(), "R1: BL".into()]);
/// table.add_row("2", vec![9.0, 45.6]);
/// table.add_row("6", vec![21.2, 55.9]);
/// let text = table.render();
/// assert!(text.contains("pattern size"));
/// assert!(text.contains("45.60"));
/// let csv = table.to_csv();
/// assert!(csv.starts_with("pattern size,R1: eSPICE,R1: BL"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    x_label: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// Creates a table with the given x-axis label and series names.
    pub fn new(x_label: &str, columns: Vec<String>) -> Self {
        Table { x_label: x_label.to_owned(), columns, rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the number of values differs from the number of columns.
    pub fn add_row(&mut self, x: &str, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row has {} values but the table has {} columns",
            values.len(),
            self.columns.len()
        );
        self.rows.push((x.to_owned(), values));
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = Vec::new();
        widths.push(
            self.rows
                .iter()
                .map(|(x, _)| x.len())
                .chain(std::iter::once(self.x_label.len()))
                .max()
                .unwrap_or(0),
        );
        for (i, col) in self.columns.iter().enumerate() {
            let data_width = self
                .rows
                .iter()
                .map(|(_, vals)| format!("{:.2}", vals[i]).len())
                .max()
                .unwrap_or(0);
            widths.push(col.len().max(data_width));
        }

        let mut out = String::new();
        let _ = write!(out, "{:<width$}", self.x_label, width = widths[0]);
        for (i, col) in self.columns.iter().enumerate() {
            let _ = write!(out, "  {:>width$}", col, width = widths[i + 1]);
        }
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * self.columns.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for (x, values) in &self.rows {
            let _ = write!(out, "{:<width$}", x, width = widths[0]);
            for (i, v) in values.iter().enumerate() {
                let _ = write!(out, "  {:>width$.2}", v, width = widths[i + 1]);
            }
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (header + one line per row).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label);
        for col in &self.columns {
            let _ = write!(out, ",{col}");
        }
        out.push('\n');
        for (x, values) in &self.rows {
            out.push_str(x);
            for v in values {
                let _ = write!(out, ",{v:.4}");
            }
            out.push('\n');
        }
        out
    }
}

/// Renders one [`QualityOutcome`](crate::QualityOutcome) row per query of a
/// fused multi-query evaluation: false negatives, false positives, realised
/// drop ratio and windows, with the query names as the x-axis. The shared
/// queue summary (streaming backend) is appended as a footer line, since
/// one queue serves every query.
pub fn per_query_quality_table(
    names: &[&str],
    outcomes: &[crate::QualityOutcome],
) -> (Table, String) {
    assert_eq!(names.len(), outcomes.len(), "need exactly one name per outcome");
    let mut table = Table::new(
        "query",
        vec!["FN %".into(), "FP %".into(), "drop ratio".into(), "windows".into()],
    );
    for (name, outcome) in names.iter().zip(outcomes) {
        table.add_row(
            name,
            vec![
                outcome.false_negative_pct(),
                outcome.false_positive_pct(),
                outcome.drop_ratio,
                outcome.windows as f64,
            ],
        );
    }
    let footer = match outcomes.iter().find_map(|o| o.queue) {
        Some(queue) => format!(
            "shared queues: capacity {}, peak depth {}, {} backpressured pushes\n",
            queue.capacity, queue.peak_depth, queue.backpressure_events
        ),
        None => String::new(),
    };
    (table, footer)
}

/// Renders the comparative quality matrix of a
/// [`quality_study`](crate::Experiment::quality_study): one row per
/// strategy, and per query a recall, false-positive-ratio and realised
/// drop-ratio column (ratios in `[0, 1]`, against that query's ground
/// truth).
///
/// # Panics
///
/// Panics if the study's shape does not match `kinds` × `names`.
pub fn strategy_quality_table(
    kinds: &[crate::ShedderKind],
    names: &[&str],
    study: &[Vec<crate::QualityOutcome>],
) -> Table {
    assert_eq!(kinds.len(), study.len(), "need exactly one outcome row per strategy");
    let mut columns = Vec::new();
    for name in names {
        columns.push(format!("{name}: recall"));
        columns.push(format!("{name}: FP ratio"));
        columns.push(format!("{name}: drop"));
    }
    let mut table = Table::new("strategy", columns);
    for (kind, outcomes) in kinds.iter().zip(study) {
        assert_eq!(outcomes.len(), names.len(), "need exactly one outcome per query");
        let mut values = Vec::with_capacity(names.len() * 3);
        for outcome in outcomes {
            values.push(outcome.metrics.recall());
            values.push(outcome.false_positive_pct() / 100.0);
            values.push(outcome.drop_ratio);
        }
        table.add_row(kind.label(), values);
    }
    table
}

/// Renders one row per query slot of a live (lifecycle-enabled) run:
/// admission and retirement positions from the [`LifecycleReport`], plus
/// the slot's events processed, complex events and realised drop ratio
/// from the engine's per-query statistics. Slots of the initial set show
/// an admission position of 0; still-live slots show a retirement of -1.
///
/// # Panics
///
/// Panics if `names` and `per_query` differ in length.
///
/// [`LifecycleReport`]: espice_cep::LifecycleReport
pub fn lifecycle_table(
    names: &[&str],
    report: &espice_cep::LifecycleReport,
    per_query: &[espice_cep::OperatorStats],
) -> Table {
    assert_eq!(names.len(), per_query.len(), "need exactly one name per query slot");
    let mut table = Table::new(
        "query",
        vec![
            "admitted at".into(),
            "retired at".into(),
            "events".into(),
            "complex".into(),
            "drop ratio".into(),
        ],
    );
    for (slot, (name, stats)) in names.iter().zip(per_query).enumerate() {
        let admitted = report
            .admitted
            .iter()
            .find(|(handle, _)| handle.slot as usize == slot)
            .map_or(0.0, |(_, at)| *at as f64);
        let retired = report
            .retired
            .iter()
            .find(|(handle, _)| handle.slot as usize == slot)
            .map_or(-1.0, |(_, at)| *at as f64);
        table.add_row(
            name,
            vec![
                admitted,
                retired,
                stats.events_processed as f64,
                stats.complex_events as f64,
                stats.drop_ratio(),
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_table_reports_admission_and_retirement_positions() {
        let report = espice_cep::LifecycleReport {
            admitted: vec![(espice_cep::QueryHandle { slot: 2, generation: 2 }, 700)],
            retired: vec![(espice_cep::QueryHandle { slot: 0, generation: 0 }, 400)],
            rejected: 0,
        };
        let stats = |events: u64| espice_cep::OperatorStats {
            events_processed: events,
            complex_events: 5,
            ..espice_cep::OperatorStats::default()
        };
        let table =
            lifecycle_table(&["q0", "q1", "q2"], &report, &[stats(450), stats(2000), stats(1300)]);
        let text = table.render();
        assert!(text.contains("admitted at"));
        assert!(text.contains("700.00"), "admission position missing:\n{text}");
        assert!(text.contains("400.00"), "retirement position missing:\n{text}");
        assert!(text.contains("-1.00"), "live slots render retirement -1:\n{text}");
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn per_query_table_lists_each_query_and_the_shared_queue() {
        let outcome = |fn_missed: usize| crate::QualityOutcome {
            shedder: crate::ShedderKind::Espice,
            metrics: crate::QualityMetrics {
                ground_truth: 100,
                detected: 100 - fn_missed,
                true_positives: 100 - fn_missed,
                false_positives: 0,
                false_negatives: fn_missed,
            },
            plan: espice::ShedPlan::inactive(),
            drop_ratio: 0.25,
            windows: 40,
            queue: Some(crate::QueueSummary {
                capacity: 64,
                peak_depth: 12,
                backpressure_events: 3,
            }),
        };
        let (table, footer) = per_query_quality_table(&["q3", "q4"], &[outcome(5), outcome(9)]);
        let text = table.render();
        assert!(text.contains("q3") && text.contains("q4"));
        assert!(text.contains("5.00") && text.contains("9.00"));
        assert!(footer.contains("capacity 64"));
        assert!(footer.contains("peak depth 12"));
    }

    #[test]
    fn strategy_matrix_lists_each_strategy_against_each_query() {
        let outcome = |kind, fp: usize| crate::QualityOutcome {
            shedder: kind,
            metrics: crate::QualityMetrics {
                ground_truth: 100,
                detected: 90 + fp,
                true_positives: 90,
                false_positives: fp,
                false_negatives: 10,
            },
            plan: espice::ShedPlan::inactive(),
            drop_ratio: 0.2,
            windows: 40,
            queue: None,
        };
        let kinds = [crate::ShedderKind::Espice, crate::ShedderKind::Gspice];
        let study = vec![
            vec![outcome(kinds[0], 0), outcome(kinds[0], 4)],
            vec![outcome(kinds[1], 2), outcome(kinds[1], 6)],
        ];
        let table = strategy_quality_table(&kinds, &["soccer", "stock"], &study);
        let text = table.render();
        assert!(text.contains("eSPICE") && text.contains("gSPICE"));
        assert!(text.contains("soccer: recall") && text.contains("stock: FP ratio"));
        assert_eq!(table.len(), 2);
        // recall 0.9 for every cell, FP ratio 0.06 for gSPICE on stock.
        assert!(text.contains("0.90"));
        assert!(text.contains("0.06"));
    }

    #[test]
    fn render_aligns_columns_and_formats_values() {
        let mut t = Table::new("ws", vec!["a".into(), "long column".into()]);
        t.add_row("300", vec![1.0, 2.345]);
        t.add_row("2000", vec![10.5, 0.0]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long column"));
        assert!(lines[2].contains("1.00"));
        assert!(lines[3].contains("10.50"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_output_is_machine_readable() {
        let mut t = Table::new("x", vec!["y".into()]);
        t.add_row("1", vec![0.5]);
        assert_eq!(t.to_csv(), "x,y\n1,0.5000\n");
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn mismatched_row_length_panics() {
        let mut t = Table::new("x", vec!["y".into()]);
        t.add_row("1", vec![0.5, 0.7]);
    }
}

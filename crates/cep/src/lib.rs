//! A window-based complex event processing (CEP) engine.
//!
//! This crate is the substrate the eSPICE load shedder runs on. It follows the
//! system model of the paper (Section 2): a single CEP operator receives a
//! totally ordered stream of primitive events, partitions it into (possibly
//! overlapping) windows, and runs a pattern matcher over every window to
//! detect *complex events*.
//!
//! The engine supports the query classes the evaluation uses:
//!
//! * **sequence** of specific event types (Q3),
//! * **sequence with repetition** (Q4),
//! * **sequence with `any(n, …)`** (Q1, Q2),
//! * optional attribute predicates on every step,
//! * *skip-till-next-match* / *skip-till-any-match* semantics,
//! * **first** / **last** selection policies and **consumed** / **zero**
//!   consumption policies,
//! * count-based, time-based and predicate-opened sliding windows.
//!
//! Load shedding integrates through the [`WindowEventDecider`] hook: for every
//! event of every window the operator asks the decider whether to keep the
//! event *in that window* before it is buffered, exactly where eSPICE's load
//! shedder sits in Figure 1 of the paper. On the hot path the operator calls
//! the batched [`WindowEventDecider::decide_batch`] form — one call per event
//! covering all windows it belongs to — so shedders can amortise their
//! lookups; the default implementation delegates to `decide` per pair.
//!
//! Overlapping windows share their storage: the operator appends each event
//! **once** to a shared ring and every open window only records its start
//! slot plus a per-window drop set, so per-event storage work is O(1) in the
//! overlap factor (see the [`Operator`] docs for the layout and its pruning
//! invariant). At close time the matcher runs over references into the
//! shared slice ([`Matcher::matches_refs`] with [`EntryRef`]).
//!
//! Beyond the paper's single-threaded prototype, the crate provides a
//! [`ShardedEngine`] that hash-partitions the window population by global
//! window id across N independent [`Operator`] shards (each [`Shard`] with
//! its own decider instance) and merges outputs and statistics back into
//! single-operator form — byte-identical output for stateless-per-window
//! deciders on count-based windows (see [`ShardedEngine`] for the
//! time-window caveat). The engine is *stream-driven*: events are pulled
//! incrementally from an [`EventSource`](espice_events::EventSource),
//! batched once into sequence-stamped shared chunks ([`arena`]), and
//! handed to bounded per-shard SPSC queues ([`queue`]) as `Arc` references
//! — one hand-off per chunk per shard instead of one clone per event per
//! shard. The queues' fixed capacity backpressures the producer and their
//! measured event-denominated depth feeds closed-loop overload detection
//! through [`WindowEventDecider::queue_sample`]; `ShardedEngine::run`
//! keeps the slice-compatible entry point on top of the same pipeline.
//!
//! # Example
//!
//! ```
//! use espice_events::{Event, Timestamp, TypeRegistry, VecStream};
//! use espice_cep::{Operator, Query, Pattern, PatternStep, WindowSpec, KeepAll};
//!
//! let mut registry = TypeRegistry::new();
//! let a = registry.intern("A");
//! let b = registry.intern("B");
//!
//! // seq(A; B) over a count window of 4 events sliding by 2.
//! let query = Query::builder()
//!     .pattern(Pattern::new(vec![PatternStep::single(a), PatternStep::single(b)]))
//!     .window(WindowSpec::count_sliding(4, 2))
//!     .build();
//!
//! let events: Vec<Event> = (0..8)
//!     .map(|i| Event::new(if i % 2 == 0 { a } else { b }, Timestamp::from_secs(i), i))
//!     .collect();
//!
//! let mut operator = Operator::new(query);
//! let matches = operator.run(&VecStream::from_ordered(events), &mut KeepAll);
//! assert!(!matches.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
mod complex;
mod engine;
pub mod faults;
pub mod lifecycle;
mod matcher;
mod operator;
mod partial;
mod pattern;
mod predicate;
#[cfg(test)]
mod proptests;
mod query;
mod queryset;
pub mod queue;
#[doc(hidden)]
pub mod reference;
pub mod resilience;
mod ring;
mod shard;
mod shedding;
mod window;

pub use arena::{ChunkBuilder, EventChunk};
pub use complex::{ComplexEvent, Constituent};
pub use engine::{
    ConfigError, EngineStats, ShardedEngine, DEFAULT_CHUNK_CAPACITY, DEFAULT_QUEUE_CAPACITY,
};
pub use faults::{FaultKind, FaultPlan};
pub use lifecycle::{EngineControl, LifecycleReport, LiveRunOutcome, ShardInput};
pub use matcher::{EntryRef, MatchOutcome, Matcher, WindowEntry};
pub use operator::{Operator, OperatorStats};
pub use pattern::{Pattern, PatternStep};
pub use predicate::{CmpOp, Predicate};
pub use query::{ConsumptionPolicy, Query, QueryBuilder, SelectionPolicy, SkipPolicy};
pub use queryset::QuerySet;
pub use queue::{PushOutcome, QueueConsumer, QueueProducer, QueueStats};
pub use resilience::{
    EngineError, ResilienceOptions, RunReport, ShardFailure, ShardStatus, DEFAULT_MAX_RESTARTS,
    DEFAULT_STALL_DEADLINE,
};
pub use ring::DropSet;
pub use shard::Shard;
pub use shedding::{
    BatchRequest, BoxedDecider, Decision, KeepAll, QueueSample, SharedDecider, WindowEventDecider,
};
pub use window::{
    OpenPolicy, OpenTracker, OwnershipPolicy, QueryHandle, QueryId, SharedSizePredictor,
    SizePredictor, WindowBalancer, WindowExtent, WindowId, WindowMeta, WindowSpec,
};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::{
        BatchRequest, ComplexEvent, ConsumptionPolicy, Decision, KeepAll, Operator, Pattern,
        PatternStep, Predicate, Query, QuerySet, SelectionPolicy, ShardedEngine,
        WindowEventDecider, WindowMeta, WindowSpec,
    };
}

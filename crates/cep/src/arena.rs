//! Shared immutable chunk arena for batch-granular ingestion.
//!
//! The broadcast-SPSC hand-off clones every event into every shard's queue,
//! so ingestion work is O(shards) per event and the producer — not the
//! matcher — becomes the hot path as shards are added. The arena
//! restructures the hand-off to batch granularity: the producer appends
//! events **once** into a sequence-stamped, fixed-capacity [`EventChunk`],
//! seals it, and pushes one `Arc<EventChunk>` reference per shard. The
//! queue's `Release` tail store is the single publication point for the
//! whole batch; shards scan the shared, immutable buffer in place. That
//! makes ingestion O(1) amortised per event regardless of the shard count —
//! the `EventRing` idea (one shared append-only store, many cursors)
//! generalised to the ingestion layer.
//!
//! Chunks are stamped with the stream position of their first event
//! ([`EventChunk::base`]), so every consumer knows exactly which positions a
//! chunk covers without any side channel. In-band lifecycle commands keep
//! their exact-position semantics: the producer seals the partial chunk
//! *before* pushing a command, so the command sits between chunks at the
//! identical stream position on every shard.
//!
//! A [`ChunkBuilder`] seals on three triggers, all driven by the producer:
//! capacity reached, a lifecycle command or end-of-stream boundary, or — for
//! paced sources — a flush deadline, so replay at a configured rate does not
//! trade batching throughput for hand-off latency.

use espice_events::Event;
use std::sync::Arc;

/// An immutable batch of consecutive stream events, stamped with the stream
/// position of its first event. Shared by reference ([`Arc`]) between the
/// producer and every shard; never mutated after sealing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventChunk {
    /// Stream position (0-based) of `events[0]`.
    base: u64,
    /// The batched events, in stream order.
    events: Vec<Event>,
}

impl EventChunk {
    /// Stream position of the first event in the chunk.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Stream position one past the last event in the chunk.
    pub fn end(&self) -> u64 {
        self.base + self.events.len() as u64
    }

    /// Number of events in the chunk.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the chunk holds no events (never true for sealed chunks).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The batched events, in stream order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Index into [`events`](Self::events) of the event at stream
    /// `position`, or `None` when the chunk does not cover that position.
    ///
    /// This is the cursor anchor of chunk-replay recovery and stolen-window
    /// adoption: "shard S begins evaluating window W from position P" needs
    /// only the chunk whose `[base, end)` range covers P plus this offset —
    /// no side channel, because chunks are sequence-stamped.
    pub fn offset_of(&self, position: u64) -> Option<usize> {
        (self.base..self.end()).contains(&position).then(|| (position - self.base) as usize)
    }
}

/// Accumulates events into the next [`EventChunk`]. One builder lives in
/// the producer loop; [`push`](Self::push) hands back a sealed chunk when
/// the capacity fills, and [`seal`](Self::seal) flushes a partial chunk at
/// a command boundary, a paced-flush deadline, or end-of-stream.
///
/// # Example
///
/// ```
/// use espice_cep::arena::ChunkBuilder;
/// use espice_events::{Event, EventType, Timestamp};
///
/// let ev = |seq| Event::new(EventType::from_index(0), Timestamp::ZERO, seq);
/// let mut builder = ChunkBuilder::new(2);
/// assert!(builder.push(ev(0)).is_none(), "not full yet");
/// let full = builder.push(ev(1)).expect("second push fills the chunk");
/// assert_eq!((full.base(), full.len()), (0, 2));
/// builder.push(ev(2));
/// let partial = builder.seal().expect("one pending event");
/// assert_eq!((partial.base(), partial.len()), (2, 1));
/// assert!(builder.seal().is_none(), "nothing pending");
/// ```
#[derive(Debug)]
pub struct ChunkBuilder {
    capacity: usize,
    /// Stream position the *next* sealed chunk starts at.
    base: u64,
    pending: Vec<Event>,
}

impl ChunkBuilder {
    /// A builder sealing chunks of at most `capacity` events, starting at
    /// stream position 0.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "chunk capacity must be at least 1");
        ChunkBuilder { capacity, base: 0, pending: Vec::with_capacity(capacity) }
    }

    /// The configured maximum events per chunk.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events accumulated towards the next chunk.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Stream position of the first pending event (or of the next event if
    /// none is pending).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Appends one event; returns the sealed chunk when this push fills it
    /// to capacity.
    pub fn push(&mut self, event: Event) -> Option<Arc<EventChunk>> {
        self.pending.push(event);
        if self.pending.len() == self.capacity {
            self.seal()
        } else {
            None
        }
    }

    /// Seals the pending events into a chunk (returning `None` if nothing
    /// is pending) and advances the base past them. Called by the producer
    /// at capacity, before any in-band command, on a paced-flush deadline,
    /// and at end-of-stream.
    pub fn seal(&mut self) -> Option<Arc<EventChunk>> {
        if self.pending.is_empty() {
            return None;
        }
        let events = std::mem::replace(&mut self.pending, Vec::with_capacity(self.capacity));
        let chunk = EventChunk { base: self.base, events };
        self.base = chunk.end();
        Some(Arc::new(chunk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espice_events::{EventType, Timestamp};

    fn ev(seq: u64) -> Event {
        Event::new(EventType::from_index((seq % 3) as u32), Timestamp::from_secs(seq), seq)
    }

    #[test]
    fn chunks_are_sequence_stamped_and_contiguous() {
        let mut builder = ChunkBuilder::new(3);
        let mut chunks = Vec::new();
        for seq in 0..7 {
            if let Some(chunk) = builder.push(ev(seq)) {
                chunks.push(chunk);
            }
        }
        chunks.extend(builder.seal());
        assert_eq!(chunks.len(), 3);
        assert_eq!((chunks[0].base(), chunks[0].len()), (0, 3));
        assert_eq!((chunks[1].base(), chunks[1].len()), (3, 3));
        assert_eq!((chunks[2].base(), chunks[2].len()), (6, 1));
        let replayed: Vec<u64> =
            chunks.iter().flat_map(|c| c.events().iter().map(Event::seq)).collect();
        assert_eq!(replayed, (0..7).collect::<Vec<_>>());
        for chunk in &chunks {
            assert_eq!(chunk.end(), chunk.base() + chunk.len() as u64);
            assert!(!chunk.is_empty());
        }
    }

    #[test]
    fn seal_flushes_partials_at_arbitrary_boundaries() {
        let mut builder = ChunkBuilder::new(8);
        builder.push(ev(0));
        builder.push(ev(1));
        // A command boundary: the partial chunk must seal here so the
        // command lands at position 2 on every shard.
        let first = builder.seal().expect("two events pending");
        assert_eq!((first.base(), first.len()), (0, 2));
        assert!(builder.is_empty());
        builder.push(ev(2));
        let second = builder.seal().expect("one event pending");
        assert_eq!((second.base(), second.len()), (2, 1));
    }

    #[test]
    fn sealing_an_empty_builder_yields_nothing() {
        let mut builder = ChunkBuilder::new(4);
        assert!(builder.seal().is_none());
        builder.push(ev(0));
        assert!(builder.seal().is_some());
        assert!(builder.seal().is_none(), "double boundary must not emit an empty chunk");
    }

    #[test]
    fn capacity_one_seals_every_push() {
        let mut builder = ChunkBuilder::new(1);
        for seq in 0..4 {
            let chunk = builder.push(ev(seq)).expect("capacity 1 seals immediately");
            assert_eq!((chunk.base(), chunk.len()), (seq, 1));
            assert_eq!(chunk.events()[0].seq(), seq);
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = ChunkBuilder::new(0);
    }

    #[test]
    fn offset_of_anchors_positions_inside_the_chunk() {
        let mut builder = ChunkBuilder::new(4);
        for seq in 0..4 {
            builder.push(ev(seq));
        }
        builder.push(ev(4));
        builder.push(ev(5));
        let chunk = builder.seal().expect("two events pending");
        assert_eq!(chunk.base(), 4);
        assert_eq!(chunk.offset_of(3), None, "position before the chunk");
        assert_eq!(chunk.offset_of(4), Some(0));
        assert_eq!(chunk.offset_of(5), Some(1));
        assert_eq!(chunk.offset_of(6), None, "position past the chunk");
        let anchored = chunk.offset_of(5).map(|o| chunk.events()[o].seq());
        assert_eq!(anchored, Some(5));
    }
}

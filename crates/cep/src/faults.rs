//! Deterministic fault injection for the sharded engine.
//!
//! A [`FaultPlan`] is a small, explicit list of faults — panic a shard when
//! it is handed the chunk starting at a given stream position, stall a shard
//! for a fixed duration at such a boundary, or kill the producer after a
//! fixed number of source events. Plans are plain data: the same plan against
//! the same workload produces the same failure, which is what lets the chaos
//! suite pin recovery output byte-for-byte against a fault-free oracle.
//!
//! Plans can be written out by hand or derived from a seed with
//! [`FaultPlan::seeded`], which uses a splitmix64 generator so a CI job can
//! sweep `CHAOS_SEED=1 2 3 ...` without any external randomness dependency.
//!
//! At run start the engine arms the plan into an `ArmedFaults` value whose
//! per-fault one-shot flags are checked at each queue hand-off. When no plan
//! is installed the hook is a single `Option` test per chunk hand-off —
//! nothing is armed, nothing is checked per event.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// One injected fault. Stream positions are producer-counted event
/// positions, i.e. the `base()` of a sealed [`EventChunk`](crate::arena::EventChunk):
/// a fault `at_position: p` fires when the hand-off carrying position `p`
/// reaches the shard, **before** any event of that hand-off is processed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic shard `shard`'s drain thread when the chunk (or event, with
    /// per-event hand-off) starting at stream position `at_position` arrives.
    PanicShard {
        /// Index of the shard whose drain thread panics.
        shard: usize,
        /// Producer-counted stream position the panic fires at.
        at_position: u64,
    },
    /// Stall shard `shard`'s drain thread for `millis` milliseconds when the
    /// hand-off starting at `at_position` arrives. The stall sleeps in short
    /// slices and exits early if the engine aborts the run, so a watchdog
    /// test does not leak a sleeping thread for the full duration.
    StallShard {
        /// Index of the shard whose drain thread stalls.
        shard: usize,
        /// Producer-counted stream position the stall fires at.
        at_position: u64,
        /// How long the drain thread sleeps before resuming.
        millis: u64,
    },
    /// Stop the producer after it has ingested exactly `after_events` source
    /// events. A partially filled chunk builder is dropped, so the delivered
    /// stream is the longest sealed-chunk prefix:
    /// `after_events - (after_events % chunk_capacity)` events.
    KillProducer {
        /// Number of source events ingested before the producer stops.
        after_events: u64,
    },
}

impl FaultKind {
    /// The shard this fault targets, if it targets one.
    pub fn shard(&self) -> Option<usize> {
        match self {
            FaultKind::PanicShard { shard, .. } | FaultKind::StallShard { shard, .. } => {
                Some(*shard)
            }
            FaultKind::KillProducer { .. } => None,
        }
    }
}

/// A deterministic list of faults to inject into one engine run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    faults: Vec<FaultKind>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one fault to the plan.
    pub fn with(mut self, fault: FaultKind) -> Self {
        self.faults.push(fault);
        self
    }

    /// The faults in this plan, in arming order.
    pub fn faults(&self) -> &[FaultKind] {
        &self.faults
    }

    /// Derives a plan from a seed for a run with `shards` shards over a
    /// stream of `stream_len` events handed off in chunks of
    /// `chunk_capacity`. The plan holds one or two faults: always a shard
    /// panic at some chunk boundary, and (for half the seeds) a second
    /// independent fault — another panic, a short stall, or a producer kill.
    /// The same arguments and seed always produce the same plan.
    pub fn seeded(seed: u64, shards: usize, stream_len: u64, chunk_capacity: usize) -> Self {
        let shards = shards.max(1) as u64;
        let cap = chunk_capacity.max(1) as u64;
        let boundaries = (stream_len / cap).max(1);
        let mut state = seed;
        let mut next = move || splitmix64(&mut state);
        let boundary = |r: u64| (r % boundaries) * cap;
        let mut plan = Self::new().with(FaultKind::PanicShard {
            shard: (next() % shards) as usize,
            at_position: boundary(next()),
        });
        if next() % 2 == 0 {
            let extra = match next() % 3 {
                0 => FaultKind::PanicShard {
                    shard: (next() % shards) as usize,
                    at_position: boundary(next()),
                },
                1 => FaultKind::StallShard {
                    shard: (next() % shards) as usize,
                    at_position: boundary(next()),
                    millis: 1 + next() % 20,
                },
                _ => FaultKind::KillProducer { after_events: next() % (stream_len + 1) },
            };
            plan = plan.with(extra);
        }
        plan
    }

    /// Whether the plan contains a [`FaultKind::StallShard`] fault.
    pub fn has_stall(&self) -> bool {
        self.faults.iter().any(|f| matches!(f, FaultKind::StallShard { .. }))
    }
}

/// A [`FaultPlan`] armed for one engine run: each fault carries a one-shot
/// flag so it fires at most once even when the triggering hand-off is seen
/// again during a chunk replay. Shared (`Arc`) between the producer loop and
/// every drain thread of the run, replacements included.
#[derive(Debug)]
pub(crate) struct ArmedFaults {
    faults: Vec<FaultKind>,
    fired: Vec<AtomicBool>,
}

impl ArmedFaults {
    /// Arms a plan for one run.
    pub(crate) fn arm(plan: &FaultPlan) -> Arc<Self> {
        Arc::new(Self {
            faults: plan.faults.clone(),
            fired: plan.faults.iter().map(|_| AtomicBool::new(false)).collect(),
        })
    }

    /// Fault hook, called once per queue hand-off with the stream position
    /// the hand-off starts at, before any of its events are processed.
    /// Panics (fault contained by the drain thread's unwind boundary) or
    /// stalls as the plan dictates. A stall sleeps in ~1 ms slices, bailing
    /// out early once `abort` (when provided) is set.
    pub(crate) fn on_handoff(&self, shard: usize, position: u64, abort: Option<&AtomicBool>) {
        for (fault, fired) in self.faults.iter().zip(&self.fired) {
            match *fault {
                FaultKind::PanicShard { shard: s, at_position }
                    if s == shard
                        && at_position == position
                        && !fired.swap(true, Ordering::SeqCst) =>
                {
                    panic!("injected fault: shard {s} panicked at stream position {position}");
                }
                FaultKind::StallShard { shard: s, at_position, millis }
                    if s == shard
                        && at_position == position
                        && !fired.swap(true, Ordering::SeqCst) =>
                {
                    let deadline = Duration::from_millis(millis);
                    let mut slept = Duration::ZERO;
                    while slept < deadline {
                        if abort.is_some_and(|a| a.load(Ordering::Acquire)) {
                            return;
                        }
                        let slice = Duration::from_millis(1).min(deadline - slept);
                        thread::sleep(slice);
                        slept += slice;
                    }
                }
                _ => {}
            }
        }
    }

    /// The smallest `after_events` across the plan's
    /// [`FaultKind::KillProducer`] faults, if any. The producer loop stops
    /// ingesting once it has produced this many events.
    pub(crate) fn producer_kill_after(&self) -> Option<u64> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                FaultKind::KillProducer { after_events } => Some(*after_events),
                _ => None,
            })
            .min()
    }
}

/// splitmix64: tiny, high-quality step generator for seed-derived plans.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        for seed in [0u64, 1, 7, 0xC0FFEE, u64::MAX] {
            let a = FaultPlan::seeded(seed, 4, 1000, 64);
            let b = FaultPlan::seeded(seed, 4, 1000, 64);
            assert_eq!(a, b);
            assert!(!a.faults().is_empty());
        }
    }

    #[test]
    fn seeded_panic_lands_on_a_chunk_boundary_in_range() {
        for seed in 0..64u64 {
            let plan = FaultPlan::seeded(seed, 3, 500, 7);
            for fault in plan.faults() {
                match *fault {
                    FaultKind::PanicShard { shard, at_position }
                    | FaultKind::StallShard { shard, at_position, .. } => {
                        assert!(shard < 3);
                        assert_eq!(at_position % 7, 0);
                        assert!(at_position < 500);
                    }
                    FaultKind::KillProducer { after_events } => assert!(after_events <= 500),
                }
            }
        }
    }

    #[test]
    fn armed_panic_fires_once_at_the_exact_position() {
        let plan = FaultPlan::new().with(FaultKind::PanicShard { shard: 1, at_position: 128 });
        let armed = ArmedFaults::arm(&plan);
        // Wrong shard and wrong position are no-ops.
        armed.on_handoff(0, 128, None);
        armed.on_handoff(1, 64, None);
        let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            armed.on_handoff(1, 128, None);
        }));
        assert!(hit.is_err(), "fault should panic at its position");
        // One-shot: replaying the same hand-off does not re-fire.
        armed.on_handoff(1, 128, None);
    }

    #[test]
    fn armed_stall_respects_abort() {
        let plan = FaultPlan::new().with(FaultKind::StallShard {
            shard: 0,
            at_position: 0,
            millis: 60_000,
        });
        let armed = ArmedFaults::arm(&plan);
        let abort = AtomicBool::new(true);
        let start = std::time::Instant::now();
        armed.on_handoff(0, 0, Some(&abort));
        assert!(start.elapsed() < Duration::from_secs(5), "aborted stall must return early");
    }

    #[test]
    fn producer_kill_returns_minimum() {
        let plan = FaultPlan::new()
            .with(FaultKind::KillProducer { after_events: 90 })
            .with(FaultKind::KillProducer { after_events: 40 });
        assert_eq!(ArmedFaults::arm(&plan).producer_kill_after(), Some(40));
        let none = ArmedFaults::arm(&FaultPlan::new());
        assert_eq!(none.producer_kill_after(), None);
    }
}

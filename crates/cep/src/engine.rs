//! The sharded, stream-driven, multi-query CEP engine.
//!
//! The eSPICE prototype deliberately throttles itself to a single operator
//! thread; this engine is the scale-out counterpart. It hash-partitions the
//! window population by global window id across `N` independent [`Shard`]s,
//! fed through **bounded per-shard SPSC queues**: the producer thread pulls
//! events incrementally from an [`EventSource`] and broadcasts each one to
//! every shard's queue, blocking while a queue is full (backpressure),
//! while each shard's scoped thread drains its own queue. Shards therefore
//! start before the stream is fully buffered, and the *measured* queue
//! depth and drain rate are reported back to the deciders (see
//! [`ShardedEngine::set_check_interval`]) — the hook eSPICE's closed-loop
//! overload detection attaches to. [`ShardedEngine::run`] remains as the
//! slice-compatible wrapper over the same pipeline.
//!
//! # One ingestion pipeline, N queries
//!
//! An engine executes a whole [`QuerySet`]: each shard owns one
//! [`Operator`] **per query** (each with its own [`WindowEventDecider`]
//! instance) and offers every event to all of them in a fused assignment
//! pass. The per-event ingestion costs are paid once per shard, not once
//! per query — one queue push/pop and one event clone per shard, one
//! window-open evaluation per *distinct* open policy — which is what makes
//! the fused engine faster than N independent engines on the same stream.
//! Deciders and outputs are per query: `deciders[shard * queries + query]`
//! (shard-major), and the `*_per_query` run methods return each query's
//! complex events separately, byte-identical to what N independent
//! single-query engines would produce.
//!
//! Because window-open decisions depend only on the stream, every shard
//! derives the same global window ids without coordination, and the merged
//! output is *identical* (ids, constituents and order included) to a single
//! unsharded operator run — regardless of shard count, queue capacity or
//! thread timing — for any decider whose decisions are a function of
//! `(window id, position, event)`; on count-based windows, whose size is
//! exact, `predicted size` joins that list, which covers eSPICE (its
//! boundary-thinning accumulator is keyed per `(query, window id)`), so
//! shedded output is shard-invariant there. The exception is `predicted
//! size` on time-based (variable-size) windows: each query's shards share
//! one [`SharedSizePredictor`] — a per-query engine-wide running mean, so
//! predictions no longer drift with the shard count, but they deliberately
//! differ from the *local EWMA* a standalone [`Operator`] keeps (and their
//! mid-run values can vary with thread timing). Deciders that scale
//! positions by the predicted size (eSPICE on time windows) therefore match
//! the engine's own runs across shard counts, not a standalone operator's.
//!
//! [`Operator`]: crate::Operator
//! [`WindowEventDecider`]: crate::WindowEventDecider
//! [`EventSource`]: espice_events::EventSource
//! [`SharedSizePredictor`]: crate::SharedSizePredictor

use crate::queue::{spsc, QueueStats};
use crate::window::SharedSizePredictor;
use crate::{ComplexEvent, KeepAll, OperatorStats, Query, QuerySet, Shard, WindowEventDecider};
use espice_events::{EventSource, EventStream, SliceSource};
use std::sync::Arc;
use std::time::Duration;

/// Default capacity of each shard's bounded input queue: large enough to
/// amortise producer/consumer hand-off, small enough that backpressure
/// engages well before memory matters.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// Engine-level statistics: per-shard and per-query operator counters plus
/// their merged totals.
///
/// `merged.events_processed` counts each stream event **once** (every shard
/// scans the whole stream for every query, so naively summing would
/// multiply the count by shards × queries); all other counters are disjoint
/// and sum exactly to what the corresponding single operators would report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Totals across all shards and queries.
    pub merged: OperatorStats,
    /// Per-shard counters (merged over the shard's queries), indexed by
    /// shard. `events_processed` counts each event the shard saw once.
    pub per_shard: Vec<OperatorStats>,
    /// Per-query counters (merged over shards), indexed by query — each
    /// entry is comparable to the `merged` stats of a single-query engine
    /// running that query alone.
    pub per_query: Vec<OperatorStats>,
}

/// A sharded CEP engine executing a [`QuerySet`] across `N` worker shards.
///
/// # Example
///
/// ```
/// use espice_cep::{ShardedEngine, Operator, Query, Pattern, WindowSpec, KeepAll};
/// use espice_events::{Event, EventType, Timestamp, VecStream};
///
/// let a = EventType::from_index(0);
/// let b = EventType::from_index(1);
/// let query = Query::builder()
///     .pattern(Pattern::sequence([a, b]))
///     .window(WindowSpec::count_on_types(vec![a], 4))
///     .build();
/// let events: Vec<Event> = (0..16)
///     .map(|i| Event::new(if i % 4 == 0 { a } else { b }, Timestamp::from_secs(i), i))
///     .collect();
/// let stream = VecStream::from_ordered(events);
///
/// let mut engine = ShardedEngine::new(query.clone(), 4);
/// let sharded = engine.run_keep_all(&stream);
/// let single = Operator::new(query).run(&stream, &mut KeepAll);
/// assert_eq!(sharded, single);
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Vec<Shard>,
    queries: QuerySet,
    events_processed: u64,
    /// Capacity of each shard's bounded input queue on the streaming path.
    queue_capacity: usize,
    /// Cadence at which drain loops report [`QueueSample`]s to their
    /// deciders; `None` (the default) disables sampling entirely so
    /// slice-style runs pay no clock reads.
    ///
    /// [`QueueSample`]: crate::QueueSample
    check_interval: Option<Duration>,
    /// Queue counters of the most recent streaming run, one per shard.
    queue_stats: Vec<QueueStats>,
    /// Window-size prediction shared by every shard, one predictor per
    /// query (no drift with the shard count on time-based windows).
    size_predictors: Vec<Arc<SharedSizePredictor>>,
}

impl ShardedEngine {
    /// Creates an engine running the single `query` on `shard_count`
    /// shards.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero.
    pub fn new(query: Query, shard_count: usize) -> Self {
        Self::for_queries(QuerySet::single(query), shard_count)
    }

    /// Creates an engine running every query of `queries` on `shard_count`
    /// shards, sharing one ingestion pipeline (and, per shard, one event
    /// scan) across the whole set.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero.
    pub fn for_queries(queries: QuerySet, shard_count: usize) -> Self {
        assert!(shard_count >= 1, "the engine needs at least one shard");
        let size_predictors: Vec<Arc<SharedSizePredictor>> = queries
            .queries()
            .iter()
            .map(|query| {
                let initial = query.window().expected_size().unwrap_or(100).max(1);
                Arc::new(SharedSizePredictor::new(initial))
            })
            .collect();
        let shards = (0..shard_count)
            .map(|index| {
                let mut shard = Shard::for_queries(&queries, index, shard_count);
                for (query, predictor) in size_predictors.iter().enumerate() {
                    shard.share_size_predictor_for(query, Arc::clone(predictor));
                }
                shard
            })
            .collect();
        ShardedEngine {
            shards,
            queries,
            events_processed: 0,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            check_interval: None,
            queue_stats: Vec::new(),
            size_predictors,
        }
    }

    /// Sets the capacity of every shard's bounded input queue for
    /// subsequent streaming runs. Smaller capacities backpressure the
    /// producer earlier; the default is [`DEFAULT_QUEUE_CAPACITY`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn set_queue_capacity(&mut self, capacity: usize) {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        self.queue_capacity = capacity;
    }

    /// The configured per-shard queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Enables (or disables, with `None`) periodic queue sampling: every
    /// `interval` of wall time each drain loop hands every query's decider
    /// a measured [`QueueSample`] via [`WindowEventDecider::queue_sample`].
    /// This is the hook closed-loop overload detection attaches to.
    ///
    /// [`QueueSample`]: crate::QueueSample
    pub fn set_check_interval(&mut self, interval: Option<Duration>) {
        assert!(interval != Some(Duration::ZERO), "check interval must be positive");
        self.check_interval = interval;
    }

    /// Queue counters of the most recent streaming run (empty before the
    /// first run), indexed by shard. One queue serves all queries of a
    /// shard, so there is no per-query axis here.
    pub fn queue_stats(&self) -> &[QueueStats] {
        &self.queue_stats
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The number of queries the engine executes.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// The executed query set.
    pub fn queries(&self) -> &QuerySet {
        &self.queries
    }

    /// The first (or only) query the engine executes.
    pub fn query(&self) -> &Query {
        &self.queries.queries()[0]
    }

    /// Seeds every query's engine-wide window-size prediction, e.g. with
    /// the average window size observed during model training.
    pub fn set_window_size_hint(&mut self, hint: usize) {
        for shard in &mut self.shards {
            shard.set_window_size_hint(hint);
        }
    }

    /// The window-size predictor shared by all shards for query `query`
    /// (relevant for time-based, variable-size windows).
    ///
    /// # Panics
    ///
    /// Panics if `query` is out of range.
    pub fn size_predictor_for(&self, query: usize) -> &SharedSizePredictor {
        &self.size_predictors[query]
    }

    /// The window-size predictor of query 0 (single-query compatibility
    /// wrapper over [`size_predictor_for`](Self::size_predictor_for)).
    pub fn shared_size_predictor(&self) -> &SharedSizePredictor {
        self.size_predictor_for(0)
    }

    /// Runs a materialised stream through the engine: the slice-compatible
    /// wrapper over [`run_source`](Self::run_source). Existing callers and
    /// benches keep compiling, but the execution underneath is the
    /// streaming pipeline — a producer fan-out over bounded per-shard
    /// queues — not a shared-slice scan. The hand-off costs one clone +
    /// queue push/pop per event per shard *for the whole query set*; batch
    /// callers that only ever process fully materialised streams and want
    /// the zero-copy scan should call [`run_slice`](Self::run_slice)
    /// instead.
    ///
    /// For a multi-query engine the returned vector is the per-query
    /// outputs concatenated in query order (see
    /// [`run_source_per_query`](Self::run_source_per_query) to keep them
    /// apart); with a single query it is exactly the single-operator
    /// output.
    ///
    /// # Panics
    ///
    /// Panics if `deciders.len()` differs from `shards × queries`.
    pub fn run<S, D>(&mut self, stream: &S, deciders: &mut [D]) -> Vec<ComplexEvent>
    where
        S: EventStream + ?Sized,
        D: WindowEventDecider + Send,
    {
        let mut source = SliceSource::new(stream.events());
        self.run_source(&mut source, deciders)
    }

    /// [`run`](Self::run), returning each query's complex events
    /// separately (indexed by query, each in single-operator emission
    /// order).
    pub fn run_per_query<S, D>(&mut self, stream: &S, deciders: &mut [D]) -> Vec<Vec<ComplexEvent>>
    where
        S: EventStream + ?Sized,
        D: WindowEventDecider + Send,
    {
        let mut source = SliceSource::new(stream.events());
        self.run_source_per_query(&mut source, deciders)
    }

    /// Runs a materialised stream through all shards as a *shared-slice
    /// scan*: no queues, no producer thread — every shard (on its own
    /// scoped thread when there is more than one) iterates the slice
    /// directly, offering each event to every query's operator in the
    /// fused pass. This is the batch path: it avoids the streaming
    /// pipeline's per-event hand-off for workloads that are fully
    /// materialised anyway, and serves as the oracle the streaming path is
    /// property-tested against. Output and statistics are identical to
    /// [`run_source`](Self::run_source) for deciders whose decisions are a
    /// function of `(window id, position, event)` — plus `predicted size`
    /// on count-based windows, where the prediction is exact.
    ///
    /// # Panics
    ///
    /// Panics if `deciders.len()` differs from `shards × queries`.
    pub fn run_slice<S, D>(&mut self, stream: &S, deciders: &mut [D]) -> Vec<ComplexEvent>
    where
        S: EventStream + ?Sized,
        D: WindowEventDecider + Send,
    {
        flatten(self.run_slice_per_query(stream, deciders))
    }

    /// [`run_slice`](Self::run_slice), returning each query's complex
    /// events separately.
    ///
    /// # Panics
    ///
    /// Panics if `deciders.len()` differs from `shards × queries`.
    pub fn run_slice_per_query<S, D>(
        &mut self,
        stream: &S,
        deciders: &mut [D],
    ) -> Vec<Vec<ComplexEvent>>
    where
        S: EventStream + ?Sized,
        D: WindowEventDecider + Send,
    {
        let queries = self.queries.len();
        assert_eq!(
            deciders.len(),
            self.shards.len() * queries,
            "need exactly one decider per shard per query (shard-major)"
        );
        let events = stream.events();
        self.events_processed += events.len() as u64;

        let outputs: Vec<Vec<Vec<ComplexEvent>>> = if self.shards.len() == 1 {
            vec![self.shards[0].run_events_multi(events, deciders)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(deciders.chunks_mut(queries))
                    .map(|(shard, chunk)| {
                        scope.spawn(move || shard.run_events_multi(events, chunk))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("shard thread panicked")).collect()
            })
        };

        merge_outputs(outputs, queries)
    }

    /// Streams events from `source` through all shards, with one decider
    /// per shard per query, and returns the merged complex events (the
    /// per-query outputs concatenated in query order; see
    /// [`run_source_per_query`](Self::run_source_per_query)).
    ///
    /// Every shard owns a bounded SPSC input queue drained by its own
    /// scoped thread; the calling thread acts as the producer, pulling one
    /// event at a time from the source and broadcasting it to every shard's
    /// queue (each shard derives the same global window ids from the full
    /// stream, so no coordination is needed). A full queue blocks the
    /// producer — bounded-queue backpressure instead of unbounded
    /// buffering — and shards start processing before the stream has been
    /// fully produced. Each event is handed over **once per shard**, no
    /// matter how many queries the engine executes: the shard's drain loop
    /// fans the event out to every query's operator in process. The
    /// measured per-queue state can be fed back to the deciders via
    /// [`set_check_interval`](Self::set_check_interval).
    ///
    /// Each shard owns a disjoint subset of every query's windows, so
    /// decider `[shard s, query q]` only ever sees the (event, window)
    /// pairs of query `q`'s windows owned by shard `s`. Deciders whose
    /// decisions depend only on `(window id, position, event, predicted
    /// size)` — [`KeepAll`], the eSPICE shedder with its per-window-keyed
    /// boundary thinning — produce output identical to an unsharded slice
    /// run on count-based windows, for every queue capacity. Deciders with
    /// genuinely cross-window state (e.g. random sampling) may pick
    /// different events; on time-based windows the shards share one size
    /// predictor per query, so `predicted_size` no longer drifts with the
    /// shard count, but its mid-run values can vary with thread timing.
    ///
    /// # Panics
    ///
    /// Panics if `deciders.len()` differs from `shards × queries`.
    pub fn run_source<Src, D>(&mut self, source: &mut Src, deciders: &mut [D]) -> Vec<ComplexEvent>
    where
        Src: EventSource + ?Sized,
        D: WindowEventDecider + Send,
    {
        flatten(self.run_source_per_query(source, deciders))
    }

    /// [`run_source`](Self::run_source), returning each query's complex
    /// events separately (indexed by query, each in single-operator
    /// emission order).
    ///
    /// # Panics
    ///
    /// Panics if `deciders.len()` differs from `shards × queries`.
    pub fn run_source_per_query<Src, D>(
        &mut self,
        source: &mut Src,
        deciders: &mut [D],
    ) -> Vec<Vec<ComplexEvent>>
    where
        Src: EventSource + ?Sized,
        D: WindowEventDecider + Send,
    {
        let queries = self.queries.len();
        assert_eq!(
            deciders.len(),
            self.shards.len() * queries,
            "need exactly one decider per shard per query (shard-major)"
        );
        let capacity = self.queue_capacity;
        let check_interval = self.check_interval;

        let mut produced = 0u64;
        let (outputs, queue_stats) = std::thread::scope(|scope| {
            let mut producers = Vec::with_capacity(self.shards.len());
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(deciders.chunks_mut(queries))
                .map(|(shard, chunk)| {
                    let (producer, consumer) = spsc(capacity);
                    producers.push(producer);
                    scope.spawn(move || shard.run_queue_multi(consumer, chunk, check_interval))
                })
                .collect();

            // Producer fan-out: broadcast each event to every shard queue,
            // blocking (per queue) while it is full. The last shard takes
            // the event by move; the others get clones. This is the whole
            // per-event hand-off — one push per shard serves all queries.
            'produce: while let Some(event) = source.next_event() {
                produced += 1;
                let (last, rest) = producers.split_last_mut().expect("at least one shard");
                for producer in rest {
                    if !producer.push_blocking(event.clone()) {
                        break 'produce; // a drain thread died; join reports it
                    }
                }
                if !last.push_blocking(event) {
                    break 'produce;
                }
            }
            for producer in &mut producers {
                producer.close();
            }

            let outputs: Vec<Vec<Vec<ComplexEvent>>> =
                handles.into_iter().map(|h| h.join().expect("shard thread panicked")).collect();
            let queue_stats: Vec<QueueStats> = producers.iter().map(|p| p.stats()).collect();
            (outputs, queue_stats)
        });
        self.events_processed += produced;
        self.queue_stats = queue_stats;

        merge_outputs(outputs, queries)
    }

    /// [`run`](Self::run) with a keep-everything decider on every shard and
    /// query (ground-truth runs and throughput benchmarks).
    pub fn run_keep_all<S>(&mut self, stream: &S) -> Vec<ComplexEvent>
    where
        S: EventStream + ?Sized,
    {
        let mut deciders = vec![KeepAll; self.shards.len() * self.queries.len()];
        self.run(stream, &mut deciders)
    }

    /// Sum of the shards' peak resident entry counts: an upper bound on the
    /// engine's total peak window-storage footprint in events (per-shard
    /// peaks need not coincide in time).
    pub fn peak_resident_entries(&self) -> usize {
        self.shards.iter().map(Shard::peak_resident_entries).sum()
    }

    /// Engine statistics: per-shard and per-query counters plus merged
    /// totals.
    pub fn stats(&self) -> EngineStats {
        let per_shard: Vec<OperatorStats> = self.shards.iter().map(Shard::stats).collect();
        let mut per_query: Vec<OperatorStats> = Vec::with_capacity(self.queries.len());
        for query in 0..self.queries.len() {
            let mut merged = OperatorStats::default();
            for shard in &self.shards {
                merged.merge(shard.operators()[query].stats());
            }
            // Every shard's operator scans the full stream; count each
            // engine-ingested event once, as a single-query engine would.
            merged.events_processed = self.events_processed;
            per_query.push(merged);
        }
        let mut merged = OperatorStats::default();
        for stats in &per_query {
            merged.merge(stats);
        }
        merged.events_processed = self.events_processed;
        EngineStats { merged, per_shard, per_query }
    }

    /// Resets all shards (open windows, counters) while keeping the query
    /// set and shard geometry.
    pub fn reset(&mut self) {
        for shard in &mut self.shards {
            shard.reset();
        }
        self.events_processed = 0;
        self.queue_stats.clear();
    }
}

/// Merges the per-shard, per-query outputs into per-query single-operator
/// emission order. Within a query, windows close in id order (each window's
/// matches are emitted contiguously when it closes), so a stable sort by
/// window id restores the exact single-operator order. Shared by the slice
/// and streaming paths so the merge invariant cannot diverge between them.
fn merge_outputs(outputs: Vec<Vec<Vec<ComplexEvent>>>, queries: usize) -> Vec<Vec<ComplexEvent>> {
    let mut per_query: Vec<Vec<ComplexEvent>> = (0..queries).map(|_| Vec::new()).collect();
    for mut shard_outputs in outputs {
        for (query, output) in shard_outputs.iter_mut().enumerate() {
            per_query[query].append(output);
        }
    }
    for output in &mut per_query {
        output.sort_by_key(ComplexEvent::window_id);
    }
    per_query
}

/// Concatenates per-query outputs in query order (the single flat vector
/// the compatibility entry points return).
fn flatten(per_query: Vec<Vec<ComplexEvent>>) -> Vec<ComplexEvent> {
    let mut flat = Vec::with_capacity(per_query.iter().map(Vec::len).sum());
    for mut output in per_query {
        flat.append(&mut output);
    }
    flat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Decision, Operator, Pattern, WindowMeta, WindowSpec};
    use espice_events::{Event, EventType, Timestamp, VecStream};

    fn ty(i: u32) -> EventType {
        EventType::from_index(i)
    }

    fn keyed_stream(len: u64) -> VecStream {
        VecStream::from_ordered(
            (0..len).map(|i| Event::new(ty((i % 5) as u32), Timestamp::from_secs(i), i)).collect(),
        )
    }

    fn query(window: usize) -> Query {
        Query::builder()
            .pattern(Pattern::sequence([ty(0), ty(1), ty(2)]))
            .window(WindowSpec::count_on_types(vec![ty(0)], window))
            .build()
    }

    #[test]
    fn engine_output_matches_single_operator_for_all_shard_counts() {
        let stream = keyed_stream(200);
        let single = Operator::new(query(12)).run(&stream, &mut crate::KeepAll);
        assert!(!single.is_empty());
        for shards in [1, 2, 3, 4, 7] {
            let mut engine = ShardedEngine::new(query(12), shards);
            let merged = engine.run_keep_all(&stream);
            assert_eq!(merged, single, "shard count {shards} diverged");
        }
    }

    #[test]
    fn engine_stats_merge_to_single_operator_totals() {
        let stream = keyed_stream(150);
        let mut single = Operator::new(query(10));
        let _ = single.run(&stream, &mut crate::KeepAll);
        let mut engine = ShardedEngine::new(query(10), 4);
        let _ = engine.run_keep_all(&stream);
        let stats = engine.stats();
        assert_eq!(&stats.merged, single.stats());
        assert_eq!(stats.per_shard.len(), 4);
        assert_eq!(stats.per_query.len(), 1);
        assert_eq!(&stats.per_query[0], single.stats());
        let opened: u64 = stats.per_shard.iter().map(|s| s.windows_opened).sum();
        assert_eq!(opened, single.stats().windows_opened);
    }

    /// A deterministic per-(window, position) decider: shard-invariant, so
    /// the sharded run must equal the single-operator run even with drops.
    #[derive(Debug, Clone, Copy)]
    struct DropEveryThird;

    impl WindowEventDecider for DropEveryThird {
        fn decide(&mut self, _meta: &WindowMeta, position: usize, _event: &Event) -> Decision {
            if position % 3 == 2 {
                Decision::Drop
            } else {
                Decision::Keep
            }
        }
    }

    #[test]
    fn engine_matches_single_operator_under_stateless_shedding() {
        let stream = keyed_stream(200);
        let single = Operator::new(query(12)).run(&stream, &mut DropEveryThird);
        let mut engine = ShardedEngine::new(query(12), 4);
        let mut deciders = vec![DropEveryThird; 4];
        let merged = engine.run(&stream, &mut deciders);
        assert_eq!(merged, single);
        assert!(engine.stats().merged.dropped > 0);
    }

    #[test]
    fn reset_makes_runs_repeatable() {
        let stream = keyed_stream(100);
        let mut engine = ShardedEngine::new(query(8), 3);
        let first = engine.run_keep_all(&stream);
        let first_stats = engine.stats();
        engine.reset();
        let second = engine.run_keep_all(&stream);
        assert_eq!(first, second);
        assert_eq!(first_stats, engine.stats());
    }

    #[test]
    fn streaming_source_run_equals_slice_run_even_with_tiny_queues() {
        let stream = keyed_stream(300);
        let single = Operator::new(query(12)).run(&stream, &mut crate::KeepAll);
        for (shards, capacity) in [(1usize, 1usize), (2, 2), (4, 7), (3, 1024)] {
            let mut engine = ShardedEngine::new(query(12), shards);
            engine.set_queue_capacity(capacity);
            let mut source = espice_events::SliceSource::from_stream(&stream);
            let mut deciders = vec![crate::KeepAll; shards];
            let merged = engine.run_source(&mut source, &mut deciders);
            assert_eq!(merged, single, "{shards} shards at capacity {capacity} diverged");
            let stats = engine.queue_stats();
            assert_eq!(stats.len(), shards);
            for queue in stats {
                assert_eq!(queue.capacity, capacity);
                assert_eq!(queue.pushed, stream.len() as u64);
                assert!(queue.peak_depth <= capacity);
            }
        }
    }

    #[test]
    fn streaming_run_reports_engine_stats_like_the_slice_path() {
        let stream = keyed_stream(200);
        let mut single = Operator::new(query(10));
        let _ = single.run(&stream, &mut crate::KeepAll);
        let mut engine = ShardedEngine::new(query(10), 2);
        engine.set_queue_capacity(8);
        let mut source = espice_events::SliceSource::from_stream(&stream);
        let _ = engine.run_source(&mut source, &mut [crate::KeepAll; 2]);
        assert_eq!(&engine.stats().merged, single.stats());
    }

    #[test]
    fn multi_query_engine_equals_independent_engines_per_query() {
        let stream = keyed_stream(260);
        let set = QuerySet::new(vec![query(12), query(7), query(9)]);
        for shards in [1usize, 2, 4] {
            let mut fused = ShardedEngine::for_queries(set.clone(), shards);
            let mut deciders = vec![crate::KeepAll; shards * set.len()];
            let per_query = fused.run_per_query(&stream, &mut deciders);
            assert_eq!(per_query.len(), set.len());
            let stats = fused.stats();
            for (id, q) in set.iter() {
                let mut solo = ShardedEngine::new(q.clone(), shards);
                let expected = solo.run_keep_all(&stream);
                assert_eq!(
                    per_query[id as usize], expected,
                    "query {id} diverged at {shards} shards"
                );
                assert_eq!(
                    stats.per_query[id as usize],
                    solo.stats().merged,
                    "query {id} stats diverged at {shards} shards"
                );
            }
            // The flat compatibility output is the per-query concatenation.
            fused.reset();
            let mut deciders = vec![crate::KeepAll; shards * set.len()];
            let flat = fused.run(&stream, &mut deciders);
            assert_eq!(flat.len(), stats.merged.complex_events as usize);
        }
    }

    #[test]
    fn multi_query_streaming_equals_multi_query_slice() {
        let stream = keyed_stream(300);
        let set = QuerySet::new(vec![query(12), query(5)]);
        for (shards, capacity) in [(1usize, 1usize), (2, 4), (3, 1024)] {
            let mut slice_engine = ShardedEngine::for_queries(set.clone(), shards);
            let mut slice_deciders = vec![crate::KeepAll; shards * set.len()];
            let expected = slice_engine.run_slice_per_query(&stream, &mut slice_deciders);

            let mut engine = ShardedEngine::for_queries(set.clone(), shards);
            engine.set_queue_capacity(capacity);
            let mut source = espice_events::SliceSource::from_stream(&stream);
            let mut deciders = vec![crate::KeepAll; shards * set.len()];
            let streamed = engine.run_source_per_query(&mut source, &mut deciders);
            assert_eq!(streamed, expected, "{shards} shards at capacity {capacity} diverged");
            assert_eq!(engine.stats(), slice_engine.stats());
            // One queue per shard, each carrying every event once —
            // independent engines would have paid the hand-off per query.
            for queue in engine.queue_stats() {
                assert_eq!(queue.pushed, stream.len() as u64);
            }
        }
    }

    #[test]
    #[should_panic(expected = "queue capacity")]
    fn zero_queue_capacity_rejected() {
        let mut engine = ShardedEngine::new(query(8), 1);
        engine.set_queue_capacity(0);
    }

    #[test]
    #[should_panic(expected = "one decider per shard per query")]
    fn mismatched_decider_count_panics() {
        let mut engine = ShardedEngine::new(query(8), 2);
        let mut deciders = vec![crate::KeepAll];
        let _ = engine.run(&keyed_stream(10), &mut deciders);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedEngine::new(query(8), 0);
    }
}

//! The sharded, stream-driven, multi-query CEP engine.
//!
//! The eSPICE prototype deliberately throttles itself to a single operator
//! thread; this engine is the scale-out counterpart. It hash-partitions the
//! window population by global window id across `N` independent [`Shard`]s,
//! fed through **bounded per-shard SPSC queues**: the producer thread pulls
//! events incrementally from an [`EventSource`], appends them once into a
//! sequence-stamped shared [`EventChunk`](crate::arena::EventChunk), and
//! broadcasts each sealed chunk to every shard's queue as an `Arc`
//! reference, blocking while a queue is full (backpressure), while each
//! shard's scoped thread drains its own queue and scans the shared chunks
//! in place (see [`ShardedEngine::set_chunk_capacity`]). Shards therefore
//! start before the stream is fully buffered, and the *measured* queue
//! depth and drain rate are reported back to the deciders (see
//! [`ShardedEngine::set_check_interval`]) — the hook eSPICE's closed-loop
//! overload detection attaches to. [`ShardedEngine::run`] remains as the
//! slice-compatible wrapper over the same pipeline.
//!
//! # One ingestion pipeline, N queries
//!
//! An engine executes a whole [`QuerySet`]: each shard owns one
//! [`Operator`] **per query** (each with its own [`WindowEventDecider`]
//! instance) and offers every event to all of them in a fused assignment
//! pass. The ingestion costs are paid once per shard, not once per query —
//! one chunk hand-off per shard covering a whole batch of events, one
//! window-open evaluation per *distinct* open policy — which is what makes
//! the fused engine faster than N independent engines on the same stream.
//! Deciders and outputs are per query: `deciders[shard * queries + query]`
//! (shard-major), and the `*_per_query` run methods return each query's
//! complex events separately, byte-identical to what N independent
//! single-query engines would produce.
//!
//! # Query lifecycle
//!
//! The per-query axis is **live**: [`ShardedEngine::control`] hands out a
//! cloneable [`EngineControl`] whose `admit` / `retire` requests are
//! drained by the producer at event boundaries and broadcast *in-band*
//! into every shard queue, so they take effect at the same stream position
//! everywhere. An admitted query starts opening windows at the first event
//! after its admission and produces byte-identical output to a fresh
//! static engine started at that position; a retiring query stops opening
//! windows, drains its open windows to completion, and is then torn down
//! (operator, decider, size predictor). Lifecycle runs own their deciders
//! as type-erased [`BoxedDecider`] rows — rows grow on admission, shrink
//! on retirement, and may mix shedder types freely — via
//! [`run_source_live`](ShardedEngine::run_source_live) and
//! [`run_slice_live`](ShardedEngine::run_slice_live); the monomorphic
//! `&mut [D]` paths remain for static sets.
//!
//! Because window-open decisions depend only on the stream, every shard
//! derives the same global window ids without coordination, and the merged
//! output is *identical* (ids, constituents and order included) to a single
//! unsharded operator run — regardless of shard count, queue capacity or
//! thread timing — for any decider whose decisions are a function of
//! `(window id, position, event)`; on count-based windows, whose size is
//! exact, `predicted size` joins that list, which covers eSPICE (its
//! boundary-thinning accumulator is keyed per `(query, window id)`), so
//! shedded output is shard-invariant there. The exception is `predicted
//! size` on time-based (variable-size) windows: each query's shards share
//! one [`SharedSizePredictor`] — a per-query engine-wide running mean, so
//! predictions no longer drift with the shard count, but they deliberately
//! differ from the *local EWMA* a standalone [`Operator`] keeps (and their
//! mid-run values can vary with thread timing). Deciders that scale
//! positions by the predicted size (eSPICE on time windows) therefore match
//! the engine's own runs across shard counts, not a standalone operator's.
//!
//! [`Operator`]: crate::Operator
//! [`WindowEventDecider`]: crate::WindowEventDecider
//! [`EventSource`]: espice_events::EventSource
//! [`SharedSizePredictor`]: crate::SharedSizePredictor

use crate::arena::{ChunkBuilder, EventChunk};
use crate::faults::{ArmedFaults, FaultPlan};
use crate::lifecycle::{
    Anchoring, EngineControl, LifecycleReport, LifecycleRequest, LiveRunOutcome, ShardCommand,
    ShardInput,
};
use crate::queue::{spsc, QueueProducer, QueueStats};
use crate::resilience::{panic_message, EngineError, ShardFailure};
use crate::window::{OwnershipPolicy, SharedSizePredictor};
use crate::{
    BoxedDecider, ComplexEvent, KeepAll, OperatorStats, Query, QueryHandle, QueryId, QuerySet,
    Shard, WindowEventDecider,
};
use espice_events::{Event, EventSource, EventStream, SliceSource};
use std::collections::VecDeque;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What one shard's live run returns: per-slot outputs plus the decider
/// row (admitted deciders included, retired ones dropped).
type LiveShardResult = (Vec<Vec<ComplexEvent>>, Vec<Option<BoxedDecider>>);

/// Default capacity of each shard's bounded input queue, in hand-offs
/// (chunks on the chunked path): large enough to amortise
/// producer/consumer hand-off, small enough that backpressure engages well
/// before memory matters.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// Default number of events batched into one shared [`EventChunk`] on the
/// streaming path: large enough that the per-chunk hand-off (one `Arc`
/// clone and one queue push per shard) amortises to noise per event, small
/// enough that the producer publishes work long before a queue could run
/// dry behind it.
pub const DEFAULT_CHUNK_CAPACITY: usize = 256;

/// How long a partial chunk may age in the producer of a *paced* source
/// before it is flushed to the shards: paced replay trades no hand-off
/// latency for batching. Saturated sources never read the clock.
const PACED_FLUSH_INTERVAL: Duration = Duration::from_millis(1);

/// Engine-level statistics: per-shard and per-query operator counters plus
/// their merged totals.
///
/// `merged.events_processed` counts each ingested stream event **once**
/// (every shard scans the whole stream for every query, so naively summing
/// would multiply the count by shards × queries); each `per_query` entry
/// reports the events *that query* processed — the full run for static
/// queries, the suffix from admission for queries admitted mid-stream, and
/// the prefix until the last window drained for retired ones. All other
/// counters are disjoint and sum exactly to what the corresponding single
/// operators would report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Totals across all shards and queries.
    pub merged: OperatorStats,
    /// Per-shard counters (merged over the shard's queries), indexed by
    /// shard. `events_processed` counts each event the shard saw once.
    pub per_shard: Vec<OperatorStats>,
    /// Per-query counters (merged over shards), indexed by query slot —
    /// each entry is comparable to the `merged` stats of a single-query
    /// engine running that query alone over the same span of the stream.
    /// Retired slots keep their final counters.
    pub per_query: Vec<OperatorStats>,
}

/// A rejected [`ShardedEngine`] configuration value.
///
/// The typed counterpart of the constructor/setter panics: every `try_*`
/// configuration entry point returns this, and the panicking wrappers
/// (`new`, `for_queries`, `set_queue_capacity`, …) format it into the
/// panic message, so existing callers observe the exact same text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `shard_count` was zero.
    ZeroShards,
    /// The per-shard queue capacity was zero.
    ZeroQueueCapacity,
    /// The events-per-chunk capacity was zero.
    ZeroChunkCapacity,
    /// The sampling interval was `Some(Duration::ZERO)`.
    ZeroCheckInterval,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroShards => write!(f, "the engine needs at least one shard"),
            ConfigError::ZeroQueueCapacity => write!(f, "queue capacity must be at least 1"),
            ConfigError::ZeroChunkCapacity => write!(f, "chunk capacity must be at least 1"),
            ConfigError::ZeroCheckInterval => write!(f, "check interval must be positive"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validates the shard-major decider count of a static run.
fn check_decider_count(
    got: usize,
    shards: usize,
    queries: usize,
    live_only: bool,
) -> Result<(), EngineError> {
    let expected = shards * queries;
    if got == expected {
        Ok(())
    } else {
        Err(EngineError::DeciderMismatch { expected, got, live_only })
    }
}

/// A sharded CEP engine executing a [`QuerySet`] across `N` worker shards.
///
/// # Example
///
/// ```
/// use espice_cep::{ShardedEngine, Operator, Query, Pattern, WindowSpec, KeepAll};
/// use espice_events::{Event, EventType, Timestamp, VecStream};
///
/// let a = EventType::from_index(0);
/// let b = EventType::from_index(1);
/// let query = Query::builder()
///     .pattern(Pattern::sequence([a, b]))
///     .window(WindowSpec::count_on_types(vec![a], 4))
///     .build();
/// let events: Vec<Event> = (0..16)
///     .map(|i| Event::new(if i % 4 == 0 { a } else { b }, Timestamp::from_secs(i), i))
///     .collect();
/// let stream = VecStream::from_ordered(events);
///
/// let mut engine = ShardedEngine::new(query.clone(), 4);
/// let sharded = engine.run_keep_all(&stream);
/// let single = Operator::new(query).run(&stream, &mut KeepAll);
/// assert_eq!(sharded, single);
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    pub(crate) shards: Vec<Shard>,
    pub(crate) queries: QuerySet,
    /// The generation-stamped admission handle of every slot (index =
    /// slot). Initial queries carry generations `0..n`.
    handles: Vec<QueryHandle>,
    /// Which slots are currently live (`false` = retired).
    pub(crate) live: Vec<bool>,
    pub(crate) events_processed: u64,
    /// Capacity of each shard's bounded input queue on the streaming path,
    /// in hand-offs (chunks, or events at chunk capacity 1).
    pub(crate) queue_capacity: usize,
    /// Events batched per shared chunk on the streaming path; 1 selects
    /// the degenerate per-event broadcast hand-off.
    pub(crate) chunk_capacity: usize,
    /// Cadence at which drain loops report [`QueueSample`]s to their
    /// deciders; `None` (the default) disables sampling entirely so
    /// slice-style runs pay no clock reads.
    ///
    /// [`QueueSample`]: crate::QueueSample
    pub(crate) check_interval: Option<Duration>,
    /// Queue counters of the most recent streaming run, one per shard.
    pub(crate) queue_stats: Vec<QueueStats>,
    /// Window-size prediction shared by every shard, one predictor per
    /// query (no drift with the shard count on time-based windows).
    pub(crate) size_predictors: Vec<Arc<SharedSizePredictor>>,
    /// The last hint from [`set_window_size_hint`]; admitted queries with
    /// variable-size windows seed their fresh predictor from it, exactly
    /// as a fresh engine configured with the same hint would.
    ///
    /// [`set_window_size_hint`]: ShardedEngine::set_window_size_hint
    window_size_hint: Option<usize>,
    /// How window ownership is assigned across shards — see
    /// [`set_ownership_policy`](ShardedEngine::set_ownership_policy).
    ownership: OwnershipPolicy,
    /// The lifecycle control channel, created lazily by
    /// [`control`](ShardedEngine::control).
    control: Option<EngineControl>,
    control_rx: Option<Receiver<LifecycleRequest>>,
    /// Faults to inject into subsequent streaming runs (deterministic
    /// chaos testing); `None` — the default — arms nothing and costs one
    /// branch per queue hand-off.
    pub(crate) fault_plan: Option<FaultPlan>,
}

impl ShardedEngine {
    /// Creates an engine running the single `query` on `shard_count`
    /// shards.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero.
    pub fn new(query: Query, shard_count: usize) -> Self {
        Self::for_queries(QuerySet::single(query), shard_count)
    }

    /// Creates an engine running every query of `queries` on `shard_count`
    /// shards, sharing one ingestion pipeline (and, per shard, one event
    /// scan) across the whole set.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero.
    pub fn for_queries(queries: QuerySet, shard_count: usize) -> Self {
        Self::try_for_queries(queries, shard_count).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`new`](Self::new) with a typed error instead of a panic.
    pub fn try_new(query: Query, shard_count: usize) -> Result<Self, ConfigError> {
        Self::try_for_queries(QuerySet::single(query), shard_count)
    }

    /// [`for_queries`](Self::for_queries) with a typed error instead of a
    /// panic.
    pub fn try_for_queries(queries: QuerySet, shard_count: usize) -> Result<Self, ConfigError> {
        if shard_count == 0 {
            return Err(ConfigError::ZeroShards);
        }
        let size_predictors = Self::build_predictors(&queries, None);
        let shards = Self::build_shards(
            &queries,
            shard_count,
            &size_predictors,
            OwnershipPolicy::StaticModulo,
        );
        let handles = (0..queries.len())
            .map(|slot| QueryHandle { slot: slot as QueryId, generation: slot as u64 })
            .collect();
        let live = vec![true; queries.len()];
        Ok(ShardedEngine {
            shards,
            handles,
            live,
            queries,
            events_processed: 0,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            chunk_capacity: DEFAULT_CHUNK_CAPACITY,
            check_interval: None,
            queue_stats: Vec::new(),
            size_predictors,
            window_size_hint: None,
            ownership: OwnershipPolicy::StaticModulo,
            control: None,
            control_rx: None,
            fault_plan: None,
        })
    }

    /// One fresh shared size predictor per query, seeded from the query's
    /// exact window size, the engine's hint, or the generic default.
    fn build_predictors(queries: &QuerySet, hint: Option<usize>) -> Vec<Arc<SharedSizePredictor>> {
        queries
            .queries()
            .iter()
            .map(|query| {
                let initial = query.window().expected_size().or(hint).unwrap_or(100).max(1);
                Arc::new(SharedSizePredictor::new(initial))
            })
            .collect()
    }

    /// Builds one fresh shard (all slots live) wired to the engine's shared
    /// per-query predictors — the replacement-shard constructor chunk-replay
    /// recovery uses, identical to what [`build_shards`](Self::build_shards)
    /// produces at engine construction.
    pub(crate) fn fresh_shard(&self, index: usize, count: usize) -> Shard {
        let mut shard = Shard::for_queries(&self.queries, index, count);
        for (query, predictor) in self.size_predictors.iter().enumerate() {
            shard.share_size_predictor_for(query, Arc::clone(predictor));
        }
        // The replacement must route replayed window opens exactly as the
        // survivors did: same size hint, same ownership policy (the live
        // ownership table itself is restored from the checkpoint).
        if let Some(hint) = self.window_size_hint {
            shard.set_window_size_hint(hint);
        }
        shard.set_ownership_policy(self.ownership);
        shard
    }

    /// Builds `shard_count` fresh shards for `queries`, all slots live,
    /// wired to the given per-query predictors.
    fn build_shards(
        queries: &QuerySet,
        shard_count: usize,
        predictors: &[Arc<SharedSizePredictor>],
        ownership: OwnershipPolicy,
    ) -> Vec<Shard> {
        (0..shard_count)
            .map(|index| {
                let mut shard = Shard::for_queries(queries, index, shard_count);
                for (query, predictor) in predictors.iter().enumerate() {
                    shard.share_size_predictor_for(query, Arc::clone(predictor));
                }
                shard.set_ownership_policy(ownership);
                shard
            })
            .collect()
    }

    /// Sets the capacity of every shard's bounded input queue for
    /// subsequent streaming runs. Smaller capacities backpressure the
    /// producer earlier; the default is [`DEFAULT_QUEUE_CAPACITY`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn set_queue_capacity(&mut self, capacity: usize) {
        self.try_set_queue_capacity(capacity).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`set_queue_capacity`](Self::set_queue_capacity) with a typed error
    /// instead of a panic.
    pub fn try_set_queue_capacity(&mut self, capacity: usize) -> Result<(), ConfigError> {
        if capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        self.queue_capacity = capacity;
        Ok(())
    }

    /// The configured per-shard queue capacity (in hand-offs).
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Sets how many events the producer batches into one shared
    /// [`EventChunk`] before broadcasting it (one `Arc` reference per
    /// shard) on subsequent streaming runs. Capacity 1 degenerates to the
    /// per-event broadcast hand-off (no chunk allocation); the default is
    /// [`DEFAULT_CHUNK_CAPACITY`]. Output is invariant in this knob — it
    /// trades hand-off amortisation against publication latency.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn set_chunk_capacity(&mut self, capacity: usize) {
        self.try_set_chunk_capacity(capacity).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`set_chunk_capacity`](Self::set_chunk_capacity) with a typed error
    /// instead of a panic.
    pub fn try_set_chunk_capacity(&mut self, capacity: usize) -> Result<(), ConfigError> {
        if capacity == 0 {
            return Err(ConfigError::ZeroChunkCapacity);
        }
        self.chunk_capacity = capacity;
        Ok(())
    }

    /// The configured events-per-chunk of the streaming hand-off.
    pub fn chunk_capacity(&self) -> usize {
        self.chunk_capacity
    }

    /// Enables (or disables, with `None`) periodic queue sampling: every
    /// `interval` of wall time each drain loop hands every query's decider
    /// a measured [`QueueSample`] via [`WindowEventDecider::queue_sample`].
    /// This is the hook closed-loop overload detection attaches to.
    ///
    /// [`QueueSample`]: crate::QueueSample
    pub fn set_check_interval(&mut self, interval: Option<Duration>) {
        self.try_set_check_interval(interval).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`set_check_interval`](Self::set_check_interval) with a typed error
    /// instead of a panic.
    pub fn try_set_check_interval(
        &mut self,
        interval: Option<Duration>,
    ) -> Result<(), ConfigError> {
        if interval == Some(Duration::ZERO) {
            return Err(ConfigError::ZeroCheckInterval);
        }
        self.check_interval = interval;
        Ok(())
    }

    /// Installs (or clears, with `None`) a deterministic [`FaultPlan`] to
    /// inject into subsequent **streaming** runs (`run_source*`,
    /// [`run_source_resilient`](Self::run_source_resilient)). Slice scans
    /// have no hand-off boundaries and ignore the plan. With no plan
    /// installed the fault hook costs one branch per queue hand-off and
    /// nothing per event.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
    }

    /// Queue counters of the most recent streaming run (empty before the
    /// first run), indexed by shard. One queue serves all queries of a
    /// shard, so there is no per-query axis here.
    pub fn queue_stats(&self) -> &[QueueStats] {
        &self.queue_stats
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Length of the per-query axis: every query the engine has ever
    /// carried, live or retired. Outputs, statistics and decider rows are
    /// indexed by it.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Number of queries currently live (admitted and not retired).
    pub fn live_query_count(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// Whether the query at `slot` is currently live.
    pub fn is_live(&self, slot: QueryId) -> bool {
        self.live.get(slot as usize).copied().unwrap_or(false)
    }

    /// The generation-stamped handle of the live query at `slot`, or `None`
    /// if the slot is retired or out of range. Pass it to
    /// [`EngineControl::retire`] to tear the query down mid-stream.
    pub fn query_handle(&self, slot: QueryId) -> Option<QueryHandle> {
        let index = slot as usize;
        (self.is_live(slot)).then(|| self.handles[index])
    }

    /// The executed query set: the whole per-query axis, retired slots
    /// included (a slot's query is never removed, so slot indices stay
    /// stable).
    pub fn queries(&self) -> &QuerySet {
        &self.queries
    }

    /// The first (or only) query the engine executes.
    pub fn query(&self) -> &Query {
        &self.queries.queries()[0]
    }

    /// The engine's lifecycle control handle (created on first call; every
    /// call returns a clone of the same channel). Requests sent through it
    /// are drained at event boundaries of the next (or current) live run —
    /// see [`run_source_live`](Self::run_source_live) /
    /// [`run_slice_live`](Self::run_slice_live). Static runs (`run`,
    /// `run_slice`, …) never drain the channel.
    pub fn control(&mut self) -> EngineControl {
        if self.control.is_none() {
            let (control, receiver) = EngineControl::create(self.shards.len(), self.queries.len());
            self.control = Some(control);
            self.control_rx = Some(receiver);
        }
        self.control.clone().expect("control created above")
    }

    /// Seeds every query's engine-wide window-size prediction, e.g. with
    /// the average window size observed during model training. Queries
    /// admitted later inherit the hint for their fresh predictors.
    pub fn set_window_size_hint(&mut self, hint: usize) {
        self.window_size_hint = Some(hint);
        for shard in &mut self.shards {
            shard.set_window_size_hint(hint);
        }
    }

    /// Selects how window ownership is assigned across shards for
    /// subsequent runs. The default, [`OwnershipPolicy::StaticModulo`],
    /// keeps the zero-cost `id % shard_count` assignment;
    /// [`OwnershipPolicy::StealAtOpen`] routes each opening window to the
    /// shard the deterministic [`WindowBalancer`] projects as least loaded
    /// — every shard computes the identical assignment from the shared
    /// stream, so no cross-shard coordination happens on the hot path (see
    /// [`Shard::set_ownership_policy`] for the load-signal derivation).
    /// Merged output is byte-identical under either policy.
    ///
    /// [`WindowBalancer`]: crate::WindowBalancer
    ///
    /// # Panics
    ///
    /// Panics if any shard has already processed events — switch policies
    /// only on a fresh engine or after [`reset`](Self::reset).
    pub fn set_ownership_policy(&mut self, policy: OwnershipPolicy) {
        self.ownership = policy;
        for shard in &mut self.shards {
            shard.set_ownership_policy(policy);
        }
    }

    /// The active window-ownership policy.
    pub fn ownership_policy(&self) -> OwnershipPolicy {
        self.ownership
    }

    /// Windows the balancer routed away from their static `id %
    /// shard_count` owner, summed over all shards — always 0 under
    /// [`OwnershipPolicy::StaticModulo`].
    pub fn stolen_windows(&self) -> u64 {
        self.shards.iter().map(Shard::stolen_windows).sum()
    }

    /// The window-size predictor shared by all shards for query `query`
    /// (relevant for time-based, variable-size windows).
    ///
    /// # Panics
    ///
    /// Panics if `query` is out of range.
    pub fn size_predictor_for(&self, query: usize) -> &SharedSizePredictor {
        &self.size_predictors[query]
    }

    /// The window-size predictor of query 0 (single-query compatibility
    /// wrapper over [`size_predictor_for`](Self::size_predictor_for)).
    pub fn shared_size_predictor(&self) -> &SharedSizePredictor {
        self.size_predictor_for(0)
    }

    /// Runs a materialised stream through the engine: the slice-compatible
    /// wrapper over [`run_source`](Self::run_source). Existing callers and
    /// benches keep compiling, but the execution underneath is the
    /// streaming pipeline — a producer fan-out over bounded per-shard
    /// queues — not a shared-slice scan. The hand-off costs one clone +
    /// queue push/pop per event per shard *for the whole query set*; batch
    /// callers that only ever process fully materialised streams and want
    /// the zero-copy scan should call [`run_slice`](Self::run_slice)
    /// instead.
    ///
    /// For a multi-query engine the returned vector is the per-query
    /// outputs concatenated in query order (see
    /// [`run_source_per_query`](Self::run_source_per_query) to keep them
    /// apart); with a single query it is exactly the single-operator
    /// output.
    ///
    /// # Panics
    ///
    /// Panics if `deciders.len()` differs from `shards × queries`.
    pub fn run<S, D>(&mut self, stream: &S, deciders: &mut [D]) -> Vec<ComplexEvent>
    where
        S: EventStream + ?Sized,
        D: WindowEventDecider + Send,
    {
        let mut source = SliceSource::new(stream.events());
        self.run_source(&mut source, deciders)
    }

    /// [`run`](Self::run), returning each query's complex events
    /// separately (indexed by query, each in single-operator emission
    /// order).
    pub fn run_per_query<S, D>(&mut self, stream: &S, deciders: &mut [D]) -> Vec<Vec<ComplexEvent>>
    where
        S: EventStream + ?Sized,
        D: WindowEventDecider + Send,
    {
        let mut source = SliceSource::new(stream.events());
        self.run_source_per_query(&mut source, deciders)
    }

    /// Runs a materialised stream through all shards as a *shared-slice
    /// scan*: no queues, no producer thread — every shard (on its own
    /// scoped thread when there is more than one) iterates the slice
    /// directly, offering each event to every query's operator in the
    /// fused pass. This is the batch path: it avoids the streaming
    /// pipeline's per-event hand-off for workloads that are fully
    /// materialised anyway, and serves as the oracle the streaming path is
    /// property-tested against. Output and statistics are identical to
    /// [`run_source`](Self::run_source) for deciders whose decisions are a
    /// function of `(window id, position, event)` — plus `predicted size`
    /// on count-based windows, where the prediction is exact.
    ///
    /// # Panics
    ///
    /// Panics if `deciders.len()` differs from `shards × queries`.
    pub fn run_slice<S, D>(&mut self, stream: &S, deciders: &mut [D]) -> Vec<ComplexEvent>
    where
        S: EventStream + ?Sized,
        D: WindowEventDecider + Send,
    {
        flatten(self.run_slice_per_query(stream, deciders))
    }

    /// [`run_slice`](Self::run_slice), returning each query's complex
    /// events separately.
    ///
    /// # Panics
    ///
    /// Panics if `deciders.len()` differs from `shards × queries`.
    pub fn run_slice_per_query<S, D>(
        &mut self,
        stream: &S,
        deciders: &mut [D],
    ) -> Vec<Vec<ComplexEvent>>
    where
        S: EventStream + ?Sized,
        D: WindowEventDecider + Send,
    {
        self.try_run_slice_per_query(stream, deciders).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`run_slice_per_query`](Self::run_slice_per_query) with panic
    /// containment: a decider-count mismatch and shard-thread panics come
    /// back as a typed [`EngineError`] instead of unwinding the caller.
    /// Surviving shards run to completion before the error is returned.
    /// After [`EngineError::ShardsFailed`] the engine's internal state is
    /// unspecified (a crashed scan stops mid-window); call
    /// [`reset`](Self::reset) before reusing the engine, or use
    /// [`run_source_resilient`](Self::run_source_resilient) to recover the
    /// run itself.
    pub fn try_run_slice_per_query<S, D>(
        &mut self,
        stream: &S,
        deciders: &mut [D],
    ) -> Result<Vec<Vec<ComplexEvent>>, EngineError>
    where
        S: EventStream + ?Sized,
        D: WindowEventDecider + Send,
    {
        let queries = self.queries.len();
        check_decider_count(deciders.len(), self.shards.len(), queries, false)?;
        let events = stream.events();
        self.events_processed += events.len() as u64;

        let mut failures: Vec<ShardFailure> = Vec::new();
        let outputs: Vec<Vec<Vec<ComplexEvent>>> = if self.shards.len() == 1 {
            let shard = &mut self.shards[0];
            match std::panic::catch_unwind(AssertUnwindSafe(|| {
                shard.run_events_multi(events, deciders)
            })) {
                Ok(output) => vec![output],
                Err(payload) => {
                    failures.push(ShardFailure {
                        shard: 0,
                        message: panic_message(payload),
                        position: None,
                    });
                    Vec::new()
                }
            }
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(deciders.chunks_mut(queries))
                    .map(|(shard, chunk)| {
                        scope.spawn(move || shard.run_events_multi(events, chunk))
                    })
                    .collect();
                handles
                    .into_iter()
                    .enumerate()
                    .filter_map(|(shard, handle)| match handle.join() {
                        Ok(output) => Some(output),
                        Err(payload) => {
                            failures.push(ShardFailure {
                                shard,
                                message: panic_message(payload),
                                position: None,
                            });
                            None
                        }
                    })
                    .collect()
            })
        };
        if !failures.is_empty() {
            return Err(EngineError::ShardsFailed { failures });
        }

        Ok(merge_outputs(outputs, queries))
    }

    /// Streams events from `source` through all shards, with one decider
    /// per shard per query, and returns the merged complex events (the
    /// per-query outputs concatenated in query order; see
    /// [`run_source_per_query`](Self::run_source_per_query)).
    ///
    /// Every shard owns a bounded SPSC input queue drained by its own
    /// scoped thread; the calling thread acts as the producer, pulling
    /// events from the source, appending them **once** into a shared
    /// sequence-stamped chunk, and broadcasting each sealed chunk to every
    /// shard's queue as an `Arc` reference (each shard derives the same
    /// global window ids from the full stream, so no coordination is
    /// needed). A full queue blocks the producer — bounded-queue
    /// backpressure instead of unbounded buffering — and shards start
    /// processing before the stream has been fully produced. Each chunk is
    /// handed over **once per shard**, no matter how many queries the
    /// engine executes: the shard's drain loop scans the shared buffer in
    /// place and fans every event out to every query's operator in
    /// process. Paced sources flush partial chunks on a deadline (see
    /// [`set_chunk_capacity`](Self::set_chunk_capacity)); the measured
    /// per-queue state — event-denominated, so a half-full chunk is never
    /// mistaken for a full queue — can be fed back to the deciders via
    /// [`set_check_interval`](Self::set_check_interval).
    ///
    /// Each shard owns a disjoint subset of every query's windows, so
    /// decider `[shard s, query q]` only ever sees the (event, window)
    /// pairs of query `q`'s windows owned by shard `s`. Deciders whose
    /// decisions depend only on `(window id, position, event, predicted
    /// size)` — [`KeepAll`], the eSPICE shedder with its per-window-keyed
    /// boundary thinning — produce output identical to an unsharded slice
    /// run on count-based windows, for every queue capacity. Deciders with
    /// genuinely cross-window state (e.g. random sampling) may pick
    /// different events; on time-based windows the shards share one size
    /// predictor per query, so `predicted_size` no longer drifts with the
    /// shard count, but its mid-run values can vary with thread timing.
    ///
    /// # Panics
    ///
    /// Panics if `deciders.len()` differs from `shards × queries`.
    pub fn run_source<Src, D>(&mut self, source: &mut Src, deciders: &mut [D]) -> Vec<ComplexEvent>
    where
        Src: EventSource + ?Sized,
        D: WindowEventDecider + Send,
    {
        flatten(self.run_source_per_query(source, deciders))
    }

    /// [`run_source`](Self::run_source), returning each query's complex
    /// events separately (indexed by query, each in single-operator
    /// emission order).
    ///
    /// # Panics
    ///
    /// Panics if `deciders.len()` differs from `shards × queries`.
    pub fn run_source_per_query<Src, D>(
        &mut self,
        source: &mut Src,
        deciders: &mut [D],
    ) -> Vec<Vec<ComplexEvent>>
    where
        Src: EventSource + ?Sized,
        D: WindowEventDecider + Send,
    {
        self.try_run_source_per_query(source, deciders).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`run_source_per_query`](Self::run_source_per_query) with panic
    /// containment: when a drain thread dies, the producer marks that shard
    /// dead and **keeps feeding the survivors** to completion, then returns
    /// [`EngineError::ShardsFailed`] carrying each dead shard's panic
    /// message and the stream position (chunk sequence) its producer hand-off
    /// first failed at — the diagnostics the old silent `break` discarded.
    /// After a failure the engine's internal state is unspecified; call
    /// [`reset`](Self::reset) before reuse, or use
    /// [`run_source_resilient`](Self::run_source_resilient) to recover the
    /// run itself.
    pub fn try_run_source_per_query<Src, D>(
        &mut self,
        source: &mut Src,
        deciders: &mut [D],
    ) -> Result<Vec<Vec<ComplexEvent>>, EngineError>
    where
        Src: EventSource + ?Sized,
        D: WindowEventDecider + Send,
    {
        let queries = self.queries.len();
        check_decider_count(deciders.len(), self.shards.len(), queries, false)?;
        let capacity = self.queue_capacity;
        let chunk_capacity = self.chunk_capacity;
        let check_interval = self.check_interval;
        let faults = self.fault_plan.as_ref().map(ArmedFaults::arm);
        let kill_after = faults.as_ref().and_then(|f| f.producer_kill_after());

        let mut produced = 0u64;
        let mut failures: Vec<ShardFailure> = Vec::new();
        let (outputs, queue_stats) = std::thread::scope(|scope| {
            let mut producers = Vec::with_capacity(self.shards.len());
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(deciders.chunks_mut(queries))
                .map(|(shard, chunk)| {
                    let (producer, consumer) = spsc(capacity);
                    producers.push(producer);
                    let faults = faults.clone();
                    scope.spawn(move || {
                        shard.run_queue_multi_injected(
                            consumer,
                            chunk,
                            check_interval,
                            faults.as_deref(),
                        )
                    })
                })
                .collect();

            // Tracks shards whose drain thread died mid-stream: the
            // producer skips them (their queue would reject every push) but
            // keeps feeding the survivors. `deaths` records the stream
            // position at which each shard's hand-off first failed — the
            // diagnostics the returned error carries.
            let mut dead = vec![false; producers.len()];
            let mut deaths: Vec<(usize, u64)> = Vec::new();

            // Producer fan-out at batch granularity: events are appended
            // once into a shared chunk, and sealing broadcasts one
            // `Arc<EventChunk>` reference per shard — the queue's Release
            // tail store publishes the whole batch, so ingestion is O(1)
            // amortised per event regardless of the shard count. One
            // hand-off per chunk per shard serves all queries.
            if chunk_capacity == 1 {
                // Degenerate per-event broadcast: the pre-arena hand-off,
                // kept allocation-free (no chunk wrapping single events).
                while let Some(event) = source.next_event() {
                    if kill_after.is_some_and(|kill| produced >= kill) {
                        break;
                    }
                    if !broadcast_event(&mut producers, &mut dead, &mut deaths, produced, event) {
                        break; // every drain thread died
                    }
                    produced += 1;
                }
            } else {
                let paced = source.is_paced();
                let mut builder = ChunkBuilder::new(chunk_capacity);
                let mut oldest_pending: Option<Instant> = None;
                'produce: loop {
                    // A paced source can dribble: flush the partial chunk
                    // once it is older than the deadline so batching never
                    // adds hand-off latency to a paced replay. (Only paced
                    // sources ever set `oldest_pending`, so saturated
                    // replays pay no clock reads here.)
                    if oldest_pending.is_some_and(|since| since.elapsed() >= PACED_FLUSH_INTERVAL) {
                        if let Some(partial) = builder.seal() {
                            if !broadcast_chunk(&mut producers, &mut dead, &mut deaths, partial) {
                                break 'produce;
                            }
                        }
                        oldest_pending = None;
                    }
                    if kill_after.is_some_and(|kill| produced >= kill) {
                        // Injected producer kill: drop the partial builder —
                        // the delivered stream is the sealed-chunk prefix.
                        return (
                            join_outputs(handles, &mut producers, &mut failures, &deaths),
                            producers.iter().map(|p| p.stats()).collect(),
                        );
                    }
                    let Some(event) = source.next_event() else { break };
                    produced += 1;
                    if paced && oldest_pending.is_none() {
                        oldest_pending = Some(Instant::now());
                    }
                    if let Some(full) = builder.push(event) {
                        if !broadcast_chunk(&mut producers, &mut dead, &mut deaths, full) {
                            break 'produce;
                        }
                        oldest_pending = None;
                    }
                }
                if let Some(partial) = builder.seal() {
                    let _ = broadcast_chunk(&mut producers, &mut dead, &mut deaths, partial);
                }
            }

            (
                join_outputs(handles, &mut producers, &mut failures, &deaths),
                producers.iter().map(|p| p.stats()).collect(),
            )
        });
        self.events_processed += produced;
        self.queue_stats = queue_stats;
        if !failures.is_empty() {
            return Err(EngineError::ShardsFailed { failures });
        }

        Ok(merge_outputs(outputs, queries))
    }

    /// Splits the flat shard-major initial deciders into per-shard rows
    /// aligned with the slot axis (`None` at retired slots).
    fn build_rows(
        &self,
        deciders: Vec<BoxedDecider>,
    ) -> Result<Vec<Vec<Option<BoxedDecider>>>, EngineError> {
        let live_slots: Vec<usize> = (0..self.queries.len()).filter(|&s| self.live[s]).collect();
        check_decider_count(deciders.len(), self.shards.len(), live_slots.len(), true)?;
        let mut iter = deciders.into_iter();
        Ok((0..self.shards.len())
            .map(|_| {
                let mut row: Vec<Option<BoxedDecider>> =
                    (0..self.queries.len()).map(|_| None).collect();
                for &slot in &live_slots {
                    row[slot] = Some(iter.next().expect("length checked above"));
                }
                row
            })
            .collect())
    }

    /// The lifecycle-enabled batch scan: like
    /// [`run_slice_per_query`](Self::run_slice_per_query), but the decider
    /// rows are engine-owned [`BoxedDecider`]s and every request already
    /// sitting in the control channel is applied at its anchored stream
    /// position (unanchored requests apply at position 0). Requests sent
    /// *while* this run executes are left for the next run — the slice scan
    /// is the deterministic batch path; continuous admission needs
    /// [`run_source_live`](Self::run_source_live).
    ///
    /// `deciders` supplies one decider per shard per **live** query,
    /// shard-major, exactly as the static paths do.
    ///
    /// # Panics
    ///
    /// Panics if the decider count does not match `shards × live queries`.
    pub fn run_slice_live<S>(&mut self, stream: &S, deciders: Vec<BoxedDecider>) -> LiveRunOutcome
    where
        S: EventStream + ?Sized,
    {
        self.try_run_slice_live(stream, deciders).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`run_slice_live`](Self::run_slice_live) with panic containment: a
    /// decider-count mismatch and shard-thread panics come back as a typed
    /// [`EngineError`]. Surviving shards complete their scan first. After
    /// [`EngineError::ShardsFailed`] the engine's internal state is
    /// unspecified; call [`reset`](Self::reset) before reuse.
    pub fn try_run_slice_live<S>(
        &mut self,
        stream: &S,
        deciders: Vec<BoxedDecider>,
    ) -> Result<LiveRunOutcome, EngineError>
    where
        S: EventStream + ?Sized,
    {
        let rows = self.build_rows(deciders)?;
        let events = stream.events();
        let end = events.len() as u64;
        self.events_processed += end;

        // Drain the channel once, anchor (unanchored → 0, admissions
        // non-decreasing in send order, see [`Anchoring`]) and stable-sort
        // so commands apply in (position, send order).
        let mut anchoring = Anchoring::new();
        let mut requests: Vec<(u64, LifecycleRequest)> = Vec::new();
        if let Some(receiver) = &self.control_rx {
            for request in receiver.try_iter() {
                let at = anchoring.anchor(&request, 0).min(end);
                requests.push((at, request));
            }
        }
        requests.sort_by_key(|(at, _)| *at);

        let shard_count = self.shards.len();
        let ShardedEngine {
            shards, queries, handles, live, size_predictors, window_size_hint, ..
        } = self;
        let mut lifecycle = EngineLifecycle {
            queries,
            handles,
            live,
            size_predictors,
            window_size_hint: *window_size_hint,
            shard_count,
            report: LifecycleReport::default(),
        };
        let mut per_shard: Vec<VecDeque<(u64, ShardCommand)>> =
            (0..shard_count).map(|_| VecDeque::new()).collect();
        for (at, request) in requests {
            if let Some(commands) = lifecycle.apply(request, at) {
                for (shard, command) in commands.into_iter().enumerate() {
                    per_shard[shard].push_back((at, command));
                }
            }
        }
        let report = lifecycle.report;

        let mut failures: Vec<ShardFailure> = Vec::new();
        let results: Vec<LiveShardResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter_mut()
                .zip(rows.into_iter().zip(per_shard))
                .map(|(shard, (row, commands))| {
                    scope.spawn(move || shard.run_events_live(events, commands, row))
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .filter_map(|(shard, handle)| match handle.join() {
                    Ok(result) => Some(result),
                    Err(payload) => {
                        failures.push(ShardFailure {
                            shard,
                            message: panic_message(payload),
                            position: None,
                        });
                        None
                    }
                })
                .collect()
        });
        if !failures.is_empty() {
            return Err(EngineError::ShardsFailed { failures });
        }

        let mut outputs = Vec::with_capacity(results.len());
        let mut decider_rows = Vec::with_capacity(results.len());
        for (output, row) in results {
            outputs.push(output);
            decider_rows.push(row);
        }
        Ok(LiveRunOutcome {
            complex_events: merge_outputs(outputs, self.queries.len()),
            deciders: decider_rows,
            lifecycle: report,
        })
    }

    /// The lifecycle-enabled streaming run: like
    /// [`run_source_per_query`](Self::run_source_per_query), but the
    /// decider rows are engine-owned [`BoxedDecider`]s and the control
    /// channel is drained **continuously** at event boundaries — this is
    /// the live multi-tenant service loop. Every accepted request is
    /// broadcast in-band into all shard queues, so it takes effect at the
    /// same stream position on every shard: an admitted query's output is
    /// byte-identical to a fresh static engine started at its admission
    /// position, and a retiring query drains its open windows to
    /// completion before teardown. Requests anchored at a position already
    /// passed apply at the drain point.
    ///
    /// `deciders` supplies one decider per shard per **live** query,
    /// shard-major.
    ///
    /// # Panics
    ///
    /// Panics if the decider count does not match `shards × live queries`.
    pub fn run_source_live<Src>(
        &mut self,
        source: &mut Src,
        deciders: Vec<BoxedDecider>,
    ) -> LiveRunOutcome
    where
        Src: EventSource + ?Sized,
    {
        self.try_run_source_live(source, deciders).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`run_source_live`](Self::run_source_live) with panic containment:
    /// when a drain thread dies the producer marks the shard dead, keeps
    /// feeding the survivors (events and in-band lifecycle commands) to
    /// completion, and returns [`EngineError::ShardsFailed`] with each dead
    /// shard's panic message and the stream position its hand-off first
    /// failed at. After a failure the engine's internal state is
    /// unspecified; call [`reset`](Self::reset) before reuse. (Chunk-replay
    /// recovery is a static-path feature — see
    /// [`run_source_resilient`](Self::run_source_resilient); combining it
    /// with mid-stream lifecycle is future work.)
    pub fn try_run_source_live<Src>(
        &mut self,
        source: &mut Src,
        deciders: Vec<BoxedDecider>,
    ) -> Result<LiveRunOutcome, EngineError>
    where
        Src: EventSource + ?Sized,
    {
        let rows = self.build_rows(deciders)?;
        let capacity = self.queue_capacity;
        let chunk_capacity = self.chunk_capacity;
        let check_interval = self.check_interval;
        let shard_count = self.shards.len();
        let faults = self.fault_plan.as_ref().map(ArmedFaults::arm);
        let kill_after = faults.as_ref().and_then(|f| f.producer_kill_after());

        let ShardedEngine {
            shards,
            queries,
            handles,
            live,
            size_predictors,
            window_size_hint,
            control_rx,
            ..
        } = self;
        let mut lifecycle = EngineLifecycle {
            queries,
            handles,
            live,
            size_predictors,
            window_size_hint: *window_size_hint,
            shard_count,
            report: LifecycleReport::default(),
        };
        let receiver = control_rx.as_ref();

        let mut produced = 0u64;
        let mut failures: Vec<ShardFailure> = Vec::new();
        let (results, queue_stats) = std::thread::scope(|scope| {
            let mut producers = Vec::with_capacity(shard_count);
            let threads: Vec<_> = shards
                .iter_mut()
                .zip(rows)
                .map(|(shard, row)| {
                    let (producer, consumer) = spsc(capacity);
                    producers.push(producer);
                    let faults = faults.clone();
                    scope.spawn(move || {
                        shard.run_queue_live(consumer, row, check_interval, faults.as_deref())
                    })
                })
                .collect();
            let mut dead = vec![false; producers.len()];
            let mut deaths: Vec<(usize, u64)> = Vec::new();

            // Requests drained but not yet due, sorted by anchor position
            // (stable within a position: send order; admissions clamped
            // non-decreasing, see [`Anchoring`]).
            let mut anchoring = Anchoring::new();
            let mut pending: Vec<(u64, LifecycleRequest)> = Vec::new();
            let mut position = 0u64;
            let mut aborted = false;
            let paced = source.is_paced();
            // `None` selects the degenerate per-event hand-off.
            let mut builder = (chunk_capacity > 1).then(|| ChunkBuilder::new(chunk_capacity));
            let mut oldest_pending: Option<Instant> = None;
            'produce: loop {
                if let Some(receiver) = receiver {
                    let mut drained_any = false;
                    while let Ok(request) = receiver.try_recv() {
                        let at = anchoring.anchor(&request, position);
                        pending.push((at, request));
                        drained_any = true;
                    }
                    if drained_any {
                        pending.sort_by_key(|(at, _)| *at);
                    }
                }
                if pending.first().is_some_and(|(at, _)| *at <= position) {
                    // A due command must land *between* chunks: seal and
                    // broadcast the partial chunk first, so the command
                    // applies at this exact stream position on every shard.
                    if let Some(partial) = builder.as_mut().and_then(ChunkBuilder::seal) {
                        if !broadcast_chunk(&mut producers, &mut dead, &mut deaths, partial) {
                            aborted = true;
                            break 'produce;
                        }
                        oldest_pending = None;
                    }
                    while pending.first().is_some_and(|(at, _)| *at <= position) {
                        let (_, request) = pending.remove(0);
                        if let Some(commands) = lifecycle.apply(request, position) {
                            for (shard, (producer, command)) in
                                producers.iter_mut().zip(commands).enumerate()
                            {
                                if dead[shard] {
                                    continue;
                                }
                                // Commands occupy a queue slot but no
                                // stream position: weight 0 keeps the
                                // measured event depth exact.
                                let input = ShardInput::Command(Box::new(command));
                                if !producer.push_blocking_weighted(input, 0) {
                                    dead[shard] = true;
                                    deaths.push((shard, position));
                                }
                            }
                            if dead.iter().all(|&d| d) {
                                aborted = true;
                                break 'produce;
                            }
                        }
                    }
                }
                // Paced-flush deadline, as in `run_source_per_query`.
                if oldest_pending.is_some_and(|since| since.elapsed() >= PACED_FLUSH_INTERVAL) {
                    if let Some(partial) = builder.as_mut().and_then(ChunkBuilder::seal) {
                        if !broadcast_chunk(&mut producers, &mut dead, &mut deaths, partial) {
                            aborted = true;
                            break 'produce;
                        }
                    }
                    oldest_pending = None;
                }
                if kill_after.is_some_and(|kill| produced >= kill) {
                    // Injected producer kill: the partial builder is
                    // dropped, so shards see the sealed-chunk prefix only.
                    aborted = true;
                    break 'produce;
                }
                let Some(event) = source.next_event() else { break };
                produced += 1;
                position += 1;
                match &mut builder {
                    Some(builder) => {
                        if paced && oldest_pending.is_none() {
                            oldest_pending = Some(Instant::now());
                        }
                        if let Some(full) = builder.push(event) {
                            if !broadcast_chunk(&mut producers, &mut dead, &mut deaths, full) {
                                aborted = true;
                                break 'produce;
                            }
                            oldest_pending = None;
                        }
                    }
                    None => {
                        if !broadcast_event(
                            &mut producers,
                            &mut dead,
                            &mut deaths,
                            position - 1,
                            event,
                        ) {
                            aborted = true;
                            break 'produce; // every drain thread died
                        }
                    }
                }
            }
            // The trailing partial chunk precedes any late request: late
            // requests apply at the end-of-stream position, after every
            // event.
            if !aborted {
                if let Some(partial) = builder.as_mut().and_then(ChunkBuilder::seal) {
                    aborted = !broadcast_chunk(&mut producers, &mut dead, &mut deaths, partial);
                }
            }
            // Requests that arrived too late for any event boundary apply
            // at the end of the stream (admissions open no windows; retires
            // still tear down before the flush).
            if !aborted {
                if let Some(receiver) = receiver {
                    for request in receiver.try_iter() {
                        let at = anchoring.anchor(&request, position);
                        pending.push((at, request));
                    }
                }
                pending.sort_by_key(|(at, _)| *at);
                for (_, request) in pending.drain(..) {
                    if let Some(commands) = lifecycle.apply(request, position) {
                        for (shard, (producer, command)) in
                            producers.iter_mut().zip(commands).enumerate()
                        {
                            if dead[shard] {
                                continue;
                            }
                            let input = ShardInput::Command(Box::new(command));
                            let _ = producer.push_blocking_weighted(input, 0);
                        }
                    }
                }
            }
            let results = join_outputs(threads, &mut producers, &mut failures, &deaths);
            let queue_stats: Vec<QueueStats> = producers.iter().map(|p| p.stats()).collect();
            (results, queue_stats)
        });
        let report = lifecycle.report;
        self.events_processed += produced;
        self.queue_stats = queue_stats;
        if !failures.is_empty() {
            return Err(EngineError::ShardsFailed { failures });
        }

        let mut outputs = Vec::with_capacity(results.len());
        let mut decider_rows = Vec::with_capacity(results.len());
        for (output, row) in results {
            outputs.push(output);
            decider_rows.push(row);
        }
        Ok(LiveRunOutcome {
            complex_events: merge_outputs(outputs, self.queries.len()),
            deciders: decider_rows,
            lifecycle: report,
        })
    }

    /// [`run`](Self::run) with a keep-everything decider on every shard and
    /// query (ground-truth runs and throughput benchmarks).
    pub fn run_keep_all<S>(&mut self, stream: &S) -> Vec<ComplexEvent>
    where
        S: EventStream + ?Sized,
    {
        let mut deciders = vec![KeepAll; self.shards.len() * self.queries.len()];
        self.run(stream, &mut deciders)
    }

    /// Sum of the shards' peak resident entry counts: an upper bound on the
    /// engine's total peak window-storage footprint in events (per-shard
    /// peaks need not coincide in time).
    pub fn peak_resident_entries(&self) -> usize {
        self.shards.iter().map(Shard::peak_resident_entries).sum()
    }

    /// Engine statistics: per-shard and per-query counters plus merged
    /// totals. The per-query axis covers every slot, retired queries
    /// included (their counters freeze at teardown).
    pub fn stats(&self) -> EngineStats {
        let per_shard: Vec<OperatorStats> = self.shards.iter().map(Shard::stats).collect();
        let mut per_query: Vec<OperatorStats> = Vec::with_capacity(self.queries.len());
        for slot in 0..self.queries.len() {
            let mut merged = OperatorStats::default();
            let mut events = 0u64;
            for shard in &self.shards {
                let stats = shard.slot_stats(slot);
                merged.merge(stats);
                // Every shard's operator processes the same stream span for
                // this slot, except that a draining shard stops once *its*
                // windows closed — the slot's span is the longest of them,
                // which is exactly what a single-operator run would report.
                events = events.max(stats.events_processed);
            }
            merged.events_processed = events;
            per_query.push(merged);
        }
        let mut merged = OperatorStats::default();
        for stats in &per_query {
            merged.merge(stats);
        }
        // Engine-level totals count each ingested event once.
        merged.events_processed = self.events_processed;
        EngineStats { merged, per_shard, per_query }
    }

    /// Resets the engine to a fresh start over its current per-query axis:
    /// every slot — including previously retired ones — is rebuilt live
    /// with a fresh operator, open tracker and size predictor (seeded from
    /// the last window-size hint, if any). Admission handles and
    /// generations are preserved; counters and queue statistics clear.
    pub fn reset(&mut self) {
        self.size_predictors = Self::build_predictors(&self.queries, self.window_size_hint);
        self.shards = Self::build_shards(
            &self.queries,
            self.shards.len(),
            &self.size_predictors,
            self.ownership,
        );
        if let Some(hint) = self.window_size_hint {
            for shard in &mut self.shards {
                shard.set_window_size_hint(hint);
            }
        }
        for live in &mut self.live {
            *live = true;
        }
        self.events_processed = 0;
        self.queue_stats.clear();
    }
}

/// The engine-side lifecycle bookkeeping, split out as disjoint field
/// borrows so the streaming producer can admit and retire while the shards
/// (borrowed separately) drain their queues.
struct EngineLifecycle<'a> {
    queries: &'a mut QuerySet,
    handles: &'a mut Vec<QueryHandle>,
    live: &'a mut Vec<bool>,
    size_predictors: &'a mut Vec<Arc<SharedSizePredictor>>,
    window_size_hint: Option<usize>,
    shard_count: usize,
    report: LifecycleReport,
}

impl EngineLifecycle<'_> {
    /// Validates one request at stream `position`. Returns the per-shard
    /// commands to broadcast, or `None` when the request was rejected
    /// (stale retire handle).
    fn apply(&mut self, request: LifecycleRequest, position: u64) -> Option<Vec<ShardCommand>> {
        match request {
            LifecycleRequest::Admit { handle, query, deciders, .. } => {
                assert_eq!(
                    handle.slot as usize,
                    self.queries.len(),
                    "admissions must arrive in slot order (one control channel per engine)"
                );
                assert_eq!(
                    deciders.len(),
                    self.shard_count,
                    "an admission needs exactly one decider per shard"
                );
                let initial =
                    query.window().expected_size().or(self.window_size_hint).unwrap_or(100).max(1);
                let predictor = Arc::new(SharedSizePredictor::new(initial));
                self.queries.push(query.clone());
                self.handles.push(handle);
                self.live.push(true);
                self.size_predictors.push(Arc::clone(&predictor));
                self.report.admitted.push((handle, position));
                Some(
                    deciders
                        .into_iter()
                        .map(|decider| ShardCommand::Admit {
                            slot: handle.slot,
                            query: query.clone(),
                            decider,
                            predictor: Arc::clone(&predictor),
                        })
                        .collect(),
                )
            }
            LifecycleRequest::Retire { handle, .. } => {
                let slot = handle.slot as usize;
                let valid = self.live.get(slot).copied().unwrap_or(false)
                    && self.handles.get(slot) == Some(&handle);
                if valid {
                    self.live[slot] = false;
                    self.report.retired.push((handle, position));
                    Some(
                        (0..self.shard_count)
                            .map(|_| ShardCommand::Retire { slot: handle.slot })
                            .collect(),
                    )
                } else {
                    self.report.rejected += 1;
                    None
                }
            }
        }
    }
}

/// Closes every producer, joins the drain threads, and converts panics into
/// [`ShardFailure`]s. Each failure is annotated with the stream position the
/// producer first saw that shard's queue die at (from `deaths`), when the
/// death was noticed before end of stream.
fn join_outputs<T>(
    handles: Vec<std::thread::ScopedJoinHandle<'_, T>>,
    producers: &mut [QueueProducer<ShardInput>],
    failures: &mut Vec<ShardFailure>,
    deaths: &[(usize, u64)],
) -> Vec<T> {
    for producer in producers.iter_mut() {
        producer.close();
    }
    handles
        .into_iter()
        .enumerate()
        .filter_map(|(shard, handle)| match handle.join() {
            Ok(output) => Some(output),
            Err(payload) => {
                let position = deaths.iter().find(|(s, _)| *s == shard).map(|&(_, p)| p);
                failures.push(ShardFailure { shard, message: panic_message(payload), position });
                None
            }
        })
        .collect()
}

/// Broadcasts one sealed chunk to every *live* shard queue — one `Arc`
/// clone and one weighted push (counting the chunk's events) per shard,
/// blocking per queue while it is full. A shard whose drain thread died is
/// marked in `dead` (cold path: at most once per shard per run) with the
/// chunk base position recorded in `deaths`, and the survivors keep being
/// fed. Returns `false` only once every shard is dead.
fn broadcast_chunk(
    producers: &mut [QueueProducer<ShardInput>],
    dead: &mut [bool],
    deaths: &mut Vec<(usize, u64)>,
    chunk: Arc<EventChunk>,
) -> bool {
    let events = chunk.len() as u64;
    let position = chunk.base();
    let mut alive = false;
    for (shard, producer) in producers.iter_mut().enumerate() {
        if dead[shard] {
            continue;
        }
        if producer.push_blocking_weighted(ShardInput::Chunk(Arc::clone(&chunk)), events) {
            alive = true;
        } else {
            dead[shard] = true;
            deaths.push((shard, position));
        }
    }
    alive
}

/// Broadcasts one event to every *live* shard queue: the chunk-capacity-1
/// degenerate hand-off. Dead shards are skipped and recorded as in
/// [`broadcast_chunk`]; returns `false` only once every shard is dead.
fn broadcast_event(
    producers: &mut [QueueProducer<ShardInput>],
    dead: &mut [bool],
    deaths: &mut Vec<(usize, u64)>,
    position: u64,
    event: Event,
) -> bool {
    let mut alive = false;
    for (shard, producer) in producers.iter_mut().enumerate() {
        if dead[shard] {
            continue;
        }
        if producer.push_blocking(ShardInput::Event(event.clone())) {
            alive = true;
        } else {
            dead[shard] = true;
            deaths.push((shard, position));
        }
    }
    alive
}

/// Merges the per-shard, per-query outputs into per-query single-operator
/// emission order. Within a query, windows close in id order (each window's
/// matches are emitted contiguously when it closes), so a stable sort by
/// window id restores the exact single-operator order. Shared by the slice
/// and streaming paths so the merge invariant cannot diverge between them.
pub(crate) fn merge_outputs(
    outputs: Vec<Vec<Vec<ComplexEvent>>>,
    queries: usize,
) -> Vec<Vec<ComplexEvent>> {
    let mut per_query: Vec<Vec<ComplexEvent>> = (0..queries).map(|_| Vec::new()).collect();
    for mut shard_outputs in outputs {
        for (query, output) in shard_outputs.iter_mut().enumerate() {
            per_query[query].append(output);
        }
    }
    for output in &mut per_query {
        output.sort_by_key(ComplexEvent::window_id);
    }
    per_query
}

/// Concatenates per-query outputs in query order (the single flat vector
/// the compatibility entry points return).
fn flatten(per_query: Vec<Vec<ComplexEvent>>) -> Vec<ComplexEvent> {
    let mut flat = Vec::with_capacity(per_query.iter().map(Vec::len).sum());
    for mut output in per_query {
        flat.append(&mut output);
    }
    flat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Decision, Operator, Pattern, WindowMeta, WindowSpec};
    use espice_events::{Event, EventType, Timestamp, VecStream};

    fn ty(i: u32) -> EventType {
        EventType::from_index(i)
    }

    fn keyed_stream(len: u64) -> VecStream {
        VecStream::from_ordered(
            (0..len).map(|i| Event::new(ty((i % 5) as u32), Timestamp::from_secs(i), i)).collect(),
        )
    }

    fn query(window: usize) -> Query {
        Query::builder()
            .pattern(Pattern::sequence([ty(0), ty(1), ty(2)]))
            .window(WindowSpec::count_on_types(vec![ty(0)], window))
            .build()
    }

    fn boxed_keepers(n: usize) -> Vec<BoxedDecider> {
        (0..n).map(|_| Box::new(KeepAll) as BoxedDecider).collect()
    }

    #[test]
    fn engine_output_matches_single_operator_for_all_shard_counts() {
        let stream = keyed_stream(200);
        let single = Operator::new(query(12)).run(&stream, &mut crate::KeepAll);
        assert!(!single.is_empty());
        for shards in [1, 2, 3, 4, 7] {
            let mut engine = ShardedEngine::new(query(12), shards);
            let merged = engine.run_keep_all(&stream);
            assert_eq!(merged, single, "shard count {shards} diverged");
        }
    }

    #[test]
    fn engine_stats_merge_to_single_operator_totals() {
        let stream = keyed_stream(150);
        let mut single = Operator::new(query(10));
        let _ = single.run(&stream, &mut crate::KeepAll);
        let mut engine = ShardedEngine::new(query(10), 4);
        let _ = engine.run_keep_all(&stream);
        let stats = engine.stats();
        assert_eq!(&stats.merged, single.stats());
        assert_eq!(stats.per_shard.len(), 4);
        assert_eq!(stats.per_query.len(), 1);
        assert_eq!(&stats.per_query[0], single.stats());
        let opened: u64 = stats.per_shard.iter().map(|s| s.windows_opened).sum();
        assert_eq!(opened, single.stats().windows_opened);
    }

    /// A deterministic per-(window, position) decider: shard-invariant, so
    /// the sharded run must equal the single-operator run even with drops.
    #[derive(Debug, Clone, Copy)]
    struct DropEveryThird;

    impl WindowEventDecider for DropEveryThird {
        fn decide(&mut self, _meta: &WindowMeta, position: usize, _event: &Event) -> Decision {
            if position % 3 == 2 {
                Decision::Drop
            } else {
                Decision::Keep
            }
        }
    }

    #[test]
    fn engine_matches_single_operator_under_stateless_shedding() {
        let stream = keyed_stream(200);
        let single = Operator::new(query(12)).run(&stream, &mut DropEveryThird);
        let mut engine = ShardedEngine::new(query(12), 4);
        let mut deciders = vec![DropEveryThird; 4];
        let merged = engine.run(&stream, &mut deciders);
        assert_eq!(merged, single);
        assert!(engine.stats().merged.dropped > 0);
    }

    #[test]
    fn reset_makes_runs_repeatable() {
        let stream = keyed_stream(100);
        let mut engine = ShardedEngine::new(query(8), 3);
        let first = engine.run_keep_all(&stream);
        let first_stats = engine.stats();
        engine.reset();
        let second = engine.run_keep_all(&stream);
        assert_eq!(first, second);
        assert_eq!(first_stats, engine.stats());
    }

    #[test]
    fn streaming_source_run_equals_slice_run_even_with_tiny_queues() {
        let stream = keyed_stream(300);
        let single = Operator::new(query(12)).run(&stream, &mut crate::KeepAll);
        for (shards, capacity) in [(1usize, 1usize), (2, 2), (4, 7), (3, 1024)] {
            let mut engine = ShardedEngine::new(query(12), shards);
            engine.set_queue_capacity(capacity);
            let mut source = espice_events::SliceSource::from_stream(&stream);
            let mut deciders = vec![crate::KeepAll; shards];
            let merged = engine.run_source(&mut source, &mut deciders);
            assert_eq!(merged, single, "{shards} shards at capacity {capacity} diverged");
            let stats = engine.queue_stats();
            assert_eq!(stats.len(), shards);
            for queue in stats {
                assert_eq!(queue.capacity, capacity);
                assert_eq!(queue.pushed, stream.len() as u64);
                assert!(queue.peak_depth <= capacity);
            }
        }
    }

    #[test]
    fn streaming_run_reports_engine_stats_like_the_slice_path() {
        let stream = keyed_stream(200);
        let mut single = Operator::new(query(10));
        let _ = single.run(&stream, &mut crate::KeepAll);
        let mut engine = ShardedEngine::new(query(10), 2);
        engine.set_queue_capacity(8);
        let mut source = espice_events::SliceSource::from_stream(&stream);
        let _ = engine.run_source(&mut source, &mut [crate::KeepAll; 2]);
        assert_eq!(&engine.stats().merged, single.stats());
    }

    #[test]
    fn multi_query_engine_equals_independent_engines_per_query() {
        let stream = keyed_stream(260);
        let set = QuerySet::new(vec![query(12), query(7), query(9)]);
        for shards in [1usize, 2, 4] {
            let mut fused = ShardedEngine::for_queries(set.clone(), shards);
            let mut deciders = vec![crate::KeepAll; shards * set.len()];
            let per_query = fused.run_per_query(&stream, &mut deciders);
            assert_eq!(per_query.len(), set.len());
            let stats = fused.stats();
            for (id, q) in set.iter() {
                let mut solo = ShardedEngine::new(q.clone(), shards);
                let expected = solo.run_keep_all(&stream);
                assert_eq!(
                    per_query[id as usize], expected,
                    "query {id} diverged at {shards} shards"
                );
                assert_eq!(
                    stats.per_query[id as usize],
                    solo.stats().merged,
                    "query {id} stats diverged at {shards} shards"
                );
            }
            // The flat compatibility output is the per-query concatenation.
            fused.reset();
            let mut deciders = vec![crate::KeepAll; shards * set.len()];
            let flat = fused.run(&stream, &mut deciders);
            assert_eq!(flat.len(), stats.merged.complex_events as usize);
        }
    }

    #[test]
    fn multi_query_streaming_equals_multi_query_slice() {
        let stream = keyed_stream(300);
        let set = QuerySet::new(vec![query(12), query(5)]);
        for (shards, capacity) in [(1usize, 1usize), (2, 4), (3, 1024)] {
            let mut slice_engine = ShardedEngine::for_queries(set.clone(), shards);
            let mut slice_deciders = vec![crate::KeepAll; shards * set.len()];
            let expected = slice_engine.run_slice_per_query(&stream, &mut slice_deciders);

            let mut engine = ShardedEngine::for_queries(set.clone(), shards);
            engine.set_queue_capacity(capacity);
            let mut source = espice_events::SliceSource::from_stream(&stream);
            let mut deciders = vec![crate::KeepAll; shards * set.len()];
            let streamed = engine.run_source_per_query(&mut source, &mut deciders);
            assert_eq!(streamed, expected, "{shards} shards at capacity {capacity} diverged");
            assert_eq!(engine.stats(), slice_engine.stats());
            // One queue per shard, each carrying every event once —
            // independent engines would have paid the hand-off per query.
            for queue in engine.queue_stats() {
                assert_eq!(queue.pushed, stream.len() as u64);
            }
        }
    }

    #[test]
    fn admission_mid_stream_equals_fresh_engine_over_the_suffix() {
        let stream = keyed_stream(300);
        let admit_at = 117u64;
        let suffix = VecStream::from_ordered(stream.events()[admit_at as usize..].to_vec());
        for shards in [1usize, 2, 4] {
            let mut engine = ShardedEngine::new(query(12), shards);
            let control = engine.control();
            let handle = control.admit_at(admit_at, query(9), boxed_keepers(shards));
            assert_eq!(handle.slot, 1);

            let mut source = espice_events::SliceSource::from_stream(&stream);
            let outcome = engine.run_source_live(&mut source, boxed_keepers(shards));
            assert_eq!(outcome.lifecycle.admitted, vec![(handle, admit_at)]);
            assert_eq!(outcome.complex_events.len(), 2);
            assert!(engine.is_live(1));
            assert_eq!(engine.query_handle(1), Some(handle));

            let mut fresh = ShardedEngine::new(query(9), shards);
            let expected = fresh.run_keep_all(&suffix);
            assert_eq!(
                outcome.complex_events[1], expected,
                "admitted query diverged from a fresh engine at {shards} shards"
            );
            assert_eq!(engine.stats().per_query[1], fresh.stats().merged);

            // The original query is untouched.
            let mut solo = ShardedEngine::new(query(12), shards);
            assert_eq!(outcome.complex_events[0], solo.run_keep_all(&stream));
        }
    }

    #[test]
    fn retirement_mid_stream_drains_and_leaves_survivors_untouched() {
        let stream = keyed_stream(300);
        let set = QuerySet::new(vec![query(12), query(7)]);
        for shards in [1usize, 2, 4] {
            let mut engine = ShardedEngine::for_queries(set.clone(), shards);
            let control = engine.control();
            let handle = engine.query_handle(0).expect("slot 0 is live");
            control.retire_at(40, handle);

            let outcome = engine.run_slice_live(&stream, boxed_keepers(shards * 2));
            assert_eq!(outcome.lifecycle.retired, vec![(handle, 40)]);
            assert!(!engine.is_live(0));
            assert_eq!(engine.query_handle(0), None);
            assert_eq!(engine.live_query_count(), 1);
            // The retired slot's deciders are torn down on every shard.
            for row in &outcome.deciders {
                assert!(row[0].is_none());
                assert!(row[1].is_some());
            }

            // The survivor is byte-identical to running alone.
            let mut solo = ShardedEngine::new(query(7), shards);
            assert_eq!(outcome.complex_events[1], solo.run_keep_all(&stream));
            assert_eq!(engine.stats().per_query[1], solo.stats().merged);

            // The retired query emitted a prefix of its static output: all
            // windows opened before position 40, drained to completion.
            let mut full = ShardedEngine::new(query(12), shards);
            let full_output = full.run_keep_all(&stream);
            let retired = &outcome.complex_events[0];
            assert!(retired.len() < full_output.len());
            assert_eq!(retired.as_slice(), &full_output[..retired.len()]);
        }
    }

    #[test]
    fn out_of_order_admission_anchors_are_clamped_not_panicked() {
        // Slots are allocated in send order; a later admission anchored
        // *earlier* is clamped up to the previous admission's anchor, and
        // a retire anchored before its own admission applies at the
        // admission ("admitted and immediately retired"), never as a
        // silent rejection.
        let stream = keyed_stream(300);
        let mut engine = ShardedEngine::new(query(12), 2);
        let control = engine.control();
        let first = control.admit_at(200, query(9), boxed_keepers(2));
        let second = control.admit_at(50, query(7), boxed_keepers(2)); // clamped to 200
        control.retire_at(10, second); // clamped to second's admission

        let outcome = engine.run_slice_live(&stream, boxed_keepers(2));
        assert_eq!(outcome.lifecycle.rejected, 0);
        assert_eq!(outcome.lifecycle.admitted, vec![(first, 200), (second, 200)]);
        assert_eq!(outcome.lifecycle.retired, vec![(second, 200)]);
        // The clamped admission behaves like a fresh engine at 200.
        let suffix = VecStream::from_ordered(stream.events()[200..].to_vec());
        let mut fresh = ShardedEngine::new(query(9), 2);
        assert_eq!(outcome.complex_events[1], fresh.run_keep_all(&suffix));
        // Admitted-and-immediately-retired: no windows, empty output,
        // decider torn down.
        assert!(outcome.complex_events[2].is_empty());
        assert!(!engine.is_live(2));
    }

    #[test]
    fn shard_event_counts_survive_full_retirement() {
        // Retire the only query early: its slot counters freeze once its
        // windows drained, but the shards keep draining the stream — the
        // per-shard events_processed must count every event, as before
        // lifecycle existed.
        let stream = keyed_stream(300);
        let mut engine = ShardedEngine::new(query(8), 2);
        let control = engine.control();
        control.retire_at(10, engine.query_handle(0).expect("live"));
        let _ = engine.run_slice_live(&stream, boxed_keepers(2));
        let stats = engine.stats();
        assert!(stats.per_query[0].events_processed < 300, "slot counters freeze at teardown");
        for shard in &stats.per_shard {
            assert_eq!(shard.events_processed, 300, "shards keep counting after teardown");
        }
    }

    #[test]
    fn stale_retire_handles_are_rejected() {
        let stream = keyed_stream(120);
        let mut engine = ShardedEngine::new(query(8), 2);
        let control = engine.control();
        let handle = engine.query_handle(0).expect("live");
        control.retire_at(10, handle);
        control.retire_at(20, handle); // second retire of the same handle
        let forged = QueryHandle { slot: 0, generation: 999 };
        control.retire(forged);
        let outcome = engine.run_slice_live(&stream, boxed_keepers(2));
        assert_eq!(outcome.lifecycle.retired.len(), 1);
        assert_eq!(outcome.lifecycle.rejected, 2);
    }

    #[test]
    fn admissions_after_retirement_get_fresh_slots_and_generations() {
        let stream = keyed_stream(200);
        let mut engine = ShardedEngine::new(query(12), 1);
        let control = engine.control();
        let first = engine.query_handle(0).expect("live");
        control.retire_at(50, first);
        // Re-admit an identical query: fresh slot, fresh generation.
        let readmitted = control.admit_at(100, query(12), boxed_keepers(1));
        assert_ne!(readmitted.slot, first.slot);
        assert_ne!(readmitted.generation, first.generation);

        let outcome = engine.run_slice_live(&stream, boxed_keepers(1));
        assert_eq!(outcome.lifecycle.admitted.len(), 1);
        assert_eq!(outcome.lifecycle.retired.len(), 1);
        assert_eq!(engine.query_count(), 2);
        assert_eq!(engine.live_query_count(), 1);

        let suffix = VecStream::from_ordered(stream.events()[100..].to_vec());
        let mut fresh = ShardedEngine::new(query(12), 1);
        assert_eq!(outcome.complex_events[1], fresh.run_keep_all(&suffix));
    }

    #[test]
    fn reset_revives_retired_slots() {
        let stream = keyed_stream(150);
        let mut engine = ShardedEngine::new(query(8), 2);
        let control = engine.control();
        control.retire_at(30, engine.query_handle(0).expect("live"));
        let _ = engine.run_slice_live(&stream, boxed_keepers(2));
        assert_eq!(engine.live_query_count(), 0);

        engine.reset();
        assert_eq!(engine.live_query_count(), 1);
        let revived = engine.run_keep_all(&stream);
        let mut solo = ShardedEngine::new(query(8), 2);
        assert_eq!(revived, solo.run_keep_all(&stream));
    }

    #[test]
    fn chunk_capacity_is_output_invariant_across_the_sweep() {
        // The chunk size is a pure hand-off knob: every capacity — the
        // per-event degenerate 1, sizes that leave partial trailing chunks,
        // and sizes larger than the stream — must produce identical output
        // and event-exact queue accounting.
        let stream = keyed_stream(300);
        let single = Operator::new(query(12)).run(&stream, &mut crate::KeepAll);
        for chunk_capacity in [1usize, 2, 7, 64, 512] {
            let mut engine = ShardedEngine::new(query(12), 3);
            engine.set_queue_capacity(4);
            engine.set_chunk_capacity(chunk_capacity);
            let mut source = espice_events::SliceSource::from_stream(&stream);
            let mut deciders = vec![crate::KeepAll; 3];
            let merged = engine.run_source(&mut source, &mut deciders);
            assert_eq!(merged, single, "chunk capacity {chunk_capacity} diverged");
            for queue in engine.queue_stats() {
                assert_eq!(queue.pushed, stream.len() as u64, "pushed counts events");
                assert!(queue.peak_depth <= 4, "peak depth counts hand-off slots");
            }
        }
    }

    #[test]
    fn lifecycle_commands_land_at_exact_positions_for_every_chunk_size() {
        // An admission mid-chunk forces the producer to seal a partial
        // chunk; the admitted query's output must still equal a fresh
        // engine over the exact suffix, for chunk sizes that put the
        // admission at every possible offset within a chunk.
        let stream = keyed_stream(300);
        let admit_at = 117u64;
        let suffix = VecStream::from_ordered(stream.events()[admit_at as usize..].to_vec());
        for chunk_capacity in [1usize, 2, 5, 64, 400] {
            let mut engine = ShardedEngine::new(query(12), 2);
            engine.set_chunk_capacity(chunk_capacity);
            let control = engine.control();
            let handle = control.admit_at(admit_at, query(9), boxed_keepers(2));
            let mut source = espice_events::SliceSource::from_stream(&stream);
            let outcome = engine.run_source_live(&mut source, boxed_keepers(2));
            assert_eq!(outcome.lifecycle.admitted, vec![(handle, admit_at)]);

            let mut fresh = ShardedEngine::new(query(9), 2);
            let expected = fresh.run_keep_all(&suffix);
            assert_eq!(
                outcome.complex_events[1], expected,
                "admission drifted at chunk capacity {chunk_capacity}"
            );
            let mut solo = ShardedEngine::new(query(12), 2);
            assert_eq!(outcome.complex_events[0], solo.run_keep_all(&stream));
        }
    }

    #[test]
    #[should_panic(expected = "queue capacity")]
    fn zero_queue_capacity_rejected() {
        let mut engine = ShardedEngine::new(query(8), 1);
        engine.set_queue_capacity(0);
    }

    #[test]
    #[should_panic(expected = "chunk capacity")]
    fn zero_chunk_capacity_rejected() {
        let mut engine = ShardedEngine::new(query(8), 1);
        engine.set_chunk_capacity(0);
    }

    #[test]
    #[should_panic(expected = "one decider per shard per query")]
    fn mismatched_decider_count_panics() {
        let mut engine = ShardedEngine::new(query(8), 2);
        let mut deciders = vec![crate::KeepAll];
        let _ = engine.run(&keyed_stream(10), &mut deciders);
    }

    #[test]
    #[should_panic(expected = "per shard per live query")]
    fn mismatched_live_decider_count_panics() {
        let mut engine = ShardedEngine::new(query(8), 2);
        let _ = engine.run_slice_live(&keyed_stream(10), boxed_keepers(1));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedEngine::new(query(8), 0);
    }
}

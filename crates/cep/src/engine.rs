//! The sharded, batch-oriented CEP engine.
//!
//! The eSPICE prototype deliberately throttles itself to a single operator
//! thread; this engine is the scale-out counterpart. It hash-partitions the
//! window population by global window id across `N` independent [`Shard`]s —
//! each with its own [`Operator`] and its own [`WindowEventDecider`] instance
//! — and runs them on scoped threads over a shared event slice. Because
//! window-open decisions depend only on the stream, every shard derives the
//! same global window ids without coordination, and the merged output is
//! *identical* (ids, constituents and order included) to a single unsharded
//! operator run for any decider whose decisions are a function of
//! `(window id, position, event, predicted size)` alone. eSPICE's boundary
//! thinning qualifies since its accumulator became keyed per window id, so
//! shedded output is shard-invariant on count-based windows. The one
//! remaining caveat concerns time-based (variable-size) windows: each
//! shard's window-size predictor only observes the windows it owns, so
//! `WindowMeta::predicted_size` can drift between shard counts, and deciders
//! that scale positions by the predicted size (eSPICE on time windows) may
//! pick different events. Count-based windows, whose size is exact, carry no
//! such drift.
//!
//! [`Operator`]: crate::Operator
//! [`WindowEventDecider`]: crate::WindowEventDecider

use crate::{ComplexEvent, KeepAll, OperatorStats, Query, Shard, WindowEventDecider};
use espice_events::EventStream;

/// Engine-level statistics: the per-shard operator counters plus their merged
/// totals.
///
/// `merged.events_processed` counts each stream event **once** (every shard
/// scans the whole stream, so naively summing would multiply the count by the
/// shard count); all other counters are disjoint across shards and sum
/// exactly to what a single unsharded operator would report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Totals across all shards, comparable to a single operator's stats.
    pub merged: OperatorStats,
    /// The individual shard counters, indexed by shard.
    pub per_shard: Vec<OperatorStats>,
}

/// A sharded CEP engine executing one [`Query`] across `N` worker shards.
///
/// # Example
///
/// ```
/// use espice_cep::{ShardedEngine, Operator, Query, Pattern, WindowSpec, KeepAll};
/// use espice_events::{Event, EventType, Timestamp, VecStream};
///
/// let a = EventType::from_index(0);
/// let b = EventType::from_index(1);
/// let query = Query::builder()
///     .pattern(Pattern::sequence([a, b]))
///     .window(WindowSpec::count_on_types(vec![a], 4))
///     .build();
/// let events: Vec<Event> = (0..16)
///     .map(|i| Event::new(if i % 4 == 0 { a } else { b }, Timestamp::from_secs(i), i))
///     .collect();
/// let stream = VecStream::from_ordered(events);
///
/// let mut engine = ShardedEngine::new(query.clone(), 4);
/// let sharded = engine.run_keep_all(&stream);
/// let single = Operator::new(query).run(&stream, &mut KeepAll);
/// assert_eq!(sharded, single);
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Vec<Shard>,
    events_processed: u64,
}

impl ShardedEngine {
    /// Creates an engine running `query` on `shard_count` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero.
    pub fn new(query: Query, shard_count: usize) -> Self {
        assert!(shard_count >= 1, "the engine needs at least one shard");
        let shards =
            (0..shard_count).map(|index| Shard::new(query.clone(), index, shard_count)).collect();
        ShardedEngine { shards, events_processed: 0 }
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The query the engine executes.
    pub fn query(&self) -> &Query {
        self.shards[0].operator().query()
    }

    /// Seeds every shard's window-size prediction, e.g. with the average
    /// window size observed during model training.
    pub fn set_window_size_hint(&mut self, hint: usize) {
        for shard in &mut self.shards {
            shard.set_window_size_hint(hint);
        }
    }

    /// Runs the whole stream through all shards — on scoped threads when
    /// there is more than one — with one decider per shard, and returns the
    /// merged complex events in single-operator emission order.
    ///
    /// Each shard owns a disjoint subset of the windows, so `deciders[i]`
    /// only ever sees the (event, window) pairs of shard `i`'s windows.
    /// Deciders whose decisions depend only on `(window id, position, event,
    /// predicted size)` — [`KeepAll`], the eSPICE shedder with its
    /// per-window-keyed boundary thinning — produce output identical to an
    /// unsharded run on count-based windows. The remaining sources of
    /// divergence: deciders with genuinely cross-window state (e.g. random
    /// sampling) may pick different events, and on time-based windows each
    /// shard's size predictor sees only its own closures, so
    /// `predicted_size`-dependent decisions can drift between shard counts.
    ///
    /// # Panics
    ///
    /// Panics if `deciders.len()` differs from the shard count.
    pub fn run<S, D>(&mut self, stream: &S, deciders: &mut [D]) -> Vec<ComplexEvent>
    where
        S: EventStream + ?Sized,
        D: WindowEventDecider + Send,
    {
        assert_eq!(deciders.len(), self.shards.len(), "need exactly one decider per shard");
        let events = stream.events();
        self.events_processed += events.len() as u64;

        let mut outputs: Vec<Vec<ComplexEvent>> = if self.shards.len() == 1 {
            vec![self.shards[0].run_events(events, &mut deciders[0])]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(deciders.iter_mut())
                    .map(|(shard, decider)| scope.spawn(move || shard.run_events(events, decider)))
                    .collect();
                handles.into_iter().map(|h| h.join().expect("shard thread panicked")).collect()
            })
        };

        // Windows close in id order (each window's matches are emitted
        // contiguously when it closes), so a stable sort by window id
        // restores the exact single-operator emission order.
        let mut merged = Vec::with_capacity(outputs.iter().map(Vec::len).sum());
        for output in &mut outputs {
            merged.append(output);
        }
        merged.sort_by_key(ComplexEvent::window_id);
        merged
    }

    /// [`run`](Self::run) with a keep-everything decider on every shard
    /// (ground-truth runs and throughput benchmarks).
    pub fn run_keep_all<S>(&mut self, stream: &S) -> Vec<ComplexEvent>
    where
        S: EventStream + ?Sized,
    {
        let mut deciders = vec![KeepAll; self.shards.len()];
        self.run(stream, &mut deciders)
    }

    /// Sum of the shards' peak resident entry counts: an upper bound on the
    /// engine's total peak window-storage footprint in events (per-shard
    /// peaks need not coincide in time).
    pub fn peak_resident_entries(&self) -> usize {
        self.shards.iter().map(Shard::peak_resident_entries).sum()
    }

    /// Engine statistics: per-shard counters plus merged totals.
    pub fn stats(&self) -> EngineStats {
        let per_shard: Vec<OperatorStats> = self.shards.iter().map(|s| s.stats().clone()).collect();
        let mut merged = OperatorStats::default();
        for stats in &per_shard {
            merged.merge(stats);
        }
        merged.events_processed = self.events_processed;
        EngineStats { merged, per_shard }
    }

    /// Resets all shards (open windows, counters) while keeping the query
    /// and shard geometry.
    pub fn reset(&mut self) {
        for shard in &mut self.shards {
            shard.reset();
        }
        self.events_processed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Decision, Operator, Pattern, WindowMeta, WindowSpec};
    use espice_events::{Event, EventType, Timestamp, VecStream};

    fn ty(i: u32) -> EventType {
        EventType::from_index(i)
    }

    fn keyed_stream(len: u64) -> VecStream {
        VecStream::from_ordered(
            (0..len).map(|i| Event::new(ty((i % 5) as u32), Timestamp::from_secs(i), i)).collect(),
        )
    }

    fn query(window: usize) -> Query {
        Query::builder()
            .pattern(Pattern::sequence([ty(0), ty(1), ty(2)]))
            .window(WindowSpec::count_on_types(vec![ty(0)], window))
            .build()
    }

    #[test]
    fn engine_output_matches_single_operator_for_all_shard_counts() {
        let stream = keyed_stream(200);
        let single = Operator::new(query(12)).run(&stream, &mut crate::KeepAll);
        assert!(!single.is_empty());
        for shards in [1, 2, 3, 4, 7] {
            let mut engine = ShardedEngine::new(query(12), shards);
            let merged = engine.run_keep_all(&stream);
            assert_eq!(merged, single, "shard count {shards} diverged");
        }
    }

    #[test]
    fn engine_stats_merge_to_single_operator_totals() {
        let stream = keyed_stream(150);
        let mut single = Operator::new(query(10));
        let _ = single.run(&stream, &mut crate::KeepAll);
        let mut engine = ShardedEngine::new(query(10), 4);
        let _ = engine.run_keep_all(&stream);
        let stats = engine.stats();
        assert_eq!(&stats.merged, single.stats());
        assert_eq!(stats.per_shard.len(), 4);
        let opened: u64 = stats.per_shard.iter().map(|s| s.windows_opened).sum();
        assert_eq!(opened, single.stats().windows_opened);
    }

    /// A deterministic per-(window, position) decider: shard-invariant, so
    /// the sharded run must equal the single-operator run even with drops.
    #[derive(Debug, Clone, Copy)]
    struct DropEveryThird;

    impl WindowEventDecider for DropEveryThird {
        fn decide(&mut self, _meta: &WindowMeta, position: usize, _event: &Event) -> Decision {
            if position % 3 == 2 {
                Decision::Drop
            } else {
                Decision::Keep
            }
        }
    }

    #[test]
    fn engine_matches_single_operator_under_stateless_shedding() {
        let stream = keyed_stream(200);
        let single = Operator::new(query(12)).run(&stream, &mut DropEveryThird);
        let mut engine = ShardedEngine::new(query(12), 4);
        let mut deciders = vec![DropEveryThird; 4];
        let merged = engine.run(&stream, &mut deciders);
        assert_eq!(merged, single);
        assert!(engine.stats().merged.dropped > 0);
    }

    #[test]
    fn reset_makes_runs_repeatable() {
        let stream = keyed_stream(100);
        let mut engine = ShardedEngine::new(query(8), 3);
        let first = engine.run_keep_all(&stream);
        let first_stats = engine.stats();
        engine.reset();
        let second = engine.run_keep_all(&stream);
        assert_eq!(first, second);
        assert_eq!(first_stats, engine.stats());
    }

    #[test]
    #[should_panic(expected = "one decider per shard")]
    fn mismatched_decider_count_panics() {
        let mut engine = ShardedEngine::new(query(8), 2);
        let mut deciders = vec![crate::KeepAll];
        let _ = engine.run(&keyed_stream(10), &mut deciders);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedEngine::new(query(8), 0);
    }
}

//! The sharded, stream-driven CEP engine.
//!
//! The eSPICE prototype deliberately throttles itself to a single operator
//! thread; this engine is the scale-out counterpart. It hash-partitions the
//! window population by global window id across `N` independent [`Shard`]s —
//! each with its own [`Operator`] and its own [`WindowEventDecider`] instance
//! — fed through **bounded per-shard SPSC queues**: the producer thread
//! pulls events incrementally from an [`EventSource`] and broadcasts each
//! one to every shard's queue, blocking while a queue is full
//! (backpressure), while each shard's scoped thread drains its own queue.
//! Shards therefore start before the stream is fully buffered, and the
//! *measured* queue depth and drain rate are reported back to the deciders
//! (see [`ShardedEngine::set_check_interval`]) — the hook eSPICE's
//! closed-loop overload detection attaches to. [`ShardedEngine::run`]
//! remains as the slice-compatible wrapper over the same pipeline.
//!
//! Because window-open decisions depend only on the stream, every shard
//! derives the same global window ids without coordination, and the merged
//! output is *identical* (ids, constituents and order included) to a single
//! unsharded operator run — regardless of shard count, queue capacity or
//! thread timing — for any decider whose decisions are a function of
//! `(window id, position, event)`; on count-based windows, whose size is
//! exact, `predicted size` joins that list, which covers eSPICE (its
//! boundary-thinning accumulator is keyed per window id), so shedded
//! output is shard-invariant there. The exception is `predicted size` on
//! time-based (variable-size) windows: the engine's shards share one
//! [`SharedSizePredictor`] — an engine-wide running mean, so predictions
//! no longer drift with the shard count, but they deliberately differ from
//! the *local EWMA* a standalone [`Operator`] keeps (and their mid-run
//! values can vary with thread timing). Deciders that scale positions by
//! the predicted size (eSPICE on time windows) therefore match the
//! engine's own runs across shard counts, not a standalone operator's.
//!
//! [`Operator`]: crate::Operator
//! [`WindowEventDecider`]: crate::WindowEventDecider
//! [`EventSource`]: espice_events::EventSource
//! [`SharedSizePredictor`]: crate::SharedSizePredictor

use crate::queue::{spsc, QueueStats};
use crate::window::SharedSizePredictor;
use crate::{ComplexEvent, KeepAll, OperatorStats, Query, Shard, WindowEventDecider};
use espice_events::{EventSource, EventStream, SliceSource};
use std::sync::Arc;
use std::time::Duration;

/// Default capacity of each shard's bounded input queue: large enough to
/// amortise producer/consumer hand-off, small enough that backpressure
/// engages well before memory matters.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// Engine-level statistics: the per-shard operator counters plus their merged
/// totals.
///
/// `merged.events_processed` counts each stream event **once** (every shard
/// scans the whole stream, so naively summing would multiply the count by the
/// shard count); all other counters are disjoint across shards and sum
/// exactly to what a single unsharded operator would report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Totals across all shards, comparable to a single operator's stats.
    pub merged: OperatorStats,
    /// The individual shard counters, indexed by shard.
    pub per_shard: Vec<OperatorStats>,
}

/// A sharded CEP engine executing one [`Query`] across `N` worker shards.
///
/// # Example
///
/// ```
/// use espice_cep::{ShardedEngine, Operator, Query, Pattern, WindowSpec, KeepAll};
/// use espice_events::{Event, EventType, Timestamp, VecStream};
///
/// let a = EventType::from_index(0);
/// let b = EventType::from_index(1);
/// let query = Query::builder()
///     .pattern(Pattern::sequence([a, b]))
///     .window(WindowSpec::count_on_types(vec![a], 4))
///     .build();
/// let events: Vec<Event> = (0..16)
///     .map(|i| Event::new(if i % 4 == 0 { a } else { b }, Timestamp::from_secs(i), i))
///     .collect();
/// let stream = VecStream::from_ordered(events);
///
/// let mut engine = ShardedEngine::new(query.clone(), 4);
/// let sharded = engine.run_keep_all(&stream);
/// let single = Operator::new(query).run(&stream, &mut KeepAll);
/// assert_eq!(sharded, single);
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Vec<Shard>,
    events_processed: u64,
    /// Capacity of each shard's bounded input queue on the streaming path.
    queue_capacity: usize,
    /// Cadence at which drain loops report [`QueueSample`]s to their
    /// deciders; `None` (the default) disables sampling entirely so
    /// slice-style runs pay no clock reads.
    ///
    /// [`QueueSample`]: crate::QueueSample
    check_interval: Option<Duration>,
    /// Queue counters of the most recent streaming run, one per shard.
    queue_stats: Vec<QueueStats>,
    /// Window-size prediction shared by every shard (no drift with the
    /// shard count on time-based windows).
    size_predictor: Arc<SharedSizePredictor>,
}

impl ShardedEngine {
    /// Creates an engine running `query` on `shard_count` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero.
    pub fn new(query: Query, shard_count: usize) -> Self {
        assert!(shard_count >= 1, "the engine needs at least one shard");
        let initial_size = query.window().expected_size().unwrap_or(100).max(1);
        let size_predictor = Arc::new(SharedSizePredictor::new(initial_size));
        let shards = (0..shard_count)
            .map(|index| {
                let mut shard = Shard::new(query.clone(), index, shard_count);
                shard.share_size_predictor(Arc::clone(&size_predictor));
                shard
            })
            .collect();
        ShardedEngine {
            shards,
            events_processed: 0,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            check_interval: None,
            queue_stats: Vec::new(),
            size_predictor,
        }
    }

    /// Sets the capacity of every shard's bounded input queue for
    /// subsequent streaming runs. Smaller capacities backpressure the
    /// producer earlier; the default is [`DEFAULT_QUEUE_CAPACITY`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn set_queue_capacity(&mut self, capacity: usize) {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        self.queue_capacity = capacity;
    }

    /// The configured per-shard queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Enables (or disables, with `None`) periodic queue sampling: every
    /// `interval` of wall time each drain loop hands its decider a measured
    /// [`QueueSample`] via [`WindowEventDecider::queue_sample`]. This is
    /// the hook closed-loop overload detection attaches to.
    ///
    /// [`QueueSample`]: crate::QueueSample
    pub fn set_check_interval(&mut self, interval: Option<Duration>) {
        assert!(interval != Some(Duration::ZERO), "check interval must be positive");
        self.check_interval = interval;
    }

    /// Queue counters of the most recent streaming run (empty before the
    /// first run), indexed by shard.
    pub fn queue_stats(&self) -> &[QueueStats] {
        &self.queue_stats
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The query the engine executes.
    pub fn query(&self) -> &Query {
        self.shards[0].operator().query()
    }

    /// Seeds the engine-wide window-size prediction, e.g. with the average
    /// window size observed during model training.
    pub fn set_window_size_hint(&mut self, hint: usize) {
        for shard in &mut self.shards {
            shard.set_window_size_hint(hint);
        }
    }

    /// The window-size predictor shared by all shards (relevant for
    /// time-based, variable-size windows).
    pub fn shared_size_predictor(&self) -> &SharedSizePredictor {
        &self.size_predictor
    }

    /// Runs a materialised stream through the engine: the slice-compatible
    /// wrapper over [`run_source`](Self::run_source). Existing callers and
    /// benches keep compiling, but the execution underneath is the
    /// streaming pipeline — a producer fan-out over bounded per-shard
    /// queues — not a shared-slice scan. The hand-off costs one clone +
    /// queue push/pop per event per shard; batch callers that only ever
    /// process fully materialised streams and want the zero-copy scan
    /// should call [`run_slice`](Self::run_slice) instead.
    ///
    /// # Panics
    ///
    /// Panics if `deciders.len()` differs from the shard count.
    pub fn run<S, D>(&mut self, stream: &S, deciders: &mut [D]) -> Vec<ComplexEvent>
    where
        S: EventStream + ?Sized,
        D: WindowEventDecider + Send,
    {
        let mut source = SliceSource::new(stream.events());
        self.run_source(&mut source, deciders)
    }

    /// Runs a materialised stream through all shards as a *shared-slice
    /// scan*: no queues, no producer thread — every shard (on its own
    /// scoped thread when there is more than one) iterates the slice
    /// directly. This is the batch path: it avoids the streaming pipeline's
    /// per-event hand-off for workloads that are fully materialised anyway,
    /// and serves as the oracle the streaming path is property-tested
    /// against. Output and statistics are identical to
    /// [`run_source`](Self::run_source) for deciders whose decisions are a
    /// function of `(window id, position, event)` — plus `predicted size`
    /// on count-based windows, where the prediction is exact.
    ///
    /// # Panics
    ///
    /// Panics if `deciders.len()` differs from the shard count.
    pub fn run_slice<S, D>(&mut self, stream: &S, deciders: &mut [D]) -> Vec<ComplexEvent>
    where
        S: EventStream + ?Sized,
        D: WindowEventDecider + Send,
    {
        assert_eq!(deciders.len(), self.shards.len(), "need exactly one decider per shard");
        let events = stream.events();
        self.events_processed += events.len() as u64;

        let mut outputs: Vec<Vec<ComplexEvent>> = if self.shards.len() == 1 {
            vec![self.shards[0].run_events(events, &mut deciders[0])]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(deciders.iter_mut())
                    .map(|(shard, decider)| scope.spawn(move || shard.run_events(events, decider)))
                    .collect();
                handles.into_iter().map(|h| h.join().expect("shard thread panicked")).collect()
            })
        };

        merge_outputs(&mut outputs)
    }

    /// Streams events from `source` through all shards, with one decider
    /// per shard, and returns the merged complex events in single-operator
    /// emission order.
    ///
    /// Every shard owns a bounded SPSC input queue drained by its own
    /// scoped thread; the calling thread acts as the producer, pulling one
    /// event at a time from the source and broadcasting it to every shard's
    /// queue (each shard derives the same global window ids from the full
    /// stream, so no coordination is needed). A full queue blocks the
    /// producer — bounded-queue backpressure instead of unbounded
    /// buffering — and shards start processing before the stream has been
    /// fully produced. The measured per-queue state can be fed back to the
    /// deciders via [`set_check_interval`](Self::set_check_interval).
    ///
    /// Each shard owns a disjoint subset of the windows, so `deciders[i]`
    /// only ever sees the (event, window) pairs of shard `i`'s windows.
    /// Deciders whose decisions depend only on `(window id, position, event,
    /// predicted size)` — [`KeepAll`], the eSPICE shedder with its
    /// per-window-keyed boundary thinning — produce output identical to an
    /// unsharded slice run on count-based windows, for every queue capacity.
    /// Deciders with genuinely cross-window state (e.g. random sampling)
    /// may pick different events; on time-based windows the shards share
    /// one size predictor, so `predicted_size` no longer drifts with the
    /// shard count, but its mid-run values can vary with thread timing.
    ///
    /// # Panics
    ///
    /// Panics if `deciders.len()` differs from the shard count.
    pub fn run_source<Src, D>(&mut self, source: &mut Src, deciders: &mut [D]) -> Vec<ComplexEvent>
    where
        Src: EventSource + ?Sized,
        D: WindowEventDecider + Send,
    {
        assert_eq!(deciders.len(), self.shards.len(), "need exactly one decider per shard");
        let capacity = self.queue_capacity;
        let check_interval = self.check_interval;

        let mut produced = 0u64;
        let (outputs, queue_stats) = std::thread::scope(|scope| {
            let mut producers = Vec::with_capacity(self.shards.len());
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(deciders.iter_mut())
                .map(|(shard, decider)| {
                    let (producer, consumer) = spsc(capacity);
                    producers.push(producer);
                    scope.spawn(move || shard.run_queue(consumer, decider, check_interval))
                })
                .collect();

            // Producer fan-out: broadcast each event to every shard queue,
            // blocking (per queue) while it is full. The last shard takes
            // the event by move; the others get clones.
            'produce: while let Some(event) = source.next_event() {
                produced += 1;
                let (last, rest) = producers.split_last_mut().expect("at least one shard");
                for producer in rest {
                    if !producer.push_blocking(event.clone()) {
                        break 'produce; // a drain thread died; join reports it
                    }
                }
                if !last.push_blocking(event) {
                    break 'produce;
                }
            }
            for producer in &mut producers {
                producer.close();
            }

            let outputs: Vec<Vec<ComplexEvent>> =
                handles.into_iter().map(|h| h.join().expect("shard thread panicked")).collect();
            let queue_stats: Vec<QueueStats> = producers.iter().map(|p| p.stats()).collect();
            (outputs, queue_stats)
        });
        self.events_processed += produced;
        self.queue_stats = queue_stats;

        let mut outputs = outputs;
        merge_outputs(&mut outputs)
    }

    /// [`run`](Self::run) with a keep-everything decider on every shard
    /// (ground-truth runs and throughput benchmarks).
    pub fn run_keep_all<S>(&mut self, stream: &S) -> Vec<ComplexEvent>
    where
        S: EventStream + ?Sized,
    {
        let mut deciders = vec![KeepAll; self.shards.len()];
        self.run(stream, &mut deciders)
    }

    /// Sum of the shards' peak resident entry counts: an upper bound on the
    /// engine's total peak window-storage footprint in events (per-shard
    /// peaks need not coincide in time).
    pub fn peak_resident_entries(&self) -> usize {
        self.shards.iter().map(Shard::peak_resident_entries).sum()
    }

    /// Engine statistics: per-shard counters plus merged totals.
    pub fn stats(&self) -> EngineStats {
        let per_shard: Vec<OperatorStats> = self.shards.iter().map(|s| s.stats().clone()).collect();
        let mut merged = OperatorStats::default();
        for stats in &per_shard {
            merged.merge(stats);
        }
        merged.events_processed = self.events_processed;
        EngineStats { merged, per_shard }
    }

    /// Resets all shards (open windows, counters) while keeping the query
    /// and shard geometry.
    pub fn reset(&mut self) {
        for shard in &mut self.shards {
            shard.reset();
        }
        self.events_processed = 0;
        self.queue_stats.clear();
    }
}

/// Merges the per-shard outputs into single-operator emission order.
/// Windows close in id order (each window's matches are emitted contiguously
/// when it closes), so a stable sort by window id restores the exact
/// single-operator order. Shared by the slice and streaming paths so the
/// merge invariant cannot diverge between them.
fn merge_outputs(outputs: &mut [Vec<ComplexEvent>]) -> Vec<ComplexEvent> {
    let mut merged = Vec::with_capacity(outputs.iter().map(Vec::len).sum());
    for output in outputs {
        merged.append(output);
    }
    merged.sort_by_key(ComplexEvent::window_id);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Decision, Operator, Pattern, WindowMeta, WindowSpec};
    use espice_events::{Event, EventType, Timestamp, VecStream};

    fn ty(i: u32) -> EventType {
        EventType::from_index(i)
    }

    fn keyed_stream(len: u64) -> VecStream {
        VecStream::from_ordered(
            (0..len).map(|i| Event::new(ty((i % 5) as u32), Timestamp::from_secs(i), i)).collect(),
        )
    }

    fn query(window: usize) -> Query {
        Query::builder()
            .pattern(Pattern::sequence([ty(0), ty(1), ty(2)]))
            .window(WindowSpec::count_on_types(vec![ty(0)], window))
            .build()
    }

    #[test]
    fn engine_output_matches_single_operator_for_all_shard_counts() {
        let stream = keyed_stream(200);
        let single = Operator::new(query(12)).run(&stream, &mut crate::KeepAll);
        assert!(!single.is_empty());
        for shards in [1, 2, 3, 4, 7] {
            let mut engine = ShardedEngine::new(query(12), shards);
            let merged = engine.run_keep_all(&stream);
            assert_eq!(merged, single, "shard count {shards} diverged");
        }
    }

    #[test]
    fn engine_stats_merge_to_single_operator_totals() {
        let stream = keyed_stream(150);
        let mut single = Operator::new(query(10));
        let _ = single.run(&stream, &mut crate::KeepAll);
        let mut engine = ShardedEngine::new(query(10), 4);
        let _ = engine.run_keep_all(&stream);
        let stats = engine.stats();
        assert_eq!(&stats.merged, single.stats());
        assert_eq!(stats.per_shard.len(), 4);
        let opened: u64 = stats.per_shard.iter().map(|s| s.windows_opened).sum();
        assert_eq!(opened, single.stats().windows_opened);
    }

    /// A deterministic per-(window, position) decider: shard-invariant, so
    /// the sharded run must equal the single-operator run even with drops.
    #[derive(Debug, Clone, Copy)]
    struct DropEveryThird;

    impl WindowEventDecider for DropEveryThird {
        fn decide(&mut self, _meta: &WindowMeta, position: usize, _event: &Event) -> Decision {
            if position % 3 == 2 {
                Decision::Drop
            } else {
                Decision::Keep
            }
        }
    }

    #[test]
    fn engine_matches_single_operator_under_stateless_shedding() {
        let stream = keyed_stream(200);
        let single = Operator::new(query(12)).run(&stream, &mut DropEveryThird);
        let mut engine = ShardedEngine::new(query(12), 4);
        let mut deciders = vec![DropEveryThird; 4];
        let merged = engine.run(&stream, &mut deciders);
        assert_eq!(merged, single);
        assert!(engine.stats().merged.dropped > 0);
    }

    #[test]
    fn reset_makes_runs_repeatable() {
        let stream = keyed_stream(100);
        let mut engine = ShardedEngine::new(query(8), 3);
        let first = engine.run_keep_all(&stream);
        let first_stats = engine.stats();
        engine.reset();
        let second = engine.run_keep_all(&stream);
        assert_eq!(first, second);
        assert_eq!(first_stats, engine.stats());
    }

    #[test]
    fn streaming_source_run_equals_slice_run_even_with_tiny_queues() {
        let stream = keyed_stream(300);
        let single = Operator::new(query(12)).run(&stream, &mut crate::KeepAll);
        for (shards, capacity) in [(1usize, 1usize), (2, 2), (4, 7), (3, 1024)] {
            let mut engine = ShardedEngine::new(query(12), shards);
            engine.set_queue_capacity(capacity);
            let mut source = espice_events::SliceSource::from_stream(&stream);
            let mut deciders = vec![crate::KeepAll; shards];
            let merged = engine.run_source(&mut source, &mut deciders);
            assert_eq!(merged, single, "{shards} shards at capacity {capacity} diverged");
            let stats = engine.queue_stats();
            assert_eq!(stats.len(), shards);
            for queue in stats {
                assert_eq!(queue.capacity, capacity);
                assert_eq!(queue.pushed, stream.len() as u64);
                assert!(queue.peak_depth <= capacity);
            }
        }
    }

    #[test]
    fn streaming_run_reports_engine_stats_like_the_slice_path() {
        let stream = keyed_stream(200);
        let mut single = Operator::new(query(10));
        let _ = single.run(&stream, &mut crate::KeepAll);
        let mut engine = ShardedEngine::new(query(10), 2);
        engine.set_queue_capacity(8);
        let mut source = espice_events::SliceSource::from_stream(&stream);
        let _ = engine.run_source(&mut source, &mut [crate::KeepAll; 2]);
        assert_eq!(&engine.stats().merged, single.stats());
    }

    #[test]
    #[should_panic(expected = "queue capacity")]
    fn zero_queue_capacity_rejected() {
        let mut engine = ShardedEngine::new(query(8), 1);
        engine.set_queue_capacity(0);
    }

    #[test]
    #[should_panic(expected = "one decider per shard")]
    fn mismatched_decider_count_panics() {
        let mut engine = ShardedEngine::new(query(8), 2);
        let mut deciders = vec![crate::KeepAll];
        let _ = engine.run(&keyed_stream(10), &mut deciders);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedEngine::new(query(8), 0);
    }
}

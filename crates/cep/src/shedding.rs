//! The load-shedding hook of the operator.
//!
//! The paper's load shedder sits between the windowing stage and the
//! operator's processing function (Figure 1): for every primitive event and
//! every window it belongs to, the shedder decides whether to keep the event
//! *in that window*. Dropping an event from one window does not affect other
//! windows that contain the same event.
//!
//! This module defines the trait the operator calls for each decision and a
//! trivial implementation that keeps everything (used for ground-truth runs
//! and model training).

use crate::ring::DropSet;
use crate::WindowMeta;
use espice_events::{Event, SimDuration};

/// The outcome of a shedding decision for one (event, window) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decision {
    /// Keep the event in the window.
    Keep,
    /// Drop the event from the window.
    Drop,
}

impl Decision {
    /// Whether this decision keeps the event.
    pub fn is_keep(self) -> bool {
        matches!(self, Decision::Keep)
    }
}

/// One (event, window) assignment within a batched shedding request.
///
/// A batch always concerns a *single* incoming event assigned to several open
/// windows at once, so the event itself is passed separately to
/// [`WindowEventDecider::decide_batch`] and each request only carries the
/// per-window part: the window metadata and the event's arrival position in
/// that window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRequest {
    /// Metadata of the window the event is being assigned to.
    pub meta: WindowMeta,
    /// 0-based arrival position of the event within that window.
    pub position: usize,
}

/// A measured snapshot of one shard's input queue, handed to deciders by
/// the streaming engine's drain loop (see
/// [`ShardedEngine::run_source`](crate::ShardedEngine::run_source)).
///
/// This is how the closed overload loop is wired without the CEP crate
/// knowing about overload detection: the drain loop periodically reports
/// what it *measured* — queue depth, events drained, busy time — and a
/// decider that implements [`WindowEventDecider::queue_sample`] can derive
/// its drain throughput and input rate from the deltas and switch shedding
/// on or off. Deciders that ignore the hook (the default) behave exactly as
/// in a slice-driven run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueSample {
    /// Wall time since the shard's drain loop started.
    pub elapsed: SimDuration,
    /// Cumulative time the drain loop spent processing (i.e. `elapsed`
    /// minus the time spent waiting on an empty queue). The delta between
    /// two samples divided into `drained` is the shard's measured drain
    /// throughput.
    pub busy: SimDuration,
    /// Current depth of the shard's input queue (events pushed but not yet
    /// drained) — the quantity the overload detector compares against
    /// `f · qmax`.
    pub depth: usize,
    /// Events drained since the previous sample.
    pub drained: u64,
    /// (event, window) assignments decided since the previous sample,
    /// summed over every operator the queue serves.
    pub assignments: u64,
    /// Assignments *kept* since the previous sample. `kept / assignments`
    /// is the fraction of the no-shedding work the drain loop actually
    /// performed — what lets an overload controller normalise the drain
    /// rate it measures *during* shedding back to a no-shedding capacity
    /// estimate instead of freezing it.
    pub kept: u64,
    /// The operator's current window-size prediction, needed to partition
    /// windows into dropping intervals. In a multi-query engine each
    /// query's decider receives the sample with its *own* operator's
    /// prediction (queue state is shared; window geometry is not).
    pub predicted_window_size: usize,
}

/// Per-(event, window) shedding decision callback.
///
/// Implementations must be cheap: the operator calls [`decide`] once for every
/// event of every overlapping window ("it must be lightweight since it is
/// performed for every event in a window", paper §3.5).
///
/// `position` is the 0-based arrival index of the event within the window,
/// counting every event assigned to the window regardless of earlier drops,
/// so positions are consistent between shedded runs and the unshedded runs
/// the utility model was trained on.
///
/// [`decide`]: WindowEventDecider::decide
pub trait WindowEventDecider {
    /// Decides whether to keep `event` at `position` of the window described
    /// by `meta`.
    fn decide(&mut self, meta: &WindowMeta, position: usize, event: &Event) -> Decision;

    /// Decides a whole batch of (event, window) assignments for one incoming
    /// `event` at once, writing one decision per request into `decisions`
    /// (cleared first, same order as `requests`).
    ///
    /// The operator calls this instead of [`decide`] on its hot path so
    /// stateful shedders can amortise per-event work (utility-row and
    /// threshold lookups) over all windows the event belongs to. The default
    /// implementation delegates to [`decide`] per request, so existing
    /// deciders keep working unchanged; overrides must produce exactly the
    /// decisions the sequential delegation would, in the same order, because
    /// the two paths are interchangeable. Requests arrive ordered by window
    /// age (oldest open window first, i.e. ascending window id among the
    /// windows this operator materialises).
    ///
    /// [`decide`]: WindowEventDecider::decide
    fn decide_batch(
        &mut self,
        event: &Event,
        requests: &[BatchRequest],
        decisions: &mut Vec<Decision>,
    ) {
        decisions.clear();
        decisions.reserve(requests.len());
        for request in requests {
            decisions.push(self.decide(&request.meta, request.position, event));
        }
    }

    /// Decides a *span* of consecutive assignments to one window: `events`
    /// arrive at positions `start_position ..`, and every dropped position
    /// is appended to `drops` (absolute window positions, in increasing
    /// order). Returns the number of drops appended.
    ///
    /// This is the chunk-granular dual of [`decide_batch`]: where a batch is
    /// one event against many windows, a span is many consecutive events
    /// against one window, which lets compiled shedders walk a
    /// position-indexed verdict table sequentially and emit drops as
    /// monotone runs ([`DropSet::push_run`]). The operator guarantees each
    /// window sees its positions in increasing order across span and
    /// per-event calls alike; the interleaving *between* windows differs
    /// from the per-event path (span calls are window-major), so overrides
    /// must not couple decisions across windows beyond per-window state.
    /// Overrides must produce exactly the drops the sequential delegation
    /// would.
    ///
    /// [`decide_batch`]: WindowEventDecider::decide_batch
    fn decide_span(
        &mut self,
        meta: &WindowMeta,
        start_position: usize,
        events: &[Event],
        drops: &mut DropSet,
    ) -> usize {
        let mut dropped = 0;
        for (offset, event) in events.iter().enumerate() {
            if let Decision::Drop = self.decide(meta, start_position + offset, event) {
                drops.push(start_position + offset);
                dropped += 1;
            }
        }
        dropped
    }

    /// Notifies the decider that a window has closed with `size` events
    /// assigned to it in total. Default: no-op. eSPICE uses this to update
    /// its window-size prediction and training statistics.
    ///
    /// The operator calls this exactly once per materialised window, before
    /// the closing window's events are matched. Deciders that key state on
    /// `meta.id` — such as eSPICE's per-window boundary-thinning
    /// accumulators — must release that state here; the operator guarantees
    /// no further decisions for this window id will follow, so per-window
    /// state stays bounded by the number of concurrently open windows.
    fn window_closed(&mut self, meta: &WindowMeta, size: usize) {
        let _ = (meta, size);
    }

    /// Periodic queue measurement from the streaming engine's drain loop
    /// (every `check_interval`, when sampling is enabled). Default: no-op,
    /// so slice-driven deciders and static shedders are unaffected.
    /// Closed-loop shedders use this to measure overload from the *real*
    /// queue and (de)activate themselves — no precomputed rates involved.
    fn queue_sample(&mut self, sample: &QueueSample) {
        let _ = sample;
    }

    /// The per-window *partial-match* budget, consulted exactly once when
    /// the window described by `meta` opens. Default: `None`, meaning the
    /// operator tracks no partial-match store for the window and behaves
    /// exactly as before this hook existed.
    ///
    /// Returning `Some(budget)` arms pSPICE-style shedding for that window:
    /// the operator tracks the window's open partial matches and, whenever
    /// more than `budget` are live, evicts the one with the lowest
    /// utility-per-remaining-cost; kept events referenced only by evicted
    /// matches are retroactively dropped from the window. The decision is
    /// per *window open*, so a plan change applies to windows opened after
    /// it — already-open windows finish under the budget they started with
    /// (this is what keeps replay-based recovery deterministic).
    fn partial_match_budget(&mut self, meta: &WindowMeta) -> Option<usize> {
        let _ = meta;
        None
    }

    /// The utility contribution of keeping `event` at `position` of the
    /// window described by `meta`, feeding the partial-match store's
    /// utility-per-remaining-cost ordering. Only consulted for windows
    /// whose [`partial_match_budget`] returned `Some`. Default: 0 (every
    /// partial match ties; eviction falls back to dropping the youngest).
    ///
    /// Must be a **pure function** of `(meta, position, event)`: the
    /// per-event and chunked span paths consult it in different
    /// window-interleavings, and byte-identical output across shard counts
    /// and chunk sizes relies on both paths seeing the same utilities.
    ///
    /// [`partial_match_budget`]: WindowEventDecider::partial_match_budget
    fn constituent_utility(&mut self, meta: &WindowMeta, position: usize, event: &Event) -> u8 {
        let _ = (meta, position, event);
        0
    }
}

/// A type-erased, engine-owned decider: one element of the dynamic decider
/// rows the lifecycle run paths ([`ShardedEngine::run_source_live`]) drive.
///
/// Static runs stay monomorphic (`&mut [D]`); the live paths need rows that
/// can grow on admission and shrink on retirement, and whose elements may be
/// *different* shedder types per query — both of which force type erasure.
///
/// [`ShardedEngine::run_source_live`]: crate::ShardedEngine::run_source_live
pub type BoxedDecider = Box<dyn WindowEventDecider + Send>;

/// Blanket implementation for boxed deciders (including boxed trait objects
/// of any subtrait of [`WindowEventDecider`], such as the runtime crate's
/// adaptive shedders), so `Vec<BoxedDecider>` rows plug into every generic
/// run method unchanged.
impl<D: WindowEventDecider + ?Sized> WindowEventDecider for Box<D> {
    fn decide(&mut self, meta: &WindowMeta, position: usize, event: &Event) -> Decision {
        (**self).decide(meta, position, event)
    }

    fn decide_batch(
        &mut self,
        event: &Event,
        requests: &[BatchRequest],
        decisions: &mut Vec<Decision>,
    ) {
        (**self).decide_batch(event, requests, decisions);
    }

    fn decide_span(
        &mut self,
        meta: &WindowMeta,
        start_position: usize,
        events: &[Event],
        drops: &mut DropSet,
    ) -> usize {
        (**self).decide_span(meta, start_position, events, drops)
    }

    fn window_closed(&mut self, meta: &WindowMeta, size: usize) {
        (**self).window_closed(meta, size);
    }

    fn queue_sample(&mut self, sample: &QueueSample) {
        (**self).queue_sample(sample);
    }

    fn partial_match_budget(&mut self, meta: &WindowMeta) -> Option<usize> {
        (**self).partial_match_budget(meta)
    }

    fn constituent_utility(&mut self, meta: &WindowMeta, position: usize, event: &Event) -> u8 {
        (**self).constituent_utility(meta, position, event)
    }
}

/// A decider whose state stays observable after the decider itself has been
/// handed to (and possibly torn down by) a live engine run.
///
/// Boxed rows are *owned* by the run: an admitted query's decider moves into
/// the engine, and a retired query's decider is dropped at teardown. Tests
/// and reporting layers that need the decider's final state (shedder
/// counters, controller statistics) wrap it in a `SharedDecider`, keep a
/// [`clone`](Clone) outside, and read through [`lock`](SharedDecider::lock)
/// after the run — the shared state outlives the engine-owned handle.
pub struct SharedDecider<D> {
    inner: std::sync::Arc<std::sync::Mutex<D>>,
}

impl<D> SharedDecider<D> {
    /// Wraps `decider` in shared, lockable state.
    pub fn new(decider: D) -> Self {
        SharedDecider { inner: std::sync::Arc::new(std::sync::Mutex::new(decider)) }
    }

    /// Locks and returns the wrapped decider.
    ///
    /// A panic on the shard thread that held the lock (e.g. an injected
    /// fault) poisons it mid-decision at worst between two counter
    /// updates; the decider state stays usable for reporting, so the
    /// guard is recovered instead of cascading the panic into the reader.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, D> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<D> Clone for SharedDecider<D> {
    fn clone(&self) -> Self {
        SharedDecider { inner: std::sync::Arc::clone(&self.inner) }
    }
}

impl<D> std::fmt::Debug for SharedDecider<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedDecider").finish_non_exhaustive()
    }
}

impl<D: WindowEventDecider> WindowEventDecider for SharedDecider<D> {
    fn decide(&mut self, meta: &WindowMeta, position: usize, event: &Event) -> Decision {
        self.lock().decide(meta, position, event)
    }

    fn decide_batch(
        &mut self,
        event: &Event,
        requests: &[BatchRequest],
        decisions: &mut Vec<Decision>,
    ) {
        self.lock().decide_batch(event, requests, decisions);
    }

    fn decide_span(
        &mut self,
        meta: &WindowMeta,
        start_position: usize,
        events: &[Event],
        drops: &mut DropSet,
    ) -> usize {
        self.lock().decide_span(meta, start_position, events, drops)
    }

    fn window_closed(&mut self, meta: &WindowMeta, size: usize) {
        self.lock().window_closed(meta, size);
    }

    fn queue_sample(&mut self, sample: &QueueSample) {
        self.lock().queue_sample(sample);
    }

    fn partial_match_budget(&mut self, meta: &WindowMeta) -> Option<usize> {
        self.lock().partial_match_budget(meta)
    }

    fn constituent_utility(&mut self, meta: &WindowMeta, position: usize, event: &Event) -> u8 {
        self.lock().constituent_utility(meta, position, event)
    }
}

/// A decider that keeps every event. Used for ground-truth (no shedding) runs
/// and during model training.
#[derive(Debug, Default, Clone, Copy)]
pub struct KeepAll;

impl WindowEventDecider for KeepAll {
    fn decide(&mut self, _meta: &WindowMeta, _position: usize, _event: &Event) -> Decision {
        Decision::Keep
    }
}

/// Blanket implementation so `&mut D` can be passed where a decider is
/// expected (mirrors the standard library's `io::Read for &mut R`).
impl<D: WindowEventDecider + ?Sized> WindowEventDecider for &mut D {
    fn decide(&mut self, meta: &WindowMeta, position: usize, event: &Event) -> Decision {
        (**self).decide(meta, position, event)
    }

    fn decide_batch(
        &mut self,
        event: &Event,
        requests: &[BatchRequest],
        decisions: &mut Vec<Decision>,
    ) {
        (**self).decide_batch(event, requests, decisions);
    }

    fn decide_span(
        &mut self,
        meta: &WindowMeta,
        start_position: usize,
        events: &[Event],
        drops: &mut DropSet,
    ) -> usize {
        (**self).decide_span(meta, start_position, events, drops)
    }

    fn window_closed(&mut self, meta: &WindowMeta, size: usize) {
        (**self).window_closed(meta, size);
    }

    fn queue_sample(&mut self, sample: &QueueSample) {
        (**self).queue_sample(sample);
    }

    fn partial_match_budget(&mut self, meta: &WindowMeta) -> Option<usize> {
        (**self).partial_match_budget(meta)
    }

    fn constituent_utility(&mut self, meta: &WindowMeta, position: usize, event: &Event) -> u8 {
        (**self).constituent_utility(meta, position, event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espice_events::{EventType, Timestamp};

    fn meta() -> WindowMeta {
        WindowMeta { id: 0, query: 0, opened_at: Timestamp::ZERO, open_seq: 0, predicted_size: 10 }
    }

    #[test]
    fn keep_all_keeps_everything() {
        let mut d = KeepAll;
        let e = Event::new(EventType::from_index(0), Timestamp::ZERO, 0);
        for pos in 0..5 {
            assert_eq!(d.decide(&meta(), pos, &e), Decision::Keep);
        }
    }

    #[test]
    fn decision_is_keep() {
        assert!(Decision::Keep.is_keep());
        assert!(!Decision::Drop.is_keep());
    }

    /// A decider that drops every odd position; used to check the default
    /// batch implementation delegates per request in order.
    #[derive(Debug)]
    struct DropOdd;

    impl WindowEventDecider for DropOdd {
        fn decide(&mut self, _meta: &WindowMeta, position: usize, _event: &Event) -> Decision {
            if position % 2 == 1 {
                Decision::Drop
            } else {
                Decision::Keep
            }
        }
    }

    #[test]
    fn decide_batch_default_delegates_per_request() {
        let mut d = DropOdd;
        let e = Event::new(EventType::from_index(0), Timestamp::ZERO, 0);
        let requests: Vec<BatchRequest> =
            (0..5).map(|position| BatchRequest { meta: meta(), position }).collect();
        let mut decisions = vec![Decision::Drop; 9]; // stale content must be cleared
        d.decide_batch(&e, &requests, &mut decisions);
        assert_eq!(
            decisions,
            vec![Decision::Keep, Decision::Drop, Decision::Keep, Decision::Drop, Decision::Keep]
        );
        let mut empty = Vec::new();
        d.decide_batch(&e, &[], &mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn decide_span_default_delegates_per_event() {
        let mut d = DropOdd;
        let events: Vec<Event> =
            (0..6).map(|seq| Event::new(EventType::from_index(0), Timestamp::ZERO, seq)).collect();
        let mut drops = DropSet::new();
        // Start at an odd position so drops land on the even offsets.
        let dropped = d.decide_span(&meta(), 3, &events, &mut drops);
        assert_eq!(dropped, 3);
        assert_eq!(drops.iter().collect::<Vec<_>>(), vec![3, 5, 7]);
        // Boxed deciders forward the override-able span hook.
        let mut boxed: Box<dyn WindowEventDecider + Send> = Box::new(DropOdd);
        let mut boxed_drops = DropSet::new();
        assert_eq!(boxed.decide_span(&meta(), 3, &events, &mut boxed_drops), 3);
        assert_eq!(boxed_drops.iter().collect::<Vec<_>>(), vec![3, 5, 7]);
    }

    #[test]
    fn mutable_reference_is_a_decider() {
        fn takes_decider<D: WindowEventDecider>(d: &mut D) -> Decision {
            let e = Event::new(EventType::from_index(0), Timestamp::ZERO, 0);
            d.decide(&meta(), 0, &e)
        }
        let mut keep = KeepAll;
        let mut by_ref = &mut keep;
        assert_eq!(takes_decider(&mut by_ref), Decision::Keep);
    }
}

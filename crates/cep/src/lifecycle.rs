//! Dynamic query lifecycle: admitting and retiring queries mid-stream.
//!
//! The fused multi-query engine of PR 4 froze its [`QuerySet`] at
//! construction; this module makes the engine a *live* multi-tenant
//! service. An [`EngineControl`] handle (cloneable, thread-safe) sends
//! lifecycle requests over a control channel; the engine drains that
//! channel at a **safe point** of its fused pass — the boundary between
//! two stream events — and broadcasts every accepted command *in-band*
//! into each shard's input queue. Because the command occupies the same
//! stream position on every shard, a joining query starts opening windows
//! at a well-defined position (the first event after its admission,
//! identical everywhere) and produces byte-identical output to a fresh
//! static engine started at that position; a retiring query stops opening
//! windows at its retirement position, **drains its open windows to
//! completion**, and only then has its operator, decider (with any
//! per-window shedder state), shared size predictor and controller torn
//! down.
//!
//! Admissions carry [`BoxedDecider`]s — one per shard — because lifecycle
//! makes decider rows dynamic: rows grow on admission, shrink on
//! retirement, and may mix different shedder types per query, so the
//! static `&mut [D]` signature of the batch paths cannot express them.
//!
//! [`QuerySet`]: crate::QuerySet

use crate::arena::EventChunk;
use crate::window::SharedSizePredictor;
use crate::{BoxedDecider, Query, QueryHandle, QueryId};
use espice_events::Event;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};

/// One lifecycle request travelling from an [`EngineControl`] to the
/// engine's producer loop.
pub(crate) enum LifecycleRequest {
    /// Admit `query` at stream position `at` (or as soon as the request is
    /// drained, when `None`), with one decider per shard.
    Admit { handle: QueryHandle, query: Query, deciders: Vec<BoxedDecider>, at: Option<u64> },
    /// Retire the admission identified by `handle`.
    Retire { handle: QueryHandle, at: Option<u64> },
}

impl LifecycleRequest {
    /// The explicitly requested stream position, if the sender anchored
    /// one.
    pub(crate) fn requested_at(&self) -> Option<u64> {
        match self {
            LifecycleRequest::Admit { at, .. } | LifecycleRequest::Retire { at, .. } => *at,
        }
    }
}

impl std::fmt::Debug for LifecycleRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LifecycleRequest::Admit { handle, at, .. } => {
                f.debug_struct("Admit").field("handle", handle).field("at", at).finish()
            }
            LifecycleRequest::Retire { handle, at } => {
                f.debug_struct("Retire").field("handle", handle).field("at", at).finish()
            }
        }
    }
}

/// Per-run anchoring of lifecycle requests: clamps every request to a
/// stream position the run can actually honour.
///
/// Slots are allocated at **send** time (under the control lock), but
/// anchors are free-form — nothing stops a tenant from admitting at
/// position 700 and then admitting at position 400. Admissions must apply
/// in slot order, so this clamp makes admission anchors non-decreasing in
/// send order; a retirement referencing an admission of the same run is
/// clamped to no earlier than that admission's (clamped) anchor, so
/// "retire before you were admitted" becomes "admitted and immediately
/// retired" instead of a silent rejection. Every anchor is also clamped
/// forward to `floor` — the position the producer has already reached.
#[derive(Debug, Default)]
pub(crate) struct Anchoring {
    /// Anchor of the most recently anchored admission.
    last_admit: u64,
    /// Clamped anchors of this run's admissions, by slot.
    admits: Vec<(QueryId, u64)>,
}

impl Anchoring {
    pub(crate) fn new() -> Self {
        Anchoring::default()
    }

    /// The position `request` will apply at, given the producer has
    /// reached `floor`.
    pub(crate) fn anchor(&mut self, request: &LifecycleRequest, floor: u64) -> u64 {
        let mut at = request.requested_at().unwrap_or(floor).max(floor);
        match request {
            LifecycleRequest::Admit { handle, .. } => {
                at = at.max(self.last_admit);
                self.last_admit = at;
                self.admits.push((handle.slot, at));
            }
            LifecycleRequest::Retire { handle, .. } => {
                if let Some(&(_, admit_at)) =
                    self.admits.iter().find(|(slot, _)| *slot == handle.slot)
                {
                    at = at.max(admit_at);
                }
            }
        }
        at
    }
}

/// A validated lifecycle command as one shard sees it, delivered in-band
/// through the shard's input queue (or a pre-anchored command list on the
/// slice path) so it takes effect at the same stream position everywhere.
///
/// Advanced API: the engine builds these itself from [`EngineControl`]
/// requests; they are public only so callers that drive a
/// [`Shard`](crate::Shard) queue by hand can construct [`ShardInput`]s.
pub enum ShardCommand {
    /// Create the operator for `slot` (a fresh operator: its window-id
    /// counter starts at zero, exactly like a fresh engine's would).
    Admit {
        /// The slot the admitted query occupies; must be the next free
        /// index of the shard's per-query axis.
        slot: QueryId,
        /// The admitted query.
        query: Query,
        /// This shard's decider instance for the query.
        decider: BoxedDecider,
        /// The size predictor every shard of the query shares.
        predictor: Arc<SharedSizePredictor>,
    },
    /// Stop opening windows for `slot`; tear the slot down once its open
    /// windows have drained to completion.
    Retire {
        /// The slot to retire.
        slot: QueryId,
    },
}

impl std::fmt::Debug for ShardCommand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardCommand::Admit { slot, .. } => {
                f.debug_struct("Admit").field("slot", slot).finish()
            }
            ShardCommand::Retire { slot } => f.debug_struct("Retire").field("slot", slot).finish(),
        }
    }
}

/// What a live shard queue carries: stream events interleaved with in-band
/// lifecycle commands. A command sits *between* two events — the producer
/// seals any partial chunk before pushing it — so every shard applies it
/// at the same stream position.
#[derive(Debug)]
pub enum ShardInput {
    /// One stream event, in global stream order (the chunk-capacity-1
    /// degenerate hand-off, and the hand-built test path).
    Event(Event),
    /// A sealed, sequence-stamped batch of consecutive stream events,
    /// shared by reference with every shard (see
    /// [`arena`](crate::arena)): one hand-off per chunk per shard instead
    /// of one clone per event per shard.
    Chunk(Arc<EventChunk>),
    /// A lifecycle command taking effect before the next event. Boxed so
    /// the queue's slot size stays at the event hand-off size — commands
    /// are rare, events are not.
    Command(Box<ShardCommand>),
}

/// What happened, lifecycle-wise, during one live run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct LifecycleReport {
    /// Admissions applied, with the run-relative stream position at which
    /// each query started (its operator saw every event from that position
    /// on; position `n` means "before the `n`-th event of this run").
    pub admitted: Vec<(QueryHandle, u64)>,
    /// Retirements applied, with the position at which the query stopped
    /// opening windows (its open windows drained to completion afterwards).
    pub retired: Vec<(QueryHandle, u64)>,
    /// Requests rejected by validation: a retire whose handle was stale
    /// (already retired, or a generation mismatch after re-admission).
    pub rejected: u64,
}

/// State shared between an engine and every clone of its control handle.
#[derive(Debug)]
pub(crate) struct ControlShared {
    shard_count: usize,
    inner: Mutex<ControlInner>,
}

#[derive(Debug)]
struct ControlInner {
    sender: Sender<LifecycleRequest>,
    next_slot: QueryId,
    next_generation: u64,
}

/// The sending side of an engine's lifecycle control channel.
///
/// Obtained from [`ShardedEngine::control`]; cloneable and thread-safe, so
/// any number of tenants can admit and retire queries concurrently while
/// the stream runs. Slot and generation allocation happen under one lock
/// together with the channel send, so commands always arrive in slot order
/// and every admission gets a unique [`QueryHandle`].
///
/// Requests sent while no live run is active are buffered by the channel
/// and applied at the start of the next live run — which is also how
/// deterministic schedules are built: create the engine, issue
/// [`admit_at`](EngineControl::admit_at) / [`retire_at`](EngineControl::retire_at)
/// with explicit stream positions, then start the run.
///
/// [`ShardedEngine::control`]: crate::ShardedEngine::control
#[derive(Debug, Clone)]
pub struct EngineControl {
    shared: Arc<ControlShared>,
}

impl EngineControl {
    /// Creates the channel pair for an engine with `shard_count` shards
    /// whose per-query axis currently holds `slots` queries (generations
    /// `0..slots` are taken by the initial set).
    pub(crate) fn create(
        shard_count: usize,
        slots: usize,
    ) -> (EngineControl, Receiver<LifecycleRequest>) {
        let (sender, receiver) = std::sync::mpsc::channel();
        let control = EngineControl {
            shared: Arc::new(ControlShared {
                shard_count,
                inner: Mutex::new(ControlInner {
                    sender,
                    next_slot: slots as QueryId,
                    next_generation: slots as u64,
                }),
            }),
        };
        (control, receiver)
    }

    /// The number of deciders every admission must supply (one per shard).
    pub fn shard_count(&self) -> usize {
        self.shared.shard_count
    }

    /// Admits `query` as soon as the engine's producer drains the request:
    /// the query starts opening windows at the first event after admission,
    /// at the same stream position on every shard. `deciders` supplies one
    /// decider per shard (decorrelate randomised shedders per shard, as the
    /// static paths do).
    ///
    /// Returns the generation-stamped handle identifying this admission;
    /// pass it to [`retire`](EngineControl::retire) to tear the query down.
    ///
    /// # Panics
    ///
    /// Panics if `deciders.len()` differs from the engine's shard count.
    pub fn admit(&self, query: Query, deciders: Vec<BoxedDecider>) -> QueryHandle {
        self.send_admit(query, deciders, None)
    }

    /// [`admit`](EngineControl::admit) anchored at an explicit run-relative
    /// stream position: the query's operator sees every event from position
    /// `at` on (it misses `events[..at]` exactly). Positions already passed
    /// when the request is drained are clamped forward to the drain point.
    ///
    /// # Panics
    ///
    /// Panics if `deciders.len()` differs from the engine's shard count.
    pub fn admit_at(&self, at: u64, query: Query, deciders: Vec<BoxedDecider>) -> QueryHandle {
        self.send_admit(query, deciders, Some(at))
    }

    /// Retires the admission identified by `handle` as soon as the request
    /// is drained: the query stops opening windows, drains its open windows
    /// to completion, and is then torn down (operator, decider with its
    /// per-window shedder state, size predictor, controller). A stale
    /// handle — already retired, or generation-mismatched — is rejected and
    /// counted in [`LifecycleReport::rejected`].
    pub fn retire(&self, handle: QueryHandle) {
        // The lock only guards a counter pair and a channel sender; a
        // poisoned guard still holds consistent state, so recover it
        // rather than cascading a shard panic into the control plane.
        let inner = self.shared.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = inner.sender.send(LifecycleRequest::Retire { handle, at: None });
    }

    /// [`retire`](EngineControl::retire) anchored at an explicit
    /// run-relative stream position.
    pub fn retire_at(&self, at: u64, handle: QueryHandle) {
        // See retire(): the guarded state stays consistent across a poison.
        let inner = self.shared.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = inner.sender.send(LifecycleRequest::Retire { handle, at: Some(at) });
    }

    fn send_admit(
        &self,
        query: Query,
        deciders: Vec<BoxedDecider>,
        at: Option<u64>,
    ) -> QueryHandle {
        assert_eq!(
            deciders.len(),
            self.shared.shard_count,
            "an admission needs exactly one decider per shard"
        );
        // See retire(): the guarded state stays consistent across a poison.
        let mut inner = self.shared.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let handle = QueryHandle { slot: inner.next_slot, generation: inner.next_generation };
        // u32::MAX admissions would need ~4 billion admit calls in one
        // process lifetime; overflow here is a caller bug, not a load
        // condition, so the panic stays.
        inner.next_slot = inner.next_slot.checked_add(1).expect("query slots exhausted");
        inner.next_generation += 1;
        let _ = inner.sender.send(LifecycleRequest::Admit { handle, query, deciders, at });
        handle
    }
}

/// The result of a live (lifecycle-enabled) engine run.
///
/// The per-query axis covers every slot the engine has ever carried —
/// queries retired before or during the run keep their slot, reporting the
/// output produced while they were live (empty for slots retired in an
/// earlier run).
pub struct LiveRunOutcome {
    /// Each slot's complex events, in single-operator emission order.
    pub complex_events: Vec<Vec<crate::ComplexEvent>>,
    /// The decider rows after the run, indexed `[shard][slot]`; `None`
    /// marks slots whose decider was torn down (retired queries). Wrap
    /// deciders in [`SharedDecider`](crate::SharedDecider) before admission
    /// to observe their state without taking the row back.
    pub deciders: Vec<Vec<Option<BoxedDecider>>>,
    /// Admissions, retirements and rejections of this run, with positions.
    pub lifecycle: LifecycleReport,
}

impl std::fmt::Debug for LiveRunOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveRunOutcome")
            .field("complex_events", &self.complex_events)
            .field("shards", &self.deciders.len())
            .field("lifecycle", &self.lifecycle)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KeepAll, Pattern, WindowSpec};
    use espice_events::EventType;

    fn query() -> Query {
        let a = EventType::from_index(0);
        Query::builder()
            .pattern(Pattern::sequence([a, EventType::from_index(1)]))
            .window(WindowSpec::count_on_types(vec![a], 4))
            .build()
    }

    #[test]
    fn control_allocates_monotone_slots_and_generations() {
        let (control, rx) = EngineControl::create(2, 3);
        let h1 = control.admit(query(), vec![Box::new(KeepAll), Box::new(KeepAll)]);
        let h2 = control.admit_at(7, query(), vec![Box::new(KeepAll), Box::new(KeepAll)]);
        assert_eq!((h1.slot, h1.generation), (3, 3));
        assert_eq!((h2.slot, h2.generation), (4, 4));
        control.retire(h1);
        let requests: Vec<LifecycleRequest> = rx.try_iter().collect();
        assert_eq!(requests.len(), 3);
        assert!(
            matches!(requests[0], LifecycleRequest::Admit { handle, at: None, .. } if handle == h1)
        );
        assert!(
            matches!(requests[1], LifecycleRequest::Admit { handle, at: Some(7), .. } if handle == h2)
        );
        assert!(
            matches!(requests[2], LifecycleRequest::Retire { handle, at: None } if handle == h1)
        );
    }

    #[test]
    fn cloned_controls_share_the_allocation_sequence() {
        let (control, rx) = EngineControl::create(1, 0);
        let clone = control.clone();
        let a = control.admit(query(), vec![Box::new(KeepAll)]);
        let b = clone.admit(query(), vec![Box::new(KeepAll)]);
        assert_eq!(a.slot, 0);
        assert_eq!(b.slot, 1);
        assert_ne!(a.generation, b.generation);
        assert_eq!(rx.try_iter().count(), 2);
    }

    #[test]
    #[should_panic(expected = "one decider per shard")]
    fn admission_with_wrong_decider_count_is_rejected() {
        let (control, _rx) = EngineControl::create(2, 0);
        let _ = control.admit(query(), vec![Box::new(KeepAll)]);
    }
}

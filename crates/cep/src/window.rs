//! Window specifications and per-window metadata.
//!
//! The input stream is partitioned into (possibly overlapping) windows; an
//! event can belong to several windows at once and is processed independently
//! in each (paper §2). A [`WindowSpec`] combines an *open policy* (when does a
//! new window start) with an *extent* (when does a window end):
//!
//! * Q1/Q2 use time-based windows opened by a logical predicate (every striker
//!   possession / every leading-stock quote),
//! * Q3 uses a count-based window opened on leading-stock quotes,
//! * Q4 uses a count-based sliding window (slide = 100 events).

use espice_events::{Event, EventType, SequenceNumber, SimDuration, Timestamp};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of a window instance within one query's operator run.
pub type WindowId = u64;

/// Identifier of a query within a [`QuerySet`](crate::QuerySet) (its index).
///
/// A multi-query engine runs one operator per query per shard; window ids
/// are only unique *within* a query, so wherever windows from several
/// queries can meet — shedder state, reports — the full key is the pair
/// `(query, window id)` carried by [`WindowMeta`]. A standalone operator is
/// query 0 of 1.
pub type QueryId = u32;

/// A generation-stamped reference to one admitted query of a live engine.
///
/// The [`QueryId`] (`slot`) names the query's position on the engine's
/// per-query axis — outputs, statistics and deciders are indexed by it —
/// and is never reused: retiring a query freezes its slot and a later
/// admission always gets a fresh one. The `generation` stamp additionally
/// makes every *admission* a distinct identity: two admissions of an
/// identical [`Query`](crate::Query) value carry different generations, so
/// a stale handle held after a retirement can never be confused with a
/// re-admitted query — [`EngineControl::retire`](crate::EngineControl::retire)
/// rejects any handle whose `(slot, generation)` pair does not match the
/// currently live admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QueryHandle {
    /// The query's slot on the engine's per-query axis (its [`QueryId`]).
    pub slot: QueryId,
    /// The admission stamp: unique across every admission of the engine,
    /// initial queries included.
    pub generation: u64,
}

/// When new windows are opened.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpenPolicy {
    /// A new window is opened for every incoming event whose type is in the
    /// given set (a logical predicate); the opening event is the first event
    /// of the window.
    OnTypes(Vec<EventType>),
    /// A new window is opened every `slide` events (count-based slide).
    EveryCount(usize),
    /// A new window is opened every `slide` of stream time (time-based slide).
    EveryDuration(SimDuration),
}

/// When a window closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowExtent {
    /// The window contains exactly this many events.
    Count(usize),
    /// The window contains all events within this duration of its opening
    /// event's timestamp.
    Time(SimDuration),
}

impl WindowExtent {
    /// Whether an event still falls into a window opened at `opened_at` that
    /// currently holds `assigned` events. `Copy`, so the operator can cache
    /// the extent once and test it on the hot path without borrowing (or
    /// cloning) the whole [`WindowSpec`].
    pub fn accepts(self, opened_at: Timestamp, assigned: usize, event: &Event) -> bool {
        match self {
            WindowExtent::Count(size) => assigned < size,
            WindowExtent::Time(dur) => event.timestamp() < opened_at + dur,
        }
    }
}

/// A complete window specification: open policy plus extent.
///
/// # Example
///
/// ```
/// use espice_cep::WindowSpec;
/// use espice_events::{EventType, SimDuration};
///
/// let count = WindowSpec::count_sliding(100, 10);
/// assert_eq!(count.expected_size(), Some(100));
///
/// let time = WindowSpec::time_on_types(vec![EventType::from_index(0)], SimDuration::from_secs(15));
/// assert_eq!(time.expected_size(), None);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowSpec {
    open: OpenPolicy,
    extent: WindowExtent,
}

impl WindowSpec {
    /// Creates a window specification from its parts.
    ///
    /// # Panics
    ///
    /// Panics if a count extent or count slide is zero, or if a type-opened
    /// window has an empty type set.
    pub fn new(open: OpenPolicy, extent: WindowExtent) -> Self {
        match &open {
            OpenPolicy::OnTypes(types) => {
                assert!(!types.is_empty(), "OnTypes open policy needs at least one type")
            }
            OpenPolicy::EveryCount(slide) => assert!(*slide >= 1, "count slide must be >= 1"),
            OpenPolicy::EveryDuration(d) => {
                assert!(!d.is_zero(), "time slide must be non-zero")
            }
        }
        if let WindowExtent::Count(size) = extent {
            assert!(size >= 1, "count window size must be >= 1");
        }
        WindowSpec { open, extent }
    }

    /// Count-based sliding window: `size` events, a new window every `slide`
    /// events.
    pub fn count_sliding(size: usize, slide: usize) -> Self {
        Self::new(OpenPolicy::EveryCount(slide), WindowExtent::Count(size))
    }

    /// Time-based sliding window: `size` of stream time, a new window every
    /// `slide` of stream time.
    pub fn time_sliding(size: SimDuration, slide: SimDuration) -> Self {
        Self::new(OpenPolicy::EveryDuration(slide), WindowExtent::Time(size))
    }

    /// Count-based window opened on every event of the given types (Q3).
    pub fn count_on_types(types: Vec<EventType>, size: usize) -> Self {
        Self::new(OpenPolicy::OnTypes(types), WindowExtent::Count(size))
    }

    /// Time-based window opened on every event of the given types (Q1, Q2).
    pub fn time_on_types(types: Vec<EventType>, size: SimDuration) -> Self {
        Self::new(OpenPolicy::OnTypes(types), WindowExtent::Time(size))
    }

    /// The open policy.
    pub fn open_policy(&self) -> &OpenPolicy {
        &self.open
    }

    /// The extent.
    pub fn extent(&self) -> WindowExtent {
        self.extent
    }

    /// The exact window size in events, if it is known statically
    /// (count-based extents). Time-based windows return `None`; their size is
    /// predicted at runtime (paper §3.6, *Handling Variable Window Size*).
    pub fn expected_size(&self) -> Option<usize> {
        match self.extent {
            WindowExtent::Count(size) => Some(size),
            WindowExtent::Time(_) => None,
        }
    }

    /// Whether an event of type `ty` opens a new window under this spec's
    /// `OnTypes` policy. Always false for slide-based policies (the operator
    /// tracks those itself).
    pub fn opens_on(&self, ty: EventType) -> bool {
        match &self.open {
            OpenPolicy::OnTypes(types) => types.contains(&ty),
            _ => false,
        }
    }

    /// Whether an event with timestamp `ts` still falls into a window opened
    /// at `opened_at` that currently holds `assigned` events.
    pub fn accepts(&self, opened_at: Timestamp, assigned: usize, event: &Event) -> bool {
        self.extent.accepts(opened_at, assigned, event)
    }
}

/// Metadata of a window instance, handed to [`WindowEventDecider`]s for every
/// shedding decision.
///
/// [`WindowEventDecider`]: crate::WindowEventDecider
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowMeta {
    /// The window's identifier (unique within one query's operator run; the
    /// pair `(query, id)` is unique across a whole multi-query engine).
    pub id: WindowId,
    /// The query this window belongs to (0 for a standalone operator).
    pub query: QueryId,
    /// Timestamp of the window's opening event.
    pub opened_at: Timestamp,
    /// Sequence number of the window's opening event.
    pub open_seq: SequenceNumber,
    /// Predicted total number of events in this window. Exact for count-based
    /// extents; a running average of recently closed windows for time-based
    /// extents (the paper's `N` / predicted window size).
    pub predicted_size: usize,
}

/// The mutable state behind a window [`OpenPolicy`]: decides, event by
/// event, whether a new window opens.
///
/// Extracted from the operator so a *fused* multi-query pass can share the
/// bookkeeping: open decisions depend only on the open policy and the
/// stream, never on a query's pattern or extent, so queries whose open
/// policies are equal can be served by a single tracker — one
/// `should_open` evaluation per event per distinct policy instead of one
/// per query. A standalone [`Operator`](crate::Operator) keeps its own
/// tracker.
#[derive(Debug, Clone)]
pub struct OpenTracker {
    policy: OpenPolicy,
    /// Events seen since the last count-slide window was opened.
    since_count_open: usize,
    /// Stream time of the last time-slide window opening.
    last_time_open: Option<Timestamp>,
}

impl OpenTracker {
    /// A fresh tracker for `policy`.
    pub fn new(policy: OpenPolicy) -> Self {
        OpenTracker { policy, since_count_open: 0, last_time_open: None }
    }

    /// The tracked open policy.
    pub fn policy(&self) -> &OpenPolicy {
        &self.policy
    }

    /// Whether a new window opens at `event`, advancing the slide state.
    /// Must be called exactly once per stream event, in stream order.
    pub fn should_open(&mut self, event: &Event) -> bool {
        match &self.policy {
            OpenPolicy::OnTypes(types) => types.contains(&event.event_type()),
            OpenPolicy::EveryCount(slide) => {
                let slide = *slide;
                let open = self.since_count_open == 0;
                self.since_count_open += 1;
                if self.since_count_open >= slide {
                    self.since_count_open = 0;
                }
                open
            }
            OpenPolicy::EveryDuration(slide) => {
                let slide = *slide;
                match self.last_time_open {
                    None => {
                        self.last_time_open = Some(event.timestamp());
                        true
                    }
                    Some(last) => {
                        if event.timestamp() >= last + slide {
                            self.last_time_open = Some(event.timestamp());
                            true
                        } else {
                            false
                        }
                    }
                }
            }
        }
    }

    /// Restarts the tracker as if no event had been seen.
    pub fn reset(&mut self) {
        self.since_count_open = 0;
        self.last_time_open = None;
    }
}

/// Running estimate of the window size for time-based (variable size) windows.
///
/// The paper profiles the operator and uses the *average seen window size* as
/// the model dimension `N`; at shedding time the incoming window's size must
/// be predicted because events are processed on arrival. This predictor keeps
/// an exponentially weighted moving average of closed-window sizes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SizePredictor {
    estimate: f64,
    alpha: f64,
    observations: u64,
}

impl SizePredictor {
    /// Creates a predictor with an initial estimate (used until the first
    /// window closes) and smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` or the initial estimate is zero.
    pub fn new(initial_estimate: usize, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(initial_estimate >= 1, "initial estimate must be >= 1");
        SizePredictor { estimate: initial_estimate as f64, alpha, observations: 0 }
    }

    /// Records the size of a closed window.
    pub fn observe(&mut self, size: usize) {
        if self.observations == 0 {
            self.estimate = size as f64;
        } else {
            self.estimate = self.alpha * size as f64 + (1.0 - self.alpha) * self.estimate;
        }
        self.observations += 1;
    }

    /// The current prediction (never below 1).
    pub fn predict(&self) -> usize {
        self.estimate.round().max(1.0) as usize
    }

    /// How many windows have been observed.
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

impl Default for SizePredictor {
    fn default() -> Self {
        SizePredictor::new(100, 0.05)
    }
}

/// A window-size estimate shared by all shards of an engine, updated with
/// lock-free atomics.
///
/// With per-shard [`SizePredictor`]s each shard only observes the windows
/// it owns, so on time-based (variable size) windows `predicted_size` —
/// and with it eSPICE's position scaling — drifts between shard counts. A
/// shared estimator removes that drift: every shard feeds the same
/// accumulator and reads the same prediction.
///
/// The smoothing is a *running mean* over all closed windows (the
/// Robbins–Monro `αₙ = 1/n` special case of an EWMA) rather than a
/// fixed-α EWMA, deliberately: a sum-and-count pair is order-insensitive,
/// so the estimator converges to the same value for every thread
/// interleaving and every shard count — exactly the paper's "average seen
/// window size". A fixed-α EWMA over a racing observation order would make
/// the estimate depend on scheduling. Individual predictions taken *during*
/// a multi-threaded run can still differ between runs (they see whatever
/// subset of windows has closed so far); count-based windows never consult
/// the predictor, so their runs stay bit-identical.
#[derive(Debug)]
pub struct SharedSizePredictor {
    /// Sum of all observed window sizes.
    sum: AtomicU64,
    /// Number of observed windows.
    count: AtomicU64,
    /// Estimate reported before the first window closes.
    initial: AtomicU64,
}

impl SharedSizePredictor {
    /// Creates a shared predictor with an initial estimate (used until the
    /// first window closes).
    ///
    /// # Panics
    ///
    /// Panics if the initial estimate is zero.
    pub fn new(initial_estimate: usize) -> Self {
        assert!(initial_estimate >= 1, "initial estimate must be >= 1");
        SharedSizePredictor {
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            initial: AtomicU64::new(initial_estimate as u64),
        }
    }

    /// Records the size of a closed window. Callable from any shard thread.
    pub fn observe(&self, size: usize) {
        self.sum.fetch_add(size as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// The current prediction (never below 1): the mean closed-window size,
    /// or the initial estimate before any window has closed.
    pub fn predict(&self) -> usize {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return self.initial.load(Ordering::Relaxed).max(1) as usize;
        }
        let sum = self.sum.load(Ordering::Relaxed);
        ((sum as f64 / count as f64).round() as usize).max(1)
    }

    /// How many windows have been observed across all shards.
    pub fn observations(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Discards all observations and restarts from `initial_estimate`
    /// (engine reset / re-seeding with a training hint). Idempotent, so
    /// every shard of a resetting engine may call it.
    ///
    /// # Panics
    ///
    /// Panics if the initial estimate is zero.
    pub fn reset_to(&self, initial_estimate: usize) {
        assert!(initial_estimate >= 1, "initial estimate must be >= 1");
        self.initial.store(initial_estimate as u64, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }

    /// The raw `(sum, count)` accumulator pair. Captured into replay
    /// checkpoints so chunk-replay recovery can rewind the estimator to the
    /// checkpoint instead of observing the replayed closes a second time.
    pub fn snapshot(&self) -> (u64, u64) {
        (self.sum.load(Ordering::Relaxed), self.count.load(Ordering::Relaxed))
    }

    /// Overwrites the accumulator with a snapshot taken by
    /// [`snapshot`](Self::snapshot). Any observation recorded since the
    /// snapshot — including ones made concurrently by other shards — is
    /// discarded; the replay that follows re-records exactly the closes
    /// the restored shard re-derives, so the estimator converges back to
    /// the crashed incarnation's state instead of double-counting.
    pub fn restore(&self, sum: u64, count: u64) {
        self.sum.store(sum, Ordering::Relaxed);
        self.count.store(count, Ordering::Relaxed);
    }
}

/// How a [`ShardedEngine`](crate::ShardedEngine) assigns a newly opened
/// window to a shard.
///
/// Every shard scans the full stream and advances the same per-slot global
/// window-id counter, so ownership is a pure routing question: *which shard
/// materialises (buffers, sheds, matches) this window*. Any single-owner
/// partition of the id space yields byte-identical merged output — windows
/// are processed independently and the engine merges per query in window-id
/// order — which is what makes the policy pluggable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OwnershipPolicy {
    /// The static partition `id % shard_count`: zero bookkeeping, perfectly
    /// even for homogeneous windows, and the oracle every dynamic policy is
    /// pinned against. This is the default.
    #[default]
    StaticModulo,
    /// Steal-at-open rebalancing: each opening window is routed to the
    /// shard with the least *outstanding projected work*, tracked by a
    /// [`WindowBalancer`] that every shard advances in lockstep. A skewed
    /// workload (one hot opener type, heterogeneous window sizes) no longer
    /// pins its heavy windows to one shard.
    StealAtOpen,
}

/// One live entry of the [`WindowBalancer`] load table: a window assigned
/// to `owner` that is projected to stop consuming events at `expire_pos`
/// (count extents: open position + size; time extents: open position +
/// predicted size) or at stream time `close_ts` (time extents only),
/// whichever the stream reaches first.
#[derive(Debug, Clone)]
struct BalancerEntry {
    owner: usize,
    expire_pos: u64,
    close_ts: Option<Timestamp>,
}

/// The deterministic lockstep load balancer behind
/// [`OwnershipPolicy::StealAtOpen`].
///
/// Every shard owns a private clone and feeds it the *same* inputs in the
/// *same* order — the stream position, timestamp and per-slot size hint of
/// every window-open event, which are pure functions of the shared stream —
/// so all clones compute identical assignments without exchanging a single
/// message. See `Shard::set_ownership_policy` for how this relates to the
/// measured `QueueSample` load signals.
///
/// The consult happens **only at window opens** (zero per-event cost): the
/// balancer lazily retires entries the stream has passed, sums each shard's
/// remaining projected spans, and assigns the new window to the least
/// loaded shard. Ties — the common case when all hints are equal — are
/// broken by a position-seeded hash rotation rather than round-robin, so a
/// workload whose heavy windows recur with a period aligned to the shard
/// count cannot re-create the static partition's pinning by accident.
#[derive(Debug, Clone)]
pub struct WindowBalancer {
    count: usize,
    entries: Vec<BalancerEntry>,
    /// Scratch: projected outstanding events per shard, rebuilt per consult.
    load: Vec<u64>,
}

/// SplitMix64 finalizer: a cheap, well-mixed hash of the open position used
/// to rotate the argmin scan start. Any fixed scan order would favour low
/// shard indices on ties; a position-derived rotation spreads tied
/// assignments uniformly while staying a pure function of the stream.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl WindowBalancer {
    /// A fresh balancer for `count` shards.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(count: usize) -> Self {
        assert!(count >= 1, "balancer needs at least one shard");
        WindowBalancer { count, entries: Vec::new(), load: vec![0; count] }
    }

    /// Routes the window opening at stream position `position` (timestamp
    /// `timestamp`, projected size `hint` events, time extents closing at
    /// `close_ts`) to the least-loaded shard and records the assignment.
    /// Must be called for **every** window the stream opens, in stream
    /// order, with identical arguments on every shard.
    pub fn assign(
        &mut self,
        position: u64,
        timestamp: Timestamp,
        hint: usize,
        close_ts: Option<Timestamp>,
    ) -> usize {
        // Lazily retire entries the stream has passed: their windows have
        // closed (or stopped accepting events), so they no longer describe
        // outstanding work.
        self.entries.retain(|entry| {
            entry.expire_pos > position && entry.close_ts.is_none_or(|close| timestamp < close)
        });
        // Projected outstanding events per shard: the sum of each live
        // entry's remaining span.
        self.load.iter_mut().for_each(|l| *l = 0);
        for entry in &self.entries {
            self.load[entry.owner] += entry.expire_pos - position;
        }
        // Argmin with a position-hashed scan start; the first strict
        // minimum in rotated order wins.
        let start = (splitmix64(position) % self.count as u64) as usize;
        let mut owner = start;
        let mut best = self.load[start];
        for offset in 1..self.count {
            let shard = (start + offset) % self.count;
            if self.load[shard] < best {
                best = self.load[shard];
                owner = shard;
            }
        }
        let expire_pos = position + (hint.max(1) as u64);
        self.entries.push(BalancerEntry { owner, expire_pos, close_ts });
        owner
    }

    /// Number of shards the balancer routes across.
    pub fn shard_count(&self) -> usize {
        self.count
    }

    /// Number of windows currently tracked as outstanding work.
    pub fn live_entries(&self) -> usize {
        self.entries.len()
    }

    /// Forgets all tracked windows (engine reset).
    pub fn reset(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ty(i: u32) -> EventType {
        EventType::from_index(i)
    }

    fn ev(t: u32, ts_secs: u64, seq: u64) -> Event {
        Event::new(ty(t), Timestamp::from_secs(ts_secs), seq)
    }

    #[test]
    fn count_sliding_has_static_size() {
        let spec = WindowSpec::count_sliding(300, 100);
        assert_eq!(spec.expected_size(), Some(300));
        assert_eq!(spec.extent(), WindowExtent::Count(300));
        assert!(matches!(spec.open_policy(), OpenPolicy::EveryCount(100)));
    }

    #[test]
    fn time_on_types_opens_only_on_listed_types() {
        let spec = WindowSpec::time_on_types(vec![ty(1), ty(2)], SimDuration::from_secs(15));
        assert!(spec.opens_on(ty(1)));
        assert!(spec.opens_on(ty(2)));
        assert!(!spec.opens_on(ty(3)));
        assert_eq!(spec.expected_size(), None);
    }

    #[test]
    fn slide_policies_never_open_on_type() {
        let spec = WindowSpec::count_sliding(10, 5);
        assert!(!spec.opens_on(ty(0)));
    }

    #[test]
    fn count_extent_accepts_until_full() {
        let spec = WindowSpec::count_sliding(3, 1);
        let opened = Timestamp::ZERO;
        assert!(spec.accepts(opened, 0, &ev(0, 100, 0)));
        assert!(spec.accepts(opened, 2, &ev(0, 100, 0)));
        assert!(!spec.accepts(opened, 3, &ev(0, 100, 0)));
    }

    #[test]
    fn time_extent_accepts_within_duration() {
        let spec = WindowSpec::time_on_types(vec![ty(0)], SimDuration::from_secs(10));
        let opened = Timestamp::from_secs(100);
        assert!(spec.accepts(opened, 999, &ev(0, 105, 0)));
        assert!(!spec.accepts(opened, 0, &ev(0, 110, 0)));
        assert!(!spec.accepts(opened, 0, &ev(0, 200, 0)));
    }

    #[test]
    #[should_panic(expected = "at least one type")]
    fn on_types_rejects_empty_set() {
        let _ = WindowSpec::count_on_types(Vec::new(), 10);
    }

    #[test]
    #[should_panic(expected = "size must be >= 1")]
    fn count_extent_rejects_zero_size() {
        let _ = WindowSpec::count_sliding(0, 1);
    }

    #[test]
    #[should_panic(expected = "slide must be >= 1")]
    fn count_slide_rejects_zero() {
        let _ = WindowSpec::count_sliding(10, 0);
    }

    #[test]
    fn size_predictor_converges_to_observed_sizes() {
        let mut p = SizePredictor::new(500, 0.5);
        assert_eq!(p.predict(), 500);
        p.observe(100);
        // First observation replaces the initial estimate entirely.
        assert_eq!(p.predict(), 100);
        p.observe(200);
        assert_eq!(p.predict(), 150);
        assert_eq!(p.observations(), 2);
    }

    #[test]
    fn size_predictor_never_predicts_zero() {
        let mut p = SizePredictor::new(1, 1.0);
        p.observe(0);
        assert_eq!(p.predict(), 1);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn size_predictor_rejects_bad_alpha() {
        let _ = SizePredictor::new(10, 0.0);
    }

    #[test]
    fn shared_predictor_reports_the_mean_of_all_observations() {
        let shared = SharedSizePredictor::new(500);
        assert_eq!(shared.predict(), 500);
        shared.observe(100);
        shared.observe(200);
        shared.observe(300);
        assert_eq!(shared.predict(), 200);
        assert_eq!(shared.observations(), 3);
    }

    #[test]
    fn shared_predictor_is_order_insensitive() {
        let a = SharedSizePredictor::new(10);
        let b = SharedSizePredictor::new(10);
        for size in [5usize, 50, 17, 3] {
            a.observe(size);
        }
        for size in [3usize, 17, 50, 5] {
            b.observe(size);
        }
        assert_eq!(a.predict(), b.predict());
    }

    #[test]
    fn shared_predictor_reset_restarts_from_hint() {
        let shared = SharedSizePredictor::new(10);
        shared.observe(1000);
        shared.reset_to(42);
        assert_eq!(shared.predict(), 42);
        assert_eq!(shared.observations(), 0);
        shared.observe(0);
        assert_eq!(shared.predict(), 1, "prediction never drops below 1");
    }

    #[test]
    fn shared_predictor_sums_across_threads() {
        let shared = SharedSizePredictor::new(1);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        shared.observe(8);
                    }
                });
            }
        });
        assert_eq!(shared.observations(), 400);
        assert_eq!(shared.predict(), 8);
    }

    #[test]
    #[should_panic(expected = "initial estimate")]
    fn shared_predictor_rejects_zero_initial() {
        let _ = SharedSizePredictor::new(0);
    }

    #[test]
    fn shared_predictor_snapshot_restore_round_trips() {
        let shared = SharedSizePredictor::new(10);
        shared.observe(30);
        shared.observe(50);
        let (sum, count) = shared.snapshot();
        assert_eq!((sum, count), (80, 2));
        shared.observe(1000);
        shared.restore(sum, count);
        assert_eq!(shared.predict(), 40);
        assert_eq!(shared.observations(), 2);
    }

    #[test]
    fn balancer_clones_stay_in_lockstep() {
        let mut a = WindowBalancer::new(4);
        let mut b = a.clone();
        for k in 0..200u64 {
            let position = k * 37 % 10_000;
            let ts = Timestamp::from_secs(k);
            let hint = 50 + (k % 7) as usize * 100;
            let close = (k % 2 == 0).then(|| ts + SimDuration::from_secs(80));
            assert_eq!(
                a.assign(position, ts, hint, close),
                b.assign(position, ts, hint, close),
                "clones diverged at window {k}"
            );
        }
    }

    #[test]
    fn balancer_spreads_equal_hint_windows_across_all_shards() {
        // All-tie loads fall back to the position-hashed rotation: every
        // shard must receive a fair share, and in particular a periodic
        // opener (positions k*P) must not re-create the modulo pinning.
        let mut balancer = WindowBalancer::new(4);
        let mut counts = [0usize; 4];
        for k in 0..400u64 {
            let owner = balancer.assign(k * 601, Timestamp::from_secs(k * 100), 100, None);
            counts[owner] += 1;
        }
        for (shard, count) in counts.iter().enumerate() {
            assert!(
                (50..=150).contains(count),
                "shard {shard} owns {count} of 400 equal windows — not spread"
            );
        }
    }

    #[test]
    fn balancer_routes_away_from_the_loaded_shard() {
        let mut balancer = WindowBalancer::new(2);
        // A huge outstanding window lands somewhere...
        let heavy = balancer.assign(0, Timestamp::from_secs(0), 1_000_000, None);
        // ...so the next opens, while it is still outstanding, must all go
        // to the other shard.
        for k in 1..10u64 {
            let owner = balancer.assign(k, Timestamp::from_secs(k), 10, None);
            assert_eq!(owner, 1 - heavy, "open {k} routed onto the loaded shard");
        }
    }

    #[test]
    fn balancer_retires_entries_by_position_and_time() {
        let mut balancer = WindowBalancer::new(2);
        let _ = balancer.assign(0, Timestamp::from_secs(0), 10, None);
        let _ = balancer.assign(1, Timestamp::from_secs(1), 100, Some(Timestamp::from_secs(5)));
        assert_eq!(balancer.live_entries(), 2);
        // Position 20 is past the first entry's expiry; t=50 is past the
        // second's close timestamp.
        let _ = balancer.assign(20, Timestamp::from_secs(50), 10, None);
        assert_eq!(balancer.live_entries(), 1, "both stale entries must retire");
        balancer.reset();
        assert_eq!(balancer.live_entries(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn balancer_rejects_zero_shards() {
        let _ = WindowBalancer::new(0);
    }
}

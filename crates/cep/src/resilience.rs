//! Fault tolerance for the sharded engine: typed failure reporting,
//! chunk-replay shard recovery, and stall detection.
//!
//! eSPICE frames load shedding as *controlled degradation* — keep the
//! latency bound by dropping the least useful work. Component failure is
//! the other instance of the same idea: a shard thread that panics (a bug
//! in a decider, an injected fault) should degrade the run, not destroy
//! it. This module adds three escalating answers:
//!
//! 1. **Containment** (`try_run_*` on [`ShardedEngine`]): shard panics come
//!    back as [`EngineError::ShardsFailed`] values carrying the panic
//!    message and the stream position the failure was first observed at,
//!    while surviving shards drain to completion.
//! 2. **Recovery** ([`ShardedEngine::run_source_resilient`]): the producer
//!    retains sealed [`EventChunk`]s above a
//!    per-shard low-water acknowledgement — the chunk containing the start
//!    of the shard's oldest open window, pruned exactly like the event ring
//!    prunes its slots — and on a shard panic spawns a fresh replacement
//!    that replays the retained chunks. Already-emitted windows are
//!    deduplicated by the shard's deterministic window-id watermark, so the
//!    merged output of a crashed-and-recovered run is **byte-identical** to
//!    the fault-free run.
//! 3. **Stall safety**: a progress watchdog turns a wedged shard into
//!    [`EngineError::Stalled`] after a configurable deadline instead of
//!    blocking the producer forever.
//!
//! # The recovery argument
//!
//! Window-open decisions are a pure function of the stream, and windows are
//! hash-partitioned by a per-slot id counter that advances deterministically
//! with the stream — or, under [`OwnershipPolicy::StealAtOpen`], routed by a
//! window balancer whose assignments are an equally pure function of the
//! stream, so the same argument covers stolen windows. At every chunk
//! boundary `b` the drain loop flushes its emissions to a shard monitor
//! together with a checkpoint (open-tracker slide state, per-slot window-id
//! counters, the window-ownership table, and per-slot snapshots of the
//! shared size predictor) and the boundary's *low-water mark* `low(b)` — the stream position of the oldest event any still-open
//! window starts at. Checkpoints below the current low-water mark are
//! pruned, so the oldest retained checkpoint position `R̂` always satisfies
//! `R̂ ≤ low(b)` for the latest flushed boundary `b = c`. A replacement
//! shard restored at `R̂` that replays `[R̂, c)` therefore re-opens exactly
//! the windows that were open at `c` (their starts are all ≥ `low(c) ≥ R̂`)
//! with the same ids, and re-closes exactly the windows the crashed
//! incarnation already flushed — which the per-slot id watermark filters
//! out. Shedding decisions are reproduced by running the replay against
//! *pristine clones* of the initial deciders (window-scoped deciders such
//! as the eSPICE accumulator, keyed per `(query, window id)`, take the same
//! decisions they took the first time); at `c` the replacement swaps in
//! clones of the deciders snapshotted at `c` and overwrites its counters
//! wholesale with the crashed incarnation's, so everything from `c` onward
//! — emissions, statistics, decider state — continues exactly as the
//! fault-free run would have.
//!
//! The byte-identity guarantee is scoped to deciders whose decisions are a
//! function of `(window id, position, event, predicted size)` with
//! count-based windows (exact predicted size) — the same scope every other
//! shard-invariance guarantee in this crate has. On time-based windows the
//! [`SharedSizePredictor`] is rewound to the snapshot of the *newest*
//! flushed checkpoint (the swap boundary `c`) and the replacement's own
//! observations are muted for the replayed span — every close at or below
//! `c` already fed the estimator once, and rewinding further back would
//! lose the closes of windows the replay never re-opens. A single-shard
//! recovery therefore ends with exactly the fault-free observation count.
//! With *multiple* shards the rewind also discards observations other live
//! shards contributed after boundary `c`, so shared predictions on time
//! windows keep their existing thread-timing sensitivity, nothing worse;
//! queue samples report the replacement's own clocks. Mid-stream lifecycle
//! (admit/retire) is
//! containment-only for now: recovery requires the static query set.
//!
//! [`OwnershipPolicy::StealAtOpen`]: crate::OwnershipPolicy::StealAtOpen
//! [`SharedSizePredictor`]: crate::SharedSizePredictor

use crate::arena::{ChunkBuilder, EventChunk};
use crate::engine::{merge_outputs, ConfigError, ShardedEngine};
use crate::faults::ArmedFaults;
use crate::queue::{spsc, PushOutcome, QueueConsumer, QueueProducer, QueueStats};
use crate::shard::ShardCheckpoint;
use crate::window::WindowId;
use crate::{ComplexEvent, FaultPlan, OperatorStats, Shard, WindowEventDecider};
use espice_events::EventSource;
use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// One shard's failure, reported as a value instead of an unwinding panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFailure {
    /// Index of the failed shard.
    pub shard: usize,
    /// The panic payload, rendered to a string.
    pub message: String,
    /// The stream position (chunk sequence / event position) at which the
    /// failure was first observed — the producer-side hand-off position on
    /// streaming paths, `None` when the position is unknown (slice scans,
    /// or a death only discovered at join time).
    pub position: Option<u64>,
}

impl fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.position {
            Some(position) => write!(
                f,
                "shard {} panicked at stream position {}: {}",
                self.shard, position, self.message
            ),
            None => write!(f, "shard {} panicked: {}", self.shard, self.message),
        }
    }
}

/// A failed engine run, reported as a typed value by the `try_run_*` and
/// resilient entry points (the panicking wrappers format it into their
/// panic message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A rejected configuration value (see [`ConfigError`]).
    Config(ConfigError),
    /// The decider count does not match the engine's shard-major layout.
    DeciderMismatch {
        /// `shards × queries` (or `shards × live queries` on live paths).
        expected: usize,
        /// The decider count actually supplied.
        got: usize,
        /// Whether the expectation counts live queries only (live paths).
        live_only: bool,
    },
    /// The resilient path was invoked on an engine with retired query
    /// slots; recovery rebuilds shards from the static query set, so every
    /// slot must be live ([`ShardedEngine::reset`] revives them).
    RetiredSlots,
    /// One or more shard threads panicked; survivors drained to
    /// completion. The engine's internal state is unspecified afterwards —
    /// call [`ShardedEngine::reset`] before reuse.
    ShardsFailed {
        /// The per-shard failures, in shard order.
        failures: Vec<ShardFailure>,
    },
    /// A shard stopped making progress past the configured deadline
    /// (resilient path only). The engine's shards have been rebuilt fresh.
    Stalled {
        /// Index of the wedged shard.
        shard: usize,
        /// The last stream position the shard had completed.
        last_progress: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Config(error) => write!(f, "{error}"),
            EngineError::DeciderMismatch { expected, got, live_only } => {
                let axis = if *live_only { "live query" } else { "query" };
                write!(
                    f,
                    "need exactly one decider per shard per {axis} (shard-major): \
                     expected {expected}, got {got}"
                )
            }
            EngineError::RetiredSlots => {
                write!(f, "the resilient path needs every query slot live; reset() revives them")
            }
            EngineError::ShardsFailed { failures } => {
                let mut first = true;
                for failure in failures {
                    if !first {
                        write!(f, "; ")?;
                    }
                    first = false;
                    write!(f, "{failure}")?;
                }
                Ok(())
            }
            EngineError::Stalled { shard, last_progress } => write!(
                f,
                "shard {shard} stalled: no progress past stream position {last_progress} \
                 within the deadline"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ConfigError> for EngineError {
    fn from(error: ConfigError) -> Self {
        EngineError::Config(error)
    }
}

/// Renders a panic payload (`Box<dyn Any>`) to a string: the common
/// `&str` / `String` payloads verbatim, anything else a placeholder.
pub(crate) fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&'static str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-shard outcome of a resilient run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardStatus {
    /// The shard ran fault-free.
    Healthy,
    /// The shard crashed and was recovered by chunk replay; its output is
    /// byte-identical to a fault-free run (see the module docs for scope).
    Recovered {
        /// How many times the shard was restarted.
        restarts: u32,
        /// Total chunks replayed across all restarts.
        replayed_chunks: u64,
    },
    /// The shard exhausted its restart budget; the run completed degraded.
    /// The merged output still contains every window this shard flushed
    /// before its final crash.
    Failed(ShardFailure),
}

/// Knobs of [`ShardedEngine::run_source_resilient`].
#[derive(Debug, Clone, Default)]
pub struct ResilienceOptions {
    /// How long a shard may go without completing a chunk boundary before
    /// the run is declared [`EngineError::Stalled`]. `None` uses
    /// [`DEFAULT_STALL_DEADLINE`].
    pub stall_deadline: Option<Duration>,
    /// How many times one shard may be restarted before it is marked
    /// [`ShardStatus::Failed`]. `None` uses [`DEFAULT_MAX_RESTARTS`].
    pub max_restarts: Option<u32>,
    /// Faults to inject into this run (overrides the engine-level plan
    /// installed with [`ShardedEngine::set_fault_plan`] when set).
    pub fault_plan: Option<FaultPlan>,
}

/// Default progress deadline before a wedged shard yields
/// [`EngineError::Stalled`].
pub const DEFAULT_STALL_DEADLINE: Duration = Duration::from_secs(5);

/// Default per-shard restart budget of the resilient path.
pub const DEFAULT_MAX_RESTARTS: u32 = 2;

/// What a resilient run returns: the merged per-query outputs plus the
/// fault/recovery record.
#[derive(Debug)]
pub struct RunReport<D> {
    /// Each query's complex events, merged across shards into
    /// single-operator emission order — byte-identical to the fault-free
    /// run when every shard is `Healthy` or `Recovered`.
    pub complex_events: Vec<Vec<ComplexEvent>>,
    /// Per-shard outcome, indexed by shard.
    pub shard_status: Vec<ShardStatus>,
    /// Total shard restarts across the run.
    pub recoveries: u32,
    /// The final decider row of each shard (slot-major within a shard), or
    /// `None` for shards that failed permanently.
    pub deciders: Vec<Option<Vec<D>>>,
}

impl<D> RunReport<D> {
    /// Whether any shard failed permanently (output is missing that
    /// shard's unflushed windows).
    pub fn is_degraded(&self) -> bool {
        self.shard_status.iter().any(|s| matches!(s, ShardStatus::Failed(_)))
    }

    /// Whether any shard crashed and was recovered.
    pub fn recovered(&self) -> bool {
        self.shard_status.iter().any(|s| matches!(s, ShardStatus::Recovered { .. }))
    }
}

/// The decider/counter snapshot of the latest flushed boundary `c`: what a
/// replacement swaps in when its replay reaches `c`.
#[derive(Debug, Clone)]
struct LatestCell<D> {
    position: u64,
    stats: Vec<OperatorStats>,
    peaks: Vec<usize>,
    deciders: Vec<D>,
}

/// The coordinator-visible state of one shard, shared (via `Arc`) between
/// the producer loop and every incarnation of the shard's drain thread.
#[derive(Debug)]
struct ShardMonitor<D> {
    /// Last chunk boundary the shard completed (watchdog input).
    progress: AtomicU64,
    /// The replay acknowledgement `R̂`: the producer may prune retained
    /// chunks that end at or below the minimum ack across shards.
    ack: AtomicU64,
    /// Set by the coordinator to make the drain thread bail out (stall
    /// teardown). Injected stalls poll it too.
    abort: AtomicBool,
    state: Mutex<MonitorState<D>>,
}

#[derive(Debug)]
struct MonitorState<D> {
    /// Flushed (deduplicated) emissions per slot, in close order.
    flushed: Vec<Vec<ComplexEvent>>,
    /// Highest flushed window id per slot: the replay dedup watermark.
    watermarks: Vec<Option<WindowId>>,
    /// Retained checkpoints, oldest (= `R̂`) first.
    checkpoints: VecDeque<ShardCheckpoint>,
    /// Snapshot of the latest flushed boundary.
    latest: LatestCell<D>,
}

impl<D: Clone> ShardMonitor<D> {
    fn new(slots: usize, initial_checkpoint: ShardCheckpoint, initial_deciders: &[D]) -> Self {
        let latest = LatestCell {
            position: initial_checkpoint.position,
            stats: vec![OperatorStats::default(); slots],
            peaks: vec![0; slots],
            deciders: initial_deciders.to_vec(),
        };
        ShardMonitor {
            progress: AtomicU64::new(initial_checkpoint.position),
            ack: AtomicU64::new(initial_checkpoint.position),
            abort: AtomicBool::new(false),
            state: Mutex::new(MonitorState {
                flushed: vec![Vec::new(); slots],
                watermarks: vec![None; slots],
                checkpoints: VecDeque::from([initial_checkpoint]),
                latest,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MonitorState<D>> {
        // A drain thread can only die between flushes (the flush itself is
        // plain data movement); recover the guard so the coordinator can
        // still read the last consistent snapshot.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The replay phase of a replacement shard: while the stream position is
/// below `swap_at` (= the crashed incarnation's last flushed boundary `c`),
/// events run against pristine decider clones; at `swap_at` the counters
/// are overwritten with the crashed incarnation's snapshot and the driver
/// switches to the `c`-state decider row.
struct PhaseA<D> {
    deciders: Vec<D>,
    swap_at: u64,
    stats: Vec<OperatorStats>,
    peaks: Vec<usize>,
}

/// How many drained events may pass between wall-clock reads while
/// sampling is on (mirrors the non-resilient drain loop).
const CLOCK_STRIDE: u32 = 32;

/// One incarnation of a shard's drain thread on the resilient path.
struct ShardDriver<D: WindowEventDecider + Clone> {
    index: usize,
    shard: Shard,
    /// The "real" decider row: the initial row for the first incarnation,
    /// the `c`-state clones for a replacement.
    deciders: Vec<D>,
    phase_a: Option<PhaseA<D>>,
    outputs: Vec<Vec<ComplexEvent>>,
    monitor: Arc<ShardMonitor<D>>,
    faults: Option<Arc<ArmedFaults>>,
    /// Producer-counted position of the next expected chunk base.
    position: u64,
}

impl<D: WindowEventDecider + Clone> ShardDriver<D> {
    fn aborted(&self) -> bool {
        self.monitor.abort.load(Ordering::Acquire)
    }

    /// Scans one chunk through the fused pass, advances the position, swaps
    /// out of phase A at the boundary when due, and flushes the boundary to
    /// the monitor.
    fn process_chunk(&mut self, chunk: &EventChunk) {
        if let Some(faults) = &self.faults {
            faults.on_handoff(self.index, chunk.base(), Some(&self.monitor.abort));
        }
        let row = match &mut self.phase_a {
            Some(phase) => &mut phase.deciders,
            None => &mut self.deciders,
        };
        let mut row = row.as_mut_slice();
        for event in chunk.events() {
            self.shard.push_fused(event, &mut row, &mut self.outputs);
        }
        self.position = chunk.end();
        self.maybe_swap();
        self.flush_boundary();
    }

    /// Leaves phase A once the replay has reached the crashed incarnation's
    /// last flushed boundary: counters continue from the original's values
    /// and subsequent events run against the `c`-state decider row.
    fn maybe_swap(&mut self) {
        if self.phase_a.as_ref().is_some_and(|phase| self.position >= phase.swap_at) {
            let phase = self.phase_a.take().expect("checked above");
            self.shard.overwrite_slot_counters(&phase.stats, &phase.peaks, phase.swap_at);
            // Closes past the boundary are new work the crashed incarnation
            // never observed: resume feeding the shared size predictor.
            self.shard.set_shared_predictor_muted(false);
        }
    }

    /// Publishes the boundary at `self.position`: dedup-filtered emissions,
    /// a fresh checkpoint (pruned against the boundary's low-water mark),
    /// the ack for chunk retention, and — outside phase A — the
    /// latest-boundary snapshot a future replacement would swap in. Phase A
    /// never touches the snapshot: its pristine deciders carry
    /// replay-local, not global, state.
    fn flush_boundary(&mut self) {
        let low = self.shard.oldest_open_start_pos().unwrap_or(self.position);
        let checkpoint = self.shard.cut_checkpoint(self.position);
        let (stats, peaks) = self.shard.slot_counters();
        let in_phase_a = self.phase_a.is_some();
        let mut state = self.monitor.lock();
        for (slot, lane) in self.outputs.iter_mut().enumerate() {
            if lane.is_empty() {
                continue;
            }
            // Windows close in ascending id order per slot, so the lane's
            // last emission carries its highest id; everything at or below
            // the watermark was already flushed by the crashed incarnation.
            let prior = state.watermarks[slot];
            let highest = lane.last().expect("non-empty lane").window_id();
            for complex in lane.drain(..) {
                if prior.is_none_or(|w| complex.window_id() > w) {
                    state.flushed[slot].push(complex);
                }
            }
            state.watermarks[slot] = Some(prior.map_or(highest, |w| w.max(highest)));
        }
        state.checkpoints.push_back(checkpoint);
        while state.checkpoints.len() > 1 && state.checkpoints[1].position <= low {
            state.checkpoints.pop_front();
        }
        let ack = state.checkpoints.front().expect("pushed above").position;
        if !in_phase_a {
            state.latest = LatestCell {
                position: self.position,
                stats,
                peaks,
                deciders: self.deciders.clone(),
            };
        }
        drop(state);
        self.monitor.ack.store(ack, Ordering::Release);
        self.monitor.progress.store(self.position, Ordering::Release);
    }

    /// The incarnation's whole life: replay the retained snapshot, drain
    /// the live queue until the producer closes it, flush. Returns `None`
    /// when the coordinator aborted the run.
    fn run(
        mut self,
        replay: Vec<Arc<EventChunk>>,
        mut queue: QueueConsumer<Arc<EventChunk>>,
        check_interval: Option<Duration>,
    ) -> Option<(Shard, Vec<D>)> {
        // A checkpoint cut exactly at the swap boundary makes phase A
        // empty: swap before touching any event.
        self.maybe_swap();
        for chunk in &replay {
            if self.aborted() {
                return None;
            }
            self.process_chunk(chunk);
        }
        drop(replay);

        // Live drain, mirroring the non-resilient loop's sampling cadence
        // and backoff. Samples report this incarnation's clocks; the
        // kept/assignment deltas are seeded from the current counters so a
        // replacement's first sample covers only post-recovery work.
        let started = Instant::now();
        let mut idle = Duration::ZERO;
        let mut drained_since_sample: u64 = 0;
        let mut pending_consumed: u64 = 0;
        let mut since_clock_check: u32 = 0;
        let mut next_sample = check_interval;
        let (seed_stats, _) = self.shard.slot_counters();
        let mut last_assignments: u64 = seed_stats.iter().map(|s| s.assignments).sum();
        let mut last_kept: u64 = seed_stats.iter().map(|s| s.kept).sum();

        let mut backoff = crate::queue::Backoff::new();
        loop {
            if self.aborted() {
                return None;
            }
            match queue.pop() {
                Some(chunk) => {
                    backoff.reset();
                    if let Some(faults) = &self.faults {
                        faults.on_handoff(self.index, chunk.base(), Some(&self.monitor.abort));
                    }
                    let Self { shard, deciders, outputs, .. } = &mut self;
                    let mut row = deciders.as_mut_slice();
                    for event in chunk.events() {
                        shard.push_fused(event, &mut row, outputs);
                        drained_since_sample += 1;
                        pending_consumed += 1;
                        if let Some(deadline) = next_sample {
                            since_clock_check += 1;
                            if since_clock_check >= CLOCK_STRIDE {
                                since_clock_check = 0;
                                let elapsed = started.elapsed();
                                if elapsed >= deadline {
                                    let interval = check_interval
                                        .expect("sampling fires only when configured");
                                    next_sample = Some(elapsed + interval);
                                    shard.deliver_sample(
                                        &mut row,
                                        &queue,
                                        &mut drained_since_sample,
                                        &mut pending_consumed,
                                        &mut last_assignments,
                                        &mut last_kept,
                                        elapsed,
                                        idle,
                                    );
                                }
                            }
                        }
                    }
                    queue.consume_events(pending_consumed);
                    pending_consumed = 0;
                    self.position = chunk.end();
                    self.flush_boundary();
                }
                None if queue.is_closed() => {
                    // The close flag is set after the final push; one more
                    // pop settles whether anything raced in.
                    match queue.pop() {
                        Some(chunk) => {
                            let Self { shard, deciders, outputs, .. } = &mut self;
                            let mut row = deciders.as_mut_slice();
                            for event in chunk.events() {
                                shard.push_fused(event, &mut row, outputs);
                                pending_consumed += 1;
                            }
                            queue.consume_events(pending_consumed);
                            pending_consumed = 0;
                            self.position = chunk.end();
                            self.flush_boundary();
                        }
                        None => break,
                    }
                }
                None => {
                    if next_sample.is_some() {
                        let wait = Instant::now();
                        backoff.wait();
                        idle += wait.elapsed();
                        let elapsed = started.elapsed();
                        if let Some(deadline) = next_sample {
                            if elapsed >= deadline {
                                let interval =
                                    check_interval.expect("sampling fires only when configured");
                                next_sample = Some(elapsed + interval);
                                let Self { shard, deciders, .. } = &mut self;
                                let mut row = deciders.as_mut_slice();
                                shard.deliver_sample(
                                    &mut row,
                                    &queue,
                                    &mut drained_since_sample,
                                    &mut pending_consumed,
                                    &mut last_assignments,
                                    &mut last_kept,
                                    elapsed,
                                    idle,
                                );
                            }
                        }
                    } else {
                        backoff.wait();
                    }
                }
            }
        }

        // End of stream: close remaining windows and publish the final
        // boundary (the position does not advance — a flush emits the open
        // windows' matches without consuming events).
        let Self { shard, deciders, outputs, .. } = &mut self;
        let mut row = deciders.as_mut_slice();
        shard.flush_core(&mut row, outputs);
        self.flush_boundary();
        Some((self.shard, self.deciders))
    }
}

/// The completion message a drain thread sends the coordinator.
enum DriveOutcome<D> {
    Finished(Box<(Shard, Vec<D>)>),
    Aborted,
    Panicked(String),
}

/// Coordinator-side bookkeeping for one shard.
struct Seat<D> {
    producer: Option<QueueProducer<Arc<EventChunk>>>,
    monitor: Arc<ShardMonitor<D>>,
    /// Clones of the shard's *initial* deciders, taken at run start: the
    /// replay-phase row of every replacement.
    pristine: Vec<D>,
    restarts: u32,
    replayed_chunks: u64,
    running: bool,
    finished: Option<(Shard, Vec<D>)>,
    failure: Option<ShardFailure>,
    /// Failures that were recovered from (recorded for the report's
    /// `Recovered` status and for diagnostics).
    recovered_failures: Vec<ShardFailure>,
    last_progress: u64,
    last_change: Instant,
    queue_stats: Vec<QueueStats>,
}

impl<D> Seat<D> {
    /// Accumulated queue counters across the seat's incarnations.
    fn merged_queue_stats(&self, capacity: usize) -> QueueStats {
        let mut merged = QueueStats {
            capacity,
            pushed: 0,
            peak_depth: 0,
            peak_event_depth: 0,
            backpressure_events: 0,
        };
        for stats in &self.queue_stats {
            merged.pushed += stats.pushed;
            merged.peak_depth = merged.peak_depth.max(stats.peak_depth);
            merged.peak_event_depth = merged.peak_event_depth.max(stats.peak_event_depth);
            merged.backpressure_events += stats.backpressure_events;
        }
        merged
    }

    fn retire_producer(&mut self) {
        if let Some(producer) = self.producer.take() {
            self.queue_stats.push(producer.stats());
            // Dropping the producer closes the queue.
        }
    }
}

impl ShardedEngine {
    /// Streams `source` through all shards like
    /// [`run_source_per_query`](Self::run_source_per_query), but survives
    /// shard crashes and stalls:
    ///
    /// * a panicking shard is **replaced**: a fresh shard (fresh operators,
    ///   pristine decider clones) replays the retained chunks from the
    ///   shard's low-water acknowledgement and rejoins the live stream with
    ///   output byte-identical to a fault-free run (see the module docs for
    ///   the argument and its scope);
    /// * a shard that keeps crashing past `options.max_restarts` is marked
    ///   [`ShardStatus::Failed`] and the run completes **degraded** — the
    ///   report still carries every window the shard flushed;
    /// * a shard that stops making progress for `options.stall_deadline`
    ///   yields [`EngineError::Stalled`] instead of wedging the producer.
    ///
    /// `deciders` supplies one decider per shard per query (shard-major),
    /// by value: each shard's row is moved into its drain thread and
    /// returned in the report. Unlike the scoped paths this spawns owned
    /// threads, so `D` must be `Clone + Send + 'static` (`Clone` is what
    /// revives a replacement's deciders, the same way
    /// [`reset`](Self::reset) machinery revives engine state).
    ///
    /// The stream is always chunk-framed on this path (chunk capacity 1
    /// produces single-event chunks rather than the broadcast fast path —
    /// a checkpoint is a chunk sequence number, so recovery needs chunks).
    /// Queue sampling ([`set_check_interval`](Self::set_check_interval))
    /// fires during live draining but not during replay.
    ///
    /// # Errors
    ///
    /// [`EngineError::DeciderMismatch`] on a bad decider count,
    /// [`EngineError::RetiredSlots`] if any slot was retired, and
    /// [`EngineError::Stalled`] on a progress deadline violation (the
    /// engine's shards are rebuilt fresh in that case).
    pub fn run_source_resilient<Src, D>(
        &mut self,
        source: &mut Src,
        deciders: Vec<D>,
        options: &ResilienceOptions,
    ) -> Result<RunReport<D>, EngineError>
    where
        Src: EventSource + ?Sized,
        D: WindowEventDecider + Clone + Send + 'static,
    {
        let shard_count = self.shards.len();
        let queries = self.queries.len();
        if self.live.iter().any(|&live| !live) {
            return Err(EngineError::RetiredSlots);
        }
        if deciders.len() != shard_count * queries {
            return Err(EngineError::DeciderMismatch {
                expected: shard_count * queries,
                got: deciders.len(),
                live_only: false,
            });
        }
        let stall_deadline = options.stall_deadline.unwrap_or(DEFAULT_STALL_DEADLINE);
        let max_restarts = options.max_restarts.unwrap_or(DEFAULT_MAX_RESTARTS);
        let faults = options.fault_plan.as_ref().or(self.fault_plan.as_ref()).map(ArmedFaults::arm);
        let kill_after = faults.as_ref().and_then(|f| f.producer_kill_after());
        let capacity = self.queue_capacity;
        let chunk_capacity = self.chunk_capacity;
        let check_interval = self.check_interval;

        // Split the flat shard-major deciders into per-shard rows and move
        // the engine's shards into their drain threads.
        let mut rows: Vec<Vec<D>> = Vec::with_capacity(shard_count);
        let mut iter = deciders.into_iter();
        for _ in 0..shard_count {
            rows.push(iter.by_ref().take(queries).collect());
        }
        let shards = std::mem::take(&mut self.shards);

        let (done_tx, done_rx) = mpsc::channel::<(usize, DriveOutcome<D>)>();
        let mut seats: Vec<Seat<D>> = Vec::with_capacity(shard_count);
        for (index, (shard, row)) in shards.into_iter().zip(rows).enumerate() {
            let pristine = row.clone();
            let monitor = Arc::new(ShardMonitor::new(queries, shard.cut_checkpoint(0), &row));
            let (producer, consumer) = spsc(capacity);
            spawn_drain(
                index,
                shard,
                row,
                None,
                Vec::new(),
                consumer,
                Arc::clone(&monitor),
                faults.clone(),
                check_interval,
                done_tx.clone(),
                0,
            );
            seats.push(Seat {
                producer: Some(producer),
                monitor,
                pristine,
                restarts: 0,
                replayed_chunks: 0,
                running: true,
                finished: None,
                failure: None,
                recovered_failures: Vec::new(),
                last_progress: 0,
                last_change: Instant::now(),
                queue_stats: Vec::new(),
            });
        }

        // Retained chunk log: every sealed chunk above the minimum ack
        // across live shards, pruned after each delivery. This is the
        // recovery source a replacement replays from.
        let mut retained: VecDeque<Arc<EventChunk>> = VecDeque::new();
        let mut produced = 0u64;
        let paced = source.is_paced();
        let mut builder = ChunkBuilder::new(chunk_capacity);
        let mut oldest_pending: Option<Instant> = None;
        // A push re-checks the watchdog at this granularity while a queue
        // stays full.
        let push_slice =
            (stall_deadline / 4).clamp(Duration::from_millis(1), Duration::from_millis(100));

        let produce_result: Result<(), EngineError> = (|| {
            'produce: loop {
                if oldest_pending.is_some_and(|since| since.elapsed() >= PACED_FLUSH_INTERVAL) {
                    if let Some(partial) = builder.seal() {
                        deliver(
                            self,
                            &mut seats,
                            &mut retained,
                            partial,
                            &done_rx,
                            &done_tx,
                            faults.as_ref(),
                            check_interval,
                            stall_deadline,
                            max_restarts,
                            push_slice,
                        )?;
                    }
                    oldest_pending = None;
                }
                if kill_after.is_some_and(|kill| produced >= kill) {
                    // Injected producer kill: drop the partial builder so
                    // the delivered stream is the sealed-chunk prefix.
                    break 'produce;
                }
                let Some(event) = source.next_event() else { break };
                produced += 1;
                if paced && oldest_pending.is_none() {
                    oldest_pending = Some(Instant::now());
                }
                if let Some(full) = builder.push(event) {
                    deliver(
                        self,
                        &mut seats,
                        &mut retained,
                        full,
                        &done_rx,
                        &done_tx,
                        faults.as_ref(),
                        check_interval,
                        stall_deadline,
                        max_restarts,
                        push_slice,
                    )?;
                }
            }
            if kill_after.is_none_or(|kill| produced < kill) {
                if let Some(partial) = builder.seal() {
                    deliver(
                        self,
                        &mut seats,
                        &mut retained,
                        partial,
                        &done_rx,
                        &done_tx,
                        faults.as_ref(),
                        check_interval,
                        stall_deadline,
                        max_restarts,
                        push_slice,
                    )?;
                }
            }
            Ok(())
        })();
        if let Err(error) = produce_result {
            return Err(self.abort_run(seats, &done_rx, error));
        }

        // End of stream: close every live queue and collect completions,
        // restarting crashed shards (their replacement replays and flushes
        // against an already-closed queue) and watching for stalls.
        for seat in &mut seats {
            seat.retire_producer();
        }
        while seats.iter().any(|seat| seat.running) {
            match done_rx.recv_timeout(push_slice) {
                Ok((index, outcome)) => {
                    if let Err(error) = absorb_outcome(
                        self,
                        &mut seats,
                        &retained,
                        index,
                        outcome,
                        faults.as_ref(),
                        check_interval,
                        max_restarts,
                        &done_tx,
                        true,
                    ) {
                        return Err(self.abort_run(seats, &done_rx, error));
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if let Err(error) = check_watchdog(&mut seats, stall_deadline) {
                        return Err(self.abort_run(seats, &done_rx, error));
                    }
                }
                // We hold `done_tx`, so the channel cannot disconnect.
                Err(RecvTimeoutError::Disconnected) => unreachable!("coordinator holds a sender"),
            }
        }
        drop(done_tx);

        // Assemble the report and restore the engine: finished shards move
        // back in (their counters feed `stats()`), failed seats get fresh
        // shards.
        let mut complex: Vec<Vec<Vec<ComplexEvent>>> = Vec::with_capacity(shard_count);
        let mut shard_status = Vec::with_capacity(shard_count);
        let mut deciders_out = Vec::with_capacity(shard_count);
        let mut restored: Vec<Shard> = Vec::with_capacity(shard_count);
        let mut recoveries = 0u32;
        let mut queue_stats = Vec::with_capacity(shard_count);
        for (index, mut seat) in seats.into_iter().enumerate() {
            let flushed = {
                let mut state = seat.monitor.lock();
                std::mem::take(&mut state.flushed)
            };
            complex.push(flushed);
            queue_stats.push(seat.merged_queue_stats(capacity));
            recoveries += seat.restarts;
            match (seat.finished.take(), seat.failure.take()) {
                (Some((shard, row)), _) => {
                    shard_status.push(if seat.restarts > 0 {
                        ShardStatus::Recovered {
                            restarts: seat.restarts,
                            replayed_chunks: seat.replayed_chunks,
                        }
                    } else {
                        ShardStatus::Healthy
                    });
                    restored.push(shard);
                    deciders_out.push(Some(row));
                }
                (None, Some(failure)) => {
                    shard_status.push(ShardStatus::Failed(failure));
                    restored.push(self.fresh_shard(index, shard_count));
                    deciders_out.push(None);
                }
                (None, None) => unreachable!("a non-running seat is finished or failed"),
            }
        }
        self.shards = restored;
        // `builder.base()` is the number of events actually sealed and
        // delivered — equal to `produced` except after an injected producer
        // kill, which drops the partial builder. The engine-level counter
        // must match what the shards (and a fault-free oracle over the
        // delivered prefix) saw.
        self.events_processed += builder.base();
        self.queue_stats = queue_stats;

        Ok(RunReport {
            complex_events: merge_outputs(complex, queries),
            shard_status,
            recoveries,
            deciders: deciders_out,
        })
    }

    /// Stall/error teardown: aborts every drain thread, briefly drains the
    /// completion channel (injected stalls poll the abort flag and exit
    /// early; a genuinely wedged thread is detached), rebuilds the engine's
    /// shards fresh, and passes the error through.
    fn abort_run<D>(
        &mut self,
        mut seats: Vec<Seat<D>>,
        done_rx: &mpsc::Receiver<(usize, DriveOutcome<D>)>,
        error: EngineError,
    ) -> EngineError {
        for seat in &mut seats {
            seat.monitor.abort.store(true, Ordering::Release);
            seat.retire_producer();
        }
        let grace = Instant::now() + Duration::from_millis(250);
        while seats.iter().any(|seat| seat.running) {
            let now = Instant::now();
            if now >= grace {
                break;
            }
            match done_rx.recv_timeout(grace - now) {
                Ok((index, _)) => seats[index].running = false,
                Err(_) => break,
            }
        }
        let shard_count = seats.len();
        self.shards = (0..shard_count).map(|index| self.fresh_shard(index, shard_count)).collect();
        self.queue_stats =
            seats.iter().map(|seat| seat.merged_queue_stats(self.queue_capacity)).collect();
        error
    }
}

/// Mirror of the engine's paced-flush deadline (see `engine.rs`).
const PACED_FLUSH_INTERVAL: Duration = Duration::from_millis(1);

/// Spawns one drain-thread incarnation for shard `index`.
#[allow(clippy::too_many_arguments)]
fn spawn_drain<D>(
    index: usize,
    shard: Shard,
    deciders: Vec<D>,
    phase_a: Option<PhaseA<D>>,
    replay: Vec<Arc<EventChunk>>,
    queue: QueueConsumer<Arc<EventChunk>>,
    monitor: Arc<ShardMonitor<D>>,
    faults: Option<Arc<ArmedFaults>>,
    check_interval: Option<Duration>,
    done_tx: mpsc::Sender<(usize, DriveOutcome<D>)>,
    start_position: u64,
) where
    D: WindowEventDecider + Clone + Send + 'static,
{
    let outputs = vec![Vec::new(); shard.query_count()];
    let driver = ShardDriver {
        index,
        shard,
        deciders,
        phase_a,
        outputs,
        monitor,
        faults,
        position: start_position,
    };
    std::thread::spawn(move || {
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            driver.run(replay, queue, check_interval)
        }));
        let outcome = match result {
            Ok(Some(finished)) => DriveOutcome::Finished(Box::new(finished)),
            Ok(None) => DriveOutcome::Aborted,
            Err(payload) => DriveOutcome::Panicked(panic_message(payload)),
        };
        // The coordinator may have torn the run down already; a closed
        // channel just means nobody is listening any more.
        let _ = done_tx.send((index, outcome));
    });
}

/// Delivers one sealed chunk to every running shard, handling deaths
/// (replace or fail the shard), watching for stalls while a queue stays
/// full, and pruning the retained log afterwards.
#[allow(clippy::too_many_arguments)]
fn deliver<D>(
    engine: &ShardedEngine,
    seats: &mut [Seat<D>],
    retained: &mut VecDeque<Arc<EventChunk>>,
    chunk: Arc<EventChunk>,
    done_rx: &mpsc::Receiver<(usize, DriveOutcome<D>)>,
    done_tx: &mpsc::Sender<(usize, DriveOutcome<D>)>,
    faults: Option<&Arc<ArmedFaults>>,
    check_interval: Option<Duration>,
    stall_deadline: Duration,
    max_restarts: u32,
    push_slice: Duration,
) -> Result<(), EngineError>
where
    D: WindowEventDecider + Clone + Send + 'static,
{
    let events = chunk.len() as u64;
    retained.push_back(Arc::clone(&chunk));
    // Restart generations before this delivery. Handling one shard's death
    // below (`wait_for_death`) absorbs every completion that has already
    // arrived — including another shard's simultaneous panic, whose
    // replacement is spawned with a replay of the retained log, which
    // already contains *this* chunk. Pushing the chunk into that fresh
    // queue as the loop continues would deliver it twice; skipping seats
    // whose generation advanced keeps replay and live delivery disjoint.
    let generations: Vec<u32> = seats.iter().map(|seat| seat.restarts).collect();
    for index in 0..seats.len() {
        if !seats[index].running || seats[index].restarts != generations[index] {
            continue;
        }
        let mut item = Arc::clone(&chunk);
        while let Some(producer) = seats[index].producer.as_mut() {
            match producer.push_blocking_weighted_until(item, events, Instant::now() + push_slice) {
                PushOutcome::Pushed => break,
                PushOutcome::ConsumerGone(_) => {
                    // The drain thread died; its completion message is
                    // imminent. Handle it (replace or fail the shard) and
                    // do NOT re-push this chunk: it is already in the
                    // retained log the replacement replays from.
                    wait_for_death(
                        engine,
                        seats,
                        retained,
                        index,
                        done_rx,
                        done_tx,
                        faults,
                        check_interval,
                        stall_deadline,
                        max_restarts,
                    )?;
                    break;
                }
                PushOutcome::TimedOut(rejected) => {
                    item = rejected;
                    check_watchdog(seats, stall_deadline)?;
                }
            }
        }
    }
    // Prune the retained log below the minimum acknowledgement across
    // running shards (a replaced shard's ack stays frozen at its replay
    // checkpoint until the replacement catches up, holding its chunks).
    if let Some(min_ack) = seats
        .iter()
        .filter(|seat| seat.running)
        .map(|seat| seat.monitor.ack.load(Ordering::Acquire))
        .min()
    {
        while retained.front().is_some_and(|front| front.end() <= min_ack) {
            retained.pop_front();
        }
    }
    Ok(())
}

/// Blocks until shard `index`'s completion message arrives (it is imminent:
/// its queue consumer was observed dropped), absorbing other shards'
/// completions on the way, then replaces or permanently fails the shard.
#[allow(clippy::too_many_arguments)]
fn wait_for_death<D>(
    engine: &ShardedEngine,
    seats: &mut [Seat<D>],
    retained: &VecDeque<Arc<EventChunk>>,
    index: usize,
    done_rx: &mpsc::Receiver<(usize, DriveOutcome<D>)>,
    done_tx: &mpsc::Sender<(usize, DriveOutcome<D>)>,
    faults: Option<&Arc<ArmedFaults>>,
    check_interval: Option<Duration>,
    stall_deadline: Duration,
    max_restarts: u32,
) -> Result<(), EngineError>
where
    D: WindowEventDecider + Clone + Send + 'static,
{
    let deadline = Instant::now() + stall_deadline.max(Duration::from_secs(1));
    loop {
        let now = Instant::now();
        if now >= deadline {
            // The consumer is gone but no completion arrived: treat as a
            // wedge of the unwinding thread.
            let last_progress = seats[index].monitor.progress.load(Ordering::Acquire);
            return Err(EngineError::Stalled { shard: index, last_progress });
        }
        match done_rx.recv_timeout(deadline - now) {
            Ok((done_index, outcome)) => {
                absorb_outcome(
                    engine,
                    seats,
                    retained,
                    done_index,
                    outcome,
                    faults,
                    check_interval,
                    max_restarts,
                    done_tx,
                    false,
                )?;
                if done_index == index {
                    return Ok(());
                }
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => unreachable!("coordinator holds a sender"),
        }
    }
}

/// Applies one completion message: a finished shard is parked for the
/// report; a panicked shard is replaced (fresh shard + checkpoint restore +
/// retained-chunk replay) or, past its restart budget, marked failed.
/// `closed` selects whether the replacement's queue starts closed (end of
/// stream already reached).
#[allow(clippy::too_many_arguments)]
fn absorb_outcome<D>(
    engine: &ShardedEngine,
    seats: &mut [Seat<D>],
    retained: &VecDeque<Arc<EventChunk>>,
    index: usize,
    outcome: DriveOutcome<D>,
    faults: Option<&Arc<ArmedFaults>>,
    check_interval: Option<Duration>,
    max_restarts: u32,
    done_tx: &mpsc::Sender<(usize, DriveOutcome<D>)>,
    closed: bool,
) -> Result<(), EngineError>
where
    D: WindowEventDecider + Clone + Send + 'static,
{
    let shard_count = seats.len();
    let seat = &mut seats[index];
    match outcome {
        DriveOutcome::Finished(finished) => {
            seat.running = false;
            seat.finished = Some(*finished);
            seat.retire_producer();
        }
        DriveOutcome::Aborted => {
            // Only the stall teardown sets the abort flag, and it stops
            // listening; an abort seen here means the thread noticed a
            // flag from a previous teardown attempt — treat as failed.
            seat.running = false;
            seat.failure = Some(ShardFailure {
                shard: index,
                message: "drain thread aborted".to_string(),
                position: Some(seat.monitor.progress.load(Ordering::Acquire)),
            });
            seat.retire_producer();
        }
        DriveOutcome::Panicked(message) => {
            let position = seat.monitor.progress.load(Ordering::Acquire);
            let failure = ShardFailure { shard: index, message, position: Some(position) };
            seat.retire_producer();
            if seat.restarts >= max_restarts {
                seat.running = false;
                seat.failure = Some(failure);
                return Ok(());
            }
            seat.recovered_failures.push(failure);
            seat.restarts += 1;

            // Build the replacement: restore the replay checkpoint R̂,
            // phase A runs pristine decider clones up to the last flushed
            // boundary c, where the c-state snapshot takes over.
            let (checkpoint, rewind, latest) = {
                let mut state = seat.monitor.lock();
                // The shared size predictor rewinds to the *newest* flushed
                // boundary's snapshot, not the replay checkpoint's: windows
                // that opened before the replay checkpoint but closed before
                // that boundary are never re-opened by the replay (their
                // output is watermark-deduped), so rewinding further back
                // would lose their observations for good. The replayed span
                // itself is muted instead — see `Shard::set_shared_predictor_muted`.
                let rewind = state
                    .checkpoints
                    .back()
                    .expect("monitor seeded with a checkpoint")
                    .predictor_snapshots()
                    .to_vec();
                state.checkpoints.truncate(1);
                let checkpoint =
                    state.checkpoints.front().expect("monitor seeded with a checkpoint").clone();
                (checkpoint, rewind, state.latest.clone())
            };
            let replay: Vec<Arc<EventChunk>> = retained
                .iter()
                .filter(|chunk| chunk.base() >= checkpoint.position)
                .cloned()
                .collect();
            // Checkpoints are cut at chunk boundaries, so the replay must
            // anchor exactly at the checkpoint: its first chunk covers the
            // checkpoint position at offset 0 (sequence-stamped chunks are
            // the cursor — see `EventChunk::offset_of`).
            if let Some(first) = replay.first() {
                debug_assert_eq!(
                    first.offset_of(checkpoint.position),
                    Some(0),
                    "replay does not anchor at the restored checkpoint"
                );
            }
            seat.replayed_chunks += replay.len() as u64;
            let mut shard = engine.fresh_shard(index, shard_count);
            shard.restore_checkpoint(&checkpoint);
            shard.restore_predictors(&rewind);
            // Every close the replay re-derives up to the swap boundary was
            // already observed by the crashed incarnation; stay muted until
            // `maybe_swap` hands the counters over.
            shard.set_shared_predictor_muted(true);
            let phase_a = Some(PhaseA {
                deciders: seat.pristine.clone(),
                swap_at: latest.position,
                stats: latest.stats,
                peaks: latest.peaks,
            });
            let (producer, consumer) = spsc(engine.queue_capacity);
            let start_position = checkpoint.position;
            spawn_drain(
                index,
                shard,
                latest.deciders,
                phase_a,
                replay,
                consumer,
                Arc::clone(&seat.monitor),
                faults.cloned(),
                check_interval,
                done_tx.clone(),
                start_position,
            );
            if closed {
                // End of stream already: the replacement replays and
                // flushes against a closed, empty queue.
                drop(producer);
            } else {
                seat.producer = Some(producer);
            }
            seat.last_progress = seat.monitor.progress.load(Ordering::Acquire);
            seat.last_change = Instant::now();
        }
    }
    Ok(())
}

/// Advances every running seat's progress observation; a seat whose
/// progress has not moved within `stall_deadline` fails the run.
fn check_watchdog<D>(seats: &mut [Seat<D>], stall_deadline: Duration) -> Result<(), EngineError> {
    for (index, seat) in seats.iter_mut().enumerate() {
        if !seat.running {
            continue;
        }
        let progress = seat.monitor.progress.load(Ordering::Acquire);
        if progress != seat.last_progress {
            seat.last_progress = progress;
            seat.last_change = Instant::now();
        } else if seat.last_change.elapsed() > stall_deadline {
            return Err(EngineError::Stalled { shard: index, last_progress: progress });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultKind;
    use crate::window::OwnershipPolicy;
    use crate::{Decision, Pattern, Query, WindowMeta, WindowSpec};
    use espice_events::{Event, EventType, SimDuration, SliceSource, Timestamp, VecStream};

    /// A stateless-decision decider with state: the keep/drop choice is a
    /// pure function of `(window id, position)` — so a pristine clone
    /// replays the exact decisions of the crashed incarnation — while the
    /// counters accumulate history, so comparing them end-to-end proves
    /// the recovery restored decider state, not just emissions.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct ParityShed {
        modulo: u64,
        kept: u64,
        dropped: u64,
    }

    impl ParityShed {
        fn new(modulo: u64) -> Self {
            ParityShed { modulo, kept: 0, dropped: 0 }
        }
    }

    impl crate::WindowEventDecider for ParityShed {
        fn decide(&mut self, meta: &WindowMeta, position: usize, _event: &Event) -> Decision {
            if (meta.id + position as u64).is_multiple_of(self.modulo) {
                self.dropped += 1;
                Decision::Drop
            } else {
                self.kept += 1;
                Decision::Keep
            }
        }
    }

    fn query(window: usize, slide: usize) -> Query {
        Query::builder()
            .pattern(Pattern::sequence([EventType::from_index(0), EventType::from_index(1)]))
            .window(WindowSpec::count_sliding(window, slide))
            .build()
    }

    fn stream(len: usize) -> VecStream {
        let events: Vec<Event> = (0..len)
            .map(|i| {
                Event::new(
                    EventType::from_index((i % 3 % 2) as u32),
                    Timestamp::from_secs(i as u64),
                    i as u64,
                )
            })
            .collect();
        VecStream::from_ordered(events)
    }

    fn engine(shards: usize, chunk: usize) -> ShardedEngine {
        let mut engine = ShardedEngine::new(query(6, 2), shards);
        engine.set_chunk_capacity(chunk);
        engine
    }

    fn resilient_run(
        shards: usize,
        chunk: usize,
        len: usize,
        options: &ResilienceOptions,
    ) -> Result<RunReport<ParityShed>, EngineError> {
        let mut e = engine(shards, chunk);
        let deciders = vec![ParityShed::new(3); shards];
        let events = stream(len);
        let mut source = SliceSource::from_stream(&events);
        e.run_source_resilient(&mut source, deciders, options)
    }

    #[test]
    fn fault_free_resilient_run_matches_streaming_path() {
        let shards = 2;
        let mut baseline = engine(shards, 7);
        let mut deciders = vec![ParityShed::new(3); shards];
        let events = stream(100);
        let mut source = SliceSource::from_stream(&events);
        let expected = baseline.run_source_per_query(&mut source, &mut deciders);

        let report = resilient_run(shards, 7, 100, &ResilienceOptions::default()).unwrap();
        assert_eq!(report.complex_events, expected);
        assert_eq!(report.shard_status, vec![ShardStatus::Healthy; shards]);
        assert_eq!(report.recoveries, 0);
        assert!(!report.is_degraded());
        // Final decider state matches the non-resilient run's too.
        let returned: Vec<ParityShed> =
            report.deciders.into_iter().map(|row| row.unwrap().remove(0)).collect();
        assert_eq!(returned, deciders);
    }

    #[test]
    fn injected_panic_recovers_byte_identical() {
        let shards = 2;
        let oracle = resilient_run(shards, 7, 120, &ResilienceOptions::default()).unwrap();

        let plan = FaultPlan::new().with(FaultKind::PanicShard { shard: 1, at_position: 70 });
        let options = ResilienceOptions { fault_plan: Some(plan), ..Default::default() };
        let report = resilient_run(shards, 7, 120, &options).unwrap();

        assert_eq!(report.complex_events, oracle.complex_events);
        assert_eq!(report.deciders[0], oracle.deciders[0]);
        assert_eq!(report.deciders[1], oracle.deciders[1], "recovered decider state diverged");
        assert_eq!(report.shard_status[0], ShardStatus::Healthy);
        assert!(
            matches!(report.shard_status[1], ShardStatus::Recovered { restarts: 1, .. }),
            "expected a recovery, got {:?}",
            report.shard_status[1]
        );
        assert_eq!(report.recoveries, 1);
        assert!(report.recovered());
    }

    #[test]
    fn panic_at_first_chunk_recovers() {
        let oracle = resilient_run(1, 1, 40, &ResilienceOptions::default()).unwrap();
        let plan = FaultPlan::new().with(FaultKind::PanicShard { shard: 0, at_position: 0 });
        let options = ResilienceOptions { fault_plan: Some(plan), ..Default::default() };
        let report = resilient_run(1, 1, 40, &options).unwrap();
        assert_eq!(report.complex_events, oracle.complex_events);
        assert_eq!(report.deciders, oracle.deciders);
        assert!(report.recovered());
    }

    #[test]
    fn injected_stall_yields_stalled_error_within_deadline() {
        let plan = FaultPlan::new().with(FaultKind::StallShard {
            shard: 0,
            at_position: 0,
            millis: 60_000,
        });
        let options = ResilienceOptions {
            stall_deadline: Some(Duration::from_millis(150)),
            fault_plan: Some(plan),
            ..Default::default()
        };
        let started = Instant::now();
        let result = resilient_run(2, 7, 200, &options);
        let elapsed = started.elapsed();
        match result {
            Err(EngineError::Stalled { shard: 0, .. }) => {}
            other => panic!("expected Stalled for shard 0, got {other:?}"),
        }
        assert!(
            elapsed < Duration::from_secs(30),
            "stall detection took {elapsed:?}, deadline was 150ms"
        );
    }

    #[test]
    fn restart_budget_exhaustion_degrades_instead_of_failing() {
        let shards = 2;
        let oracle = resilient_run(shards, 7, 120, &ResilienceOptions::default()).unwrap();
        let plan = FaultPlan::new().with(FaultKind::PanicShard { shard: 1, at_position: 70 });
        let options = ResilienceOptions {
            max_restarts: Some(0),
            fault_plan: Some(plan),
            ..Default::default()
        };
        let report = resilient_run(shards, 7, 120, &options).unwrap();
        assert!(report.is_degraded());
        assert_eq!(report.recoveries, 0);
        assert!(report.deciders[1].is_none());
        match &report.shard_status[1] {
            ShardStatus::Failed(failure) => {
                assert_eq!(failure.shard, 1);
                assert!(failure.message.contains("injected fault"), "{failure}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        // The degraded output still contains exactly the windows flushed
        // before the crash: a subsequence of the fault-free output.
        for (lane, oracle_lane) in report.complex_events.iter().zip(&oracle.complex_events) {
            let mut oracle_iter = oracle_lane.iter();
            for complex in lane {
                assert!(
                    oracle_iter.any(|expected| expected == complex),
                    "degraded output emitted a window the fault-free run never produced"
                );
            }
        }
    }

    #[test]
    fn recovery_rewinds_the_shared_size_predictor() {
        // Time-based windows: the shared size predictor is the one piece of
        // cross-shard prediction state, and it must observe each close
        // exactly once even when recovery replays those closes. With a
        // single shard there is no concurrent contributor, so the
        // post-recovery observation count must equal the fault-free one.
        let run = |plan: Option<FaultPlan>| {
            let query = Query::builder()
                .pattern(Pattern::sequence([EventType::from_index(0), EventType::from_index(1)]))
                .window(WindowSpec::time_on_types(
                    vec![EventType::from_index(0)],
                    SimDuration::from_secs(9),
                ))
                .build();
            let mut e = ShardedEngine::new(query, 1);
            e.set_chunk_capacity(5);
            let events = stream(200);
            let mut source = SliceSource::from_stream(&events);
            let options = ResilienceOptions { fault_plan: plan, ..Default::default() };
            let report =
                e.run_source_resilient(&mut source, vec![ParityShed::new(3)], &options).unwrap();
            let closed = e.stats().merged.windows_closed;
            (report.complex_events, e.shared_size_predictor().observations(), closed)
        };
        let (oracle_out, oracle_observations, oracle_closed) = run(None);
        assert_eq!(oracle_observations, oracle_closed, "fault-free closes observed once each");
        let plan = FaultPlan::new().with(FaultKind::PanicShard { shard: 0, at_position: 100 });
        let (out, observations, closed) = run(Some(plan));
        assert_eq!(out, oracle_out);
        assert_eq!(closed, oracle_closed);
        assert_eq!(observations, oracle_observations, "replayed closes were observed twice");
    }

    #[test]
    fn recovery_replays_stolen_windows_on_the_right_shard() {
        // The checkpoint carries the ownership table, so a replacement
        // re-routes replayed opens exactly as the crashed incarnation did.
        let shards = 4;
        let run = |plan: Option<FaultPlan>| {
            let mut e = engine(shards, 7);
            e.set_ownership_policy(OwnershipPolicy::StealAtOpen);
            let deciders = vec![ParityShed::new(3); shards];
            let events = stream(240);
            let mut source = SliceSource::from_stream(&events);
            let options = ResilienceOptions { fault_plan: plan, ..Default::default() };
            let report = e.run_source_resilient(&mut source, deciders, &options).unwrap();
            (report, e.stolen_windows())
        };
        let (oracle, oracle_stolen) = run(None);
        assert!(oracle_stolen > 0, "the workload must exercise stealing");
        // Stealing only re-partitions windows; the merged output equals the
        // static-ownership run of the same stream.
        let static_oracle = resilient_run(shards, 7, 240, &ResilienceOptions::default()).unwrap();
        assert_eq!(oracle.complex_events, static_oracle.complex_events);

        let plan = FaultPlan::new().with(FaultKind::PanicShard { shard: 2, at_position: 140 });
        let (report, _) = run(Some(plan));
        assert_eq!(report.complex_events, oracle.complex_events);
        assert!(report.recovered());
    }

    #[test]
    fn decider_mismatch_is_reported_with_the_legacy_wording() {
        let mut e = engine(2, 7);
        let events = stream(10);
        let mut source = SliceSource::from_stream(&events);
        let error = e
            .run_source_resilient(&mut source, vec![ParityShed::new(3); 3], &Default::default())
            .unwrap_err();
        assert!(matches!(
            error,
            EngineError::DeciderMismatch { expected: 2, got: 3, live_only: false }
        ));
        assert!(error.to_string().contains("need exactly one decider per shard per query"));
    }

    #[test]
    fn error_display_carries_position_and_shard() {
        let error = EngineError::ShardsFailed {
            failures: vec![ShardFailure {
                shard: 3,
                message: "boom".to_string(),
                position: Some(128),
            }],
        };
        assert_eq!(error.to_string(), "shard 3 panicked at stream position 128: boom");
        let stalled = EngineError::Stalled { shard: 1, last_progress: 64 };
        assert!(stalled.to_string().contains("shard 1 stalled"));
        assert!(stalled.to_string().contains("64"));
    }
}

//! Shared event storage for overlapping windows.
//!
//! With sliding windows of size `w` and slide `s`, every event belongs to
//! `w / s` windows at once. Storing a [`WindowEntry`]-style copy per window
//! makes the operator's per-event work O(overlap); the [`EventRing`] stores
//! each event **once** and lets every open window reference its events as a
//! contiguous index range `[start, start + assigned)` of *global slots*.
//! Because an open window is assigned every event that arrives while it is
//! open, an event's per-window arrival position is simply
//! `slot - window.start` — no per-window bookkeeping beyond the start slot.
//!
//! Shedding decisions are per (event, window): an event can be dropped from
//! one window and kept in another. The ring therefore stores every assigned
//! event and each window records *its own* drops in a [`DropSet`] — a sorted
//! list of dropped positions that is merged away when the window closes.
//!
//! The pruning invariant: the ring retains exactly the slots at or above the
//! oldest open window's start (everything below can no longer be referenced,
//! because windows close in open order). The operator calls
//! [`EventRing::release_before`] after every window close, so the resident
//! entry count is bounded by the span of a single window plus slack — not by
//! the window span times the overlap factor.
//!
//! [`WindowEntry`]: crate::WindowEntry

use espice_events::Event;
use std::collections::vec_deque;
use std::collections::VecDeque;

/// Global index of a slot in an operator's [`EventRing`]. Slot numbers are
/// assigned once per appended event and never reused, so they stay valid
/// across pruning.
pub type SlotIndex = u64;

/// The shared, prunable event store of one operator.
#[derive(Debug, Default)]
pub struct EventRing {
    events: VecDeque<Event>,
    /// Global slot index of `events.front()`.
    base: SlotIndex,
}

impl EventRing {
    /// An empty ring whose next slot is 0.
    pub fn new() -> Self {
        EventRing { events: VecDeque::new(), base: 0 }
    }

    /// The slot index the next appended event will receive.
    pub fn next_slot(&self) -> SlotIndex {
        self.base + self.events.len() as SlotIndex
    }

    /// Appends one event, returning its slot index.
    pub fn push(&mut self, event: Event) -> SlotIndex {
        let slot = self.next_slot();
        self.events.push_back(event);
        slot
    }

    /// Number of events currently resident.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring currently holds no events.
    #[allow(dead_code)] // API completeness next to `len`; used in tests.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates the `len` events starting at slot `start`.
    ///
    /// # Panics
    ///
    /// Panics if any slot of the range has been pruned or not yet been
    /// appended.
    pub fn range(&self, start: SlotIndex, len: usize) -> vec_deque::Iter<'_, Event> {
        assert!(start >= self.base, "slot {start} already pruned (base {})", self.base);
        let offset = (start - self.base) as usize;
        self.events.range(offset..offset + len)
    }

    /// The `len` events starting at slot `start`, as the (at most two)
    /// contiguous slices they occupy in the backing deque. This is the
    /// zero-copy input of [`Matcher::matches_ring`]: a window with an empty
    /// drop set owns exactly this range, and the arrival position of the
    /// `i`-th event across the pair is `i`.
    ///
    /// # Panics
    ///
    /// Panics if any slot of the range has been pruned or not yet been
    /// appended.
    ///
    /// [`Matcher::matches_ring`]: crate::Matcher::matches_ring
    pub fn slices(&self, start: SlotIndex, len: usize) -> (&[Event], &[Event]) {
        assert!(start >= self.base, "slot {start} already pruned (base {})", self.base);
        let offset = (start - self.base) as usize;
        assert!(offset + len <= self.events.len(), "slot range extends past the ring");
        let (front, back) = self.events.as_slices();
        if offset + len <= front.len() {
            (&front[offset..offset + len], &[])
        } else if offset >= front.len() {
            let offset = offset - front.len();
            (&back[offset..offset + len], &[])
        } else {
            (&front[offset..], &back[..offset + len - front.len()])
        }
    }

    /// Drops every event below slot `start` (the start of the oldest window
    /// still open). No-op if those slots are already gone.
    pub fn release_before(&mut self, start: SlotIndex) {
        while self.base < start {
            self.events.pop_front().expect("ring slots below a window start are resident");
            self.base += 1;
        }
    }

    /// Drops every resident event (no window is open). Slot numbering
    /// continues where it left off.
    pub fn release_all(&mut self) {
        self.base = self.next_slot();
        self.events.clear();
    }

    /// Empties the ring **and** restarts slot numbering at 0 (operator
    /// reset).
    pub fn reset(&mut self) {
        self.events.clear();
        self.base = 0;
    }
}

/// The positions a single window dropped, as a sorted list.
///
/// Positions are appended in arrival order, so the list is sorted by
/// construction and closing a window is a linear merge of the ring slice
/// with this list. The sorted list was chosen over a per-window bitset
/// because it costs nothing when shedding is off — the common case — and
/// its iteration is O(dropped) rather than O(assigned); a bitset becomes
/// smaller above a ~25% drop ratio (one u32 per drop vs one bit per
/// assigned slot), and benching that crossover to switch representations
/// adaptively is an open ROADMAP item.
#[derive(Debug, Default, Clone)]
pub struct DropSet {
    positions: Vec<u32>,
}

impl DropSet {
    /// An empty drop set.
    pub fn new() -> Self {
        DropSet { positions: Vec::new() }
    }

    /// Records that `position` was dropped. Positions must be recorded in
    /// increasing order (they arrive in arrival order).
    pub fn push(&mut self, position: usize) {
        let position = u32::try_from(position).expect("window positions fit in u32");
        debug_assert!(
            self.positions.last().is_none_or(|&last| last < position),
            "drop positions must be recorded in increasing order"
        );
        self.positions.push(position);
    }

    /// Number of dropped positions.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether nothing was dropped.
    #[allow(dead_code)] // API completeness next to `len`; used in tests.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The dropped positions in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.positions.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espice_events::{EventType, Timestamp};

    fn ev(seq: u64) -> Event {
        Event::new(EventType::from_index(0), Timestamp::from_secs(seq), seq)
    }

    #[test]
    fn slots_are_stable_across_pruning() {
        let mut ring = EventRing::new();
        for seq in 0..10 {
            assert_eq!(ring.push(ev(seq)), seq);
        }
        ring.release_before(4);
        assert_eq!(ring.len(), 6);
        assert_eq!(ring.next_slot(), 10);
        let seqs: Vec<u64> = ring.range(5, 3).map(Event::seq).collect();
        assert_eq!(seqs, vec![5, 6, 7]);
        // Releasing below the current base is a no-op.
        ring.release_before(2);
        assert_eq!(ring.len(), 6);
    }

    #[test]
    fn release_all_keeps_slot_numbering() {
        let mut ring = EventRing::new();
        ring.push(ev(0));
        ring.push(ev(1));
        ring.release_all();
        assert!(ring.is_empty());
        assert_eq!(ring.next_slot(), 2);
        assert_eq!(ring.push(ev(2)), 2);
    }

    #[test]
    fn reset_restarts_numbering() {
        let mut ring = EventRing::new();
        ring.push(ev(0));
        ring.reset();
        assert!(ring.is_empty());
        assert_eq!(ring.next_slot(), 0);
    }

    #[test]
    fn slices_cover_the_same_events_as_range() {
        let mut ring = EventRing::new();
        for seq in 0..16 {
            ring.push(ev(seq));
        }
        // Force the deque to wrap: prune, then append more.
        ring.release_before(10);
        for seq in 16..24 {
            ring.push(ev(seq));
        }
        for start in 10..24u64 {
            for len in 0..=(24 - start) as usize {
                let via_range: Vec<u64> = ring.range(start, len).map(Event::seq).collect();
                let (head, tail) = ring.slices(start, len);
                let via_slices: Vec<u64> = head.iter().chain(tail.iter()).map(Event::seq).collect();
                assert_eq!(via_slices, via_range, "start {start}, len {len}");
                assert_eq!(head.len() + tail.len(), len);
            }
        }
    }

    #[test]
    #[should_panic(expected = "past the ring")]
    fn slices_reject_out_of_range() {
        let mut ring = EventRing::new();
        ring.push(ev(0));
        let _ = ring.slices(0, 2);
    }

    #[test]
    #[should_panic(expected = "already pruned")]
    fn range_rejects_pruned_slots() {
        let mut ring = EventRing::new();
        for seq in 0..4 {
            ring.push(ev(seq));
        }
        ring.release_before(2);
        let _ = ring.range(1, 2);
    }

    #[test]
    fn drop_set_iterates_in_order() {
        let mut drops = DropSet::new();
        assert!(drops.is_empty());
        drops.push(1);
        drops.push(4);
        drops.push(9);
        assert_eq!(drops.len(), 3);
        assert_eq!(drops.iter().collect::<Vec<_>>(), vec![1, 4, 9]);
    }
}

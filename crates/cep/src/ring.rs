//! Shared event storage for overlapping windows.
//!
//! With sliding windows of size `w` and slide `s`, every event belongs to
//! `w / s` windows at once. Storing a [`WindowEntry`]-style copy per window
//! makes the operator's per-event work O(overlap); the [`EventRing`] stores
//! each event **once** and lets every open window reference its events as a
//! contiguous index range `[start, start + assigned)` of *global slots*.
//! Because an open window is assigned every event that arrives while it is
//! open, an event's per-window arrival position is simply
//! `slot - window.start` — no per-window bookkeeping beyond the start slot.
//!
//! Shedding decisions are per (event, window): an event can be dropped from
//! one window and kept in another. The ring therefore stores every assigned
//! event and each window records *its own* drops in a [`DropSet`] — an
//! adaptive set of dropped positions (sorted list under light shedding, one
//! bit per position under heavy shedding) that is merged away when the
//! window closes.
//!
//! The pruning invariant: the ring retains exactly the slots at or above the
//! oldest open window's start (everything below can no longer be referenced,
//! because windows close in open order). The operator calls
//! [`EventRing::release_before`] after every window close, so the resident
//! entry count is bounded by the span of a single window plus slack — not by
//! the window span times the overlap factor.
//!
//! [`WindowEntry`]: crate::WindowEntry

use espice_events::Event;
use std::collections::vec_deque;
use std::collections::VecDeque;

/// Global index of a slot in an operator's [`EventRing`]. Slot numbers are
/// assigned once per appended event and never reused, so they stay valid
/// across pruning.
pub type SlotIndex = u64;

/// The shared, prunable event store of one operator.
#[derive(Debug, Default)]
pub struct EventRing {
    events: VecDeque<Event>,
    /// Global slot index of `events.front()`.
    base: SlotIndex,
}

impl EventRing {
    /// An empty ring whose next slot is 0.
    pub fn new() -> Self {
        EventRing { events: VecDeque::new(), base: 0 }
    }

    /// The slot index the next appended event will receive.
    pub fn next_slot(&self) -> SlotIndex {
        self.base + self.events.len() as SlotIndex
    }

    /// Appends one event, returning its slot index.
    pub fn push(&mut self, event: Event) -> SlotIndex {
        let slot = self.next_slot();
        self.events.push_back(event);
        slot
    }

    /// Number of events currently resident.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring currently holds no events.
    #[allow(dead_code)] // API completeness next to `len`; used in tests.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates the `len` events starting at slot `start`.
    ///
    /// # Panics
    ///
    /// Panics if any slot of the range has been pruned or not yet been
    /// appended.
    pub fn range(&self, start: SlotIndex, len: usize) -> vec_deque::Iter<'_, Event> {
        assert!(start >= self.base, "slot {start} already pruned (base {})", self.base);
        let offset = (start - self.base) as usize;
        self.events.range(offset..offset + len)
    }

    /// The `len` events starting at slot `start`, as the (at most two)
    /// contiguous slices they occupy in the backing deque. This is the
    /// zero-copy input of [`Matcher::matches_ring`]: a window with an empty
    /// drop set owns exactly this range, and the arrival position of the
    /// `i`-th event across the pair is `i`.
    ///
    /// # Panics
    ///
    /// Panics if any slot of the range has been pruned or not yet been
    /// appended.
    ///
    /// [`Matcher::matches_ring`]: crate::Matcher::matches_ring
    pub fn slices(&self, start: SlotIndex, len: usize) -> (&[Event], &[Event]) {
        assert!(start >= self.base, "slot {start} already pruned (base {})", self.base);
        let offset = (start - self.base) as usize;
        assert!(offset + len <= self.events.len(), "slot range extends past the ring");
        let (front, back) = self.events.as_slices();
        if offset + len <= front.len() {
            (&front[offset..offset + len], &[])
        } else if offset >= front.len() {
            let offset = offset - front.len();
            (&back[offset..offset + len], &[])
        } else {
            (&front[offset..], &back[..offset + len - front.len()])
        }
    }

    /// Drops every event below slot `start` (the start of the oldest window
    /// still open). No-op if those slots are already gone.
    pub fn release_before(&mut self, start: SlotIndex) {
        while self.base < start {
            self.events.pop_front().expect("ring slots below a window start are resident");
            self.base += 1;
        }
    }

    /// Drops every resident event (no window is open). Slot numbering
    /// continues where it left off.
    pub fn release_all(&mut self) {
        self.base = self.next_slot();
        self.events.clear();
    }

    /// Empties the ring **and** restarts slot numbering at 0 (operator
    /// reset).
    pub fn reset(&mut self) {
        self.events.clear();
        self.base = 0;
    }
}

/// Minimum recorded drops before the adaptive [`DropSet`] considers
/// switching to the bitset representation: below this the sorted list is
/// always at least as small, and the conversion cost cannot amortise.
const BITSET_MIN_DROPS: usize = 64;

/// Reciprocal of the drop-ratio crossover: the adaptive set converts once
/// `drops ≥ assigned / BITSET_CROSSOVER_DIVISOR`, i.e. at a ~25% drop
/// ratio, where one bit per assigned position beats one `u32` per drop in
/// both footprint and iteration cost (measured by the `window_overlap`
/// bench; see `dropset_crossover_percent` in BENCH_overlap.json).
const BITSET_CROSSOVER_DIVISOR: usize = 4;

/// The concrete storage behind a [`DropSet`].
#[derive(Debug, Clone)]
enum Repr {
    /// Sorted list of dropped positions — O(dropped) space and iteration,
    /// free when shedding is off (the common case).
    Sorted(Vec<u32>),
    /// One bit per window position up to the highest drop — smaller and
    /// faster to merge above the measured ~25% drop-ratio crossover.
    Bitset {
        /// 64 positions per word; bit `p % 64` of word `p / 64` marks
        /// position `p` as dropped.
        words: Vec<u64>,
        /// Number of set bits (maintained incrementally).
        len: usize,
    },
}

/// The positions a single window dropped, with an adaptive representation.
///
/// Positions are recorded in arrival order, so the initial sorted-list
/// representation is sorted by construction and closing a window is a
/// linear merge of the ring slice with this list; it costs nothing when
/// shedding is off — the common case — and iterates in O(dropped). Under
/// heavy shedding one `u32` per drop loses to one *bit* per assigned
/// position: past a minimum drop count (64) **and** the measured ~25%
/// drop-ratio crossover (see BENCH_overlap.json) the set converts itself
/// to a bitset. The `pinned_*` constructors freeze either representation
/// for benchmarking the crossover itself.
#[derive(Debug, Clone)]
pub struct DropSet {
    repr: Repr,
    /// Whether `push` may switch representations (pinned sets never do).
    adaptive: bool,
}

impl Default for DropSet {
    fn default() -> Self {
        Self::new()
    }
}

impl DropSet {
    /// An empty adaptive drop set (sorted list until the crossover).
    pub fn new() -> Self {
        DropSet { repr: Repr::Sorted(Vec::new()), adaptive: true }
    }

    /// An empty drop set pinned to the sorted-list representation — it
    /// never converts, regardless of density (crossover benchmarking).
    pub fn pinned_sorted() -> Self {
        DropSet { repr: Repr::Sorted(Vec::new()), adaptive: false }
    }

    /// An empty drop set pinned to the bitset representation from the
    /// first push (crossover benchmarking).
    pub fn pinned_bitset() -> Self {
        DropSet { repr: Repr::Bitset { words: Vec::new(), len: 0 }, adaptive: false }
    }

    /// Whether the set currently uses the bitset representation.
    pub fn is_bitset(&self) -> bool {
        matches!(self.repr, Repr::Bitset { .. })
    }

    /// Records that `position` was dropped. Positions must be recorded in
    /// increasing order (they arrive in arrival order). An adaptive set
    /// converts to the bitset here once the drop ratio `len / (position +
    /// 1)` crosses the measured threshold.
    pub fn push(&mut self, position: usize) {
        let position = u32::try_from(position).expect("window positions fit in u32");
        match &mut self.repr {
            Repr::Sorted(positions) => {
                debug_assert!(
                    positions.last().is_none_or(|&last| last < position),
                    "drop positions must be recorded in increasing order"
                );
                positions.push(position);
                // `position + 1` bounds the assigned count from below, so
                // this triggers at the true drop ratio or denser.
                if self.adaptive
                    && positions.len() >= BITSET_MIN_DROPS
                    && positions.len() * BITSET_CROSSOVER_DIVISOR > position as usize
                {
                    let mut words = vec![0u64; position as usize / 64 + 1];
                    for &p in positions.iter() {
                        words[p as usize / 64] |= 1 << (p % 64);
                    }
                    self.repr = Repr::Bitset { words, len: positions.len() };
                }
            }
            Repr::Bitset { words, len } => {
                let word = position as usize / 64;
                if word >= words.len() {
                    words.resize(word + 1, 0);
                }
                let bit = 1u64 << (position % 64);
                debug_assert!(
                    words[word] & bit == 0,
                    "drop positions must be recorded in increasing order"
                );
                words[word] |= bit;
                *len += 1;
            }
        }
    }

    /// Records that the `run_len` consecutive positions starting at `start`
    /// were all dropped — the fast path for the compiled decision kernel,
    /// whose verdict-table walk emits drops as monotone runs. Equivalent to
    /// `run_len` calls to [`push`](DropSet::push) with consecutive
    /// positions, under the same increasing-order contract: `start` must
    /// exceed every previously recorded position.
    pub fn push_run(&mut self, start: usize, run_len: usize) {
        if run_len == 0 {
            return;
        }
        let first = u32::try_from(start).expect("window positions fit in u32");
        let last = u32::try_from(start + run_len - 1).expect("window positions fit in u32");
        match &mut self.repr {
            Repr::Sorted(positions) => {
                debug_assert!(
                    positions.last().is_none_or(|&p| p < first),
                    "drop positions must be recorded in increasing order"
                );
                positions.extend(first..=last);
                // Same crossover test as `push`, evaluated once against the
                // run's final position instead of per element.
                if self.adaptive
                    && positions.len() >= BITSET_MIN_DROPS
                    && positions.len() * BITSET_CROSSOVER_DIVISOR > last as usize
                {
                    let mut words = vec![0u64; last as usize / 64 + 1];
                    for &p in positions.iter() {
                        words[p as usize / 64] |= 1 << (p % 64);
                    }
                    self.repr = Repr::Bitset { words, len: positions.len() };
                }
            }
            Repr::Bitset { words, len } => {
                let first_word = first as usize / 64;
                let last_word = last as usize / 64;
                if last_word >= words.len() {
                    words.resize(last_word + 1, 0);
                }
                let head_mask = !0u64 << (first % 64);
                let tail_mask = !0u64 >> (63 - last % 64);
                if first_word == last_word {
                    let mask = head_mask & tail_mask;
                    debug_assert!(
                        words[first_word] & mask == 0,
                        "drop positions must be recorded in increasing order"
                    );
                    words[first_word] |= mask;
                } else {
                    debug_assert!(
                        words[first_word] & head_mask == 0
                            && words[first_word + 1..].iter().all(|&w| w == 0),
                        "drop positions must be recorded in increasing order"
                    );
                    words[first_word] |= head_mask;
                    for word in &mut words[first_word + 1..last_word] {
                        *word = !0;
                    }
                    words[last_word] |= tail_mask;
                }
                *len += run_len;
            }
        }
    }

    /// Records a **retroactive** drop: `position` was kept at decision time
    /// and is dropped after the fact (partial-match shedding evicting a
    /// match whose constituents are no longer worth keeping). Unlike
    /// [`push`](DropSet::push) there is no ordering contract — the position
    /// is inserted at its sorted place — and inserting an already-dropped
    /// position is a no-op. Does not trigger the adaptive conversion:
    /// retro-drops are rare relative to decision-time drops, and the next
    /// ordinary `push` re-evaluates the crossover anyway.
    pub fn insert(&mut self, position: usize) {
        let position = u32::try_from(position).expect("window positions fit in u32");
        match &mut self.repr {
            Repr::Sorted(positions) => {
                if let Err(index) = positions.binary_search(&position) {
                    positions.insert(index, position);
                }
            }
            Repr::Bitset { words, len } => {
                let word = position as usize / 64;
                if word >= words.len() {
                    words.resize(word + 1, 0);
                }
                let bit = 1u64 << (position % 64);
                if words[word] & bit == 0 {
                    words[word] |= bit;
                    *len += 1;
                }
            }
        }
    }

    /// Whether `position` is recorded as dropped.
    pub fn contains(&self, position: usize) -> bool {
        let Ok(position) = u32::try_from(position) else {
            return false;
        };
        match &self.repr {
            Repr::Sorted(positions) => positions.binary_search(&position).is_ok(),
            Repr::Bitset { words, .. } => {
                let word = position as usize / 64;
                word < words.len() && words[word] & (1 << (position % 64)) != 0
            }
        }
    }

    /// Number of dropped positions.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Sorted(positions) => positions.len(),
            Repr::Bitset { len, .. } => *len,
        }
    }

    /// Whether nothing was dropped.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dropped positions in increasing order (either representation
    /// iterates ascending).
    pub fn iter(&self) -> DropIter<'_> {
        DropIter {
            inner: match &self.repr {
                Repr::Sorted(positions) => IterRepr::Sorted(positions.iter()),
                Repr::Bitset { words, .. } => IterRepr::Bitset {
                    words,
                    word_index: 0,
                    current: words.first().copied().unwrap_or(0),
                },
            },
        }
    }
}

/// Iterator over a [`DropSet`]'s positions in increasing order.
#[derive(Debug)]
pub struct DropIter<'a> {
    inner: IterRepr<'a>,
}

#[derive(Debug)]
enum IterRepr<'a> {
    Sorted(std::slice::Iter<'a, u32>),
    Bitset {
        words: &'a [u64],
        /// Index of the word `current` was loaded from.
        word_index: usize,
        /// Remaining bits of the current word (consumed low to high).
        current: u64,
    },
}

impl Iterator for DropIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match &mut self.inner {
            IterRepr::Sorted(iter) => iter.next().copied(),
            IterRepr::Bitset { words, word_index, current } => loop {
                if *current != 0 {
                    let bit = current.trailing_zeros();
                    *current &= *current - 1;
                    return Some(*word_index as u32 * 64 + bit);
                }
                *word_index += 1;
                if *word_index >= words.len() {
                    return None;
                }
                *current = words[*word_index];
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espice_events::{EventType, Timestamp};

    fn ev(seq: u64) -> Event {
        Event::new(EventType::from_index(0), Timestamp::from_secs(seq), seq)
    }

    #[test]
    fn slots_are_stable_across_pruning() {
        let mut ring = EventRing::new();
        for seq in 0..10 {
            assert_eq!(ring.push(ev(seq)), seq);
        }
        ring.release_before(4);
        assert_eq!(ring.len(), 6);
        assert_eq!(ring.next_slot(), 10);
        let seqs: Vec<u64> = ring.range(5, 3).map(Event::seq).collect();
        assert_eq!(seqs, vec![5, 6, 7]);
        // Releasing below the current base is a no-op.
        ring.release_before(2);
        assert_eq!(ring.len(), 6);
    }

    #[test]
    fn release_all_keeps_slot_numbering() {
        let mut ring = EventRing::new();
        ring.push(ev(0));
        ring.push(ev(1));
        ring.release_all();
        assert!(ring.is_empty());
        assert_eq!(ring.next_slot(), 2);
        assert_eq!(ring.push(ev(2)), 2);
    }

    #[test]
    fn reset_restarts_numbering() {
        let mut ring = EventRing::new();
        ring.push(ev(0));
        ring.reset();
        assert!(ring.is_empty());
        assert_eq!(ring.next_slot(), 0);
    }

    #[test]
    fn slices_cover_the_same_events_as_range() {
        let mut ring = EventRing::new();
        for seq in 0..16 {
            ring.push(ev(seq));
        }
        // Force the deque to wrap: prune, then append more.
        ring.release_before(10);
        for seq in 16..24 {
            ring.push(ev(seq));
        }
        for start in 10..24u64 {
            for len in 0..=(24 - start) as usize {
                let via_range: Vec<u64> = ring.range(start, len).map(Event::seq).collect();
                let (head, tail) = ring.slices(start, len);
                let via_slices: Vec<u64> = head.iter().chain(tail.iter()).map(Event::seq).collect();
                assert_eq!(via_slices, via_range, "start {start}, len {len}");
                assert_eq!(head.len() + tail.len(), len);
            }
        }
    }

    #[test]
    #[should_panic(expected = "past the ring")]
    fn slices_reject_out_of_range() {
        let mut ring = EventRing::new();
        ring.push(ev(0));
        let _ = ring.slices(0, 2);
    }

    #[test]
    #[should_panic(expected = "already pruned")]
    fn range_rejects_pruned_slots() {
        let mut ring = EventRing::new();
        for seq in 0..4 {
            ring.push(ev(seq));
        }
        ring.release_before(2);
        let _ = ring.range(1, 2);
    }

    #[test]
    fn drop_set_iterates_in_order() {
        let mut drops = DropSet::new();
        assert!(drops.is_empty());
        drops.push(1);
        drops.push(4);
        drops.push(9);
        assert_eq!(drops.len(), 3);
        assert_eq!(drops.iter().collect::<Vec<_>>(), vec![1, 4, 9]);
    }

    #[test]
    fn sparse_drop_set_stays_sorted() {
        // Plenty of drops, but density stays well under the crossover.
        let mut drops = DropSet::new();
        for i in 0..200 {
            drops.push(i * 10);
        }
        assert!(!drops.is_bitset());
        assert_eq!(drops.len(), 200);
    }

    #[test]
    fn dense_drop_set_converts_to_bitset() {
        let mut drops = DropSet::new();
        // Drop every other position: 50% density crosses the ~25%
        // threshold as soon as the minimum drop count is reached.
        for i in 0..(2 * BITSET_MIN_DROPS) {
            drops.push(2 * i);
        }
        assert!(drops.is_bitset());
        assert_eq!(drops.len(), 2 * BITSET_MIN_DROPS);
        let expected: Vec<u32> = (0..2 * BITSET_MIN_DROPS as u32).map(|i| 2 * i).collect();
        assert_eq!(drops.iter().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn both_representations_agree_after_conversion() {
        let mut adaptive = DropSet::new();
        let mut sorted = DropSet::pinned_sorted();
        let mut bitset = DropSet::pinned_bitset();
        // Dense prefix (forces the adaptive conversion), sparse tail.
        let positions: Vec<usize> = (0..100).chain((100..2000).filter(|p| p % 13 == 0)).collect();
        for &p in &positions {
            adaptive.push(p);
            sorted.push(p);
            bitset.push(p);
        }
        assert!(adaptive.is_bitset());
        assert!(!sorted.is_bitset());
        assert!(bitset.is_bitset());
        let expected: Vec<u32> = positions.iter().map(|&p| p as u32).collect();
        assert_eq!(adaptive.iter().collect::<Vec<_>>(), expected);
        assert_eq!(sorted.iter().collect::<Vec<_>>(), expected);
        assert_eq!(bitset.iter().collect::<Vec<_>>(), expected);
        assert_eq!(adaptive.len(), positions.len());
        assert_eq!(bitset.len(), positions.len());
    }

    #[test]
    fn push_run_matches_per_position_pushes() {
        // Mixed runs and singletons across word boundaries, in both pinned
        // representations and the adaptive one.
        let runs: &[(usize, usize)] = &[(0, 3), (10, 1), (60, 10), (128, 64), (300, 0), (500, 2)];
        let mut by_run_adaptive = DropSet::new();
        let mut by_run_sorted = DropSet::pinned_sorted();
        let mut by_run_bitset = DropSet::pinned_bitset();
        let mut by_push = DropSet::pinned_sorted();
        for &(start, len) in runs {
            by_run_adaptive.push_run(start, len);
            by_run_sorted.push_run(start, len);
            by_run_bitset.push_run(start, len);
            for p in start..start + len {
                by_push.push(p);
            }
        }
        let expected: Vec<u32> = by_push.iter().collect();
        assert_eq!(by_run_adaptive.iter().collect::<Vec<_>>(), expected);
        assert_eq!(by_run_sorted.iter().collect::<Vec<_>>(), expected);
        assert_eq!(by_run_bitset.iter().collect::<Vec<_>>(), expected);
        assert_eq!(by_run_adaptive.len(), expected.len());
        assert_eq!(by_run_bitset.len(), expected.len());
    }

    #[test]
    fn push_run_triggers_adaptive_conversion() {
        let mut drops = DropSet::new();
        // One dense run comfortably past both crossover conditions.
        drops.push_run(0, 2 * BITSET_MIN_DROPS);
        assert!(drops.is_bitset());
        assert_eq!(drops.len(), 2 * BITSET_MIN_DROPS);
        // Appending another run on the bitset side keeps iterating in order.
        drops.push_run(200, 70);
        let expected: Vec<u32> = (0..2 * BITSET_MIN_DROPS as u32).chain(200..270).collect();
        assert_eq!(drops.iter().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn insert_is_order_agnostic_and_idempotent() {
        for mut drops in [DropSet::new(), DropSet::pinned_bitset()] {
            drops.push(10);
            drops.push(40);
            // Retro-drops arrive out of order, possibly duplicated.
            drops.insert(25);
            drops.insert(3);
            drops.insert(25);
            drops.insert(40);
            assert_eq!(drops.iter().collect::<Vec<_>>(), vec![3, 10, 25, 40]);
            assert_eq!(drops.len(), 4);
            for p in [3usize, 10, 25, 40] {
                assert!(drops.contains(p));
            }
            for p in [0usize, 11, 26, 41, 1000] {
                assert!(!drops.contains(p));
            }
            // Ordinary pushes keep working past the inserted positions.
            drops.push(50);
            assert!(drops.contains(50));
            assert_eq!(drops.len(), 5);
        }
    }

    #[test]
    fn insert_into_bitset_extends_words() {
        let mut drops = DropSet::pinned_bitset();
        drops.insert(200);
        drops.insert(0);
        assert!(drops.contains(200));
        assert!(drops.contains(0));
        assert!(!drops.contains(199));
        assert_eq!(drops.iter().collect::<Vec<_>>(), vec![0, 200]);
    }

    #[test]
    fn pinned_sorted_never_converts() {
        let mut drops = DropSet::pinned_sorted();
        for i in 0..1000 {
            drops.push(i);
        }
        assert!(!drops.is_bitset());
        assert_eq!(drops.iter().collect::<Vec<_>>(), (0..1000).collect::<Vec<_>>());
    }
}

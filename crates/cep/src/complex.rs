//! Complex events: the output of pattern matching.

use crate::WindowId;
use espice_events::{EventType, SequenceNumber, Timestamp};
use serde::{Deserialize, Serialize};

/// A primitive event that contributed to a complex event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Constituent {
    /// Sequence number of the contributing primitive event.
    pub seq: SequenceNumber,
    /// Type of the contributing primitive event.
    pub event_type: EventType,
    /// Position of the contributing event within its window (0-based arrival
    /// index counting every event assigned to the window, kept or dropped).
    /// This is the `P` that feeds the utility model `UT(T, P)`.
    pub position: usize,
}

/// A detected complex event.
///
/// Identity: two complex events are considered *the same situation* when they
/// were detected in the same window from the same set of primitive events.
/// This is the identity used to count false positives and false negatives
/// against the unshedded ground truth (paper §2.1).
///
/// # Example
///
/// ```
/// use espice_cep::{ComplexEvent, Constituent};
/// use espice_events::{EventType, Timestamp};
///
/// let cplx = ComplexEvent::new(
///     7,
///     Timestamp::from_secs(3),
///     vec![Constituent { seq: 10, event_type: EventType::from_index(0), position: 0 }],
/// );
/// assert_eq!(cplx.key(), (7, vec![10]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComplexEvent {
    window_id: WindowId,
    detected_at: Timestamp,
    constituents: Vec<Constituent>,
}

impl ComplexEvent {
    /// Creates a complex event from its constituents.
    ///
    /// # Panics
    ///
    /// Panics if `constituents` is empty.
    pub fn new(
        window_id: WindowId,
        detected_at: Timestamp,
        constituents: Vec<Constituent>,
    ) -> Self {
        assert!(!constituents.is_empty(), "a complex event needs at least one constituent");
        ComplexEvent { window_id, detected_at, constituents }
    }

    /// The window in which this complex event was detected.
    pub fn window_id(&self) -> WindowId {
        self.window_id
    }

    /// Timestamp of the last constituent (the detection time).
    pub fn detected_at(&self) -> Timestamp {
        self.detected_at
    }

    /// The contributing primitive events, in pattern order.
    pub fn constituents(&self) -> &[Constituent] {
        &self.constituents
    }

    /// Number of contributing primitive events.
    pub fn len(&self) -> usize {
        self.constituents.len()
    }

    /// Whether the complex event has no constituents (never true for
    /// constructed values).
    pub fn is_empty(&self) -> bool {
        self.constituents.is_empty()
    }

    /// Stable identity used for ground-truth comparison: the window id plus
    /// the sorted sequence numbers of the constituents.
    pub fn key(&self) -> (WindowId, Vec<SequenceNumber>) {
        let mut seqs: Vec<SequenceNumber> = self.constituents.iter().map(|c| c.seq).collect();
        seqs.sort_unstable();
        (self.window_id, seqs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constituent(seq: u64, ty: u32, pos: usize) -> Constituent {
        Constituent { seq, event_type: EventType::from_index(ty), position: pos }
    }

    #[test]
    fn key_is_order_insensitive() {
        let a =
            ComplexEvent::new(1, Timestamp::ZERO, vec![constituent(5, 0, 1), constituent(3, 1, 0)]);
        let b =
            ComplexEvent::new(1, Timestamp::ZERO, vec![constituent(3, 1, 0), constituent(5, 0, 1)]);
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn key_distinguishes_windows_and_constituents() {
        let a = ComplexEvent::new(1, Timestamp::ZERO, vec![constituent(3, 0, 0)]);
        let other_window = ComplexEvent::new(2, Timestamp::ZERO, vec![constituent(3, 0, 0)]);
        let other_events = ComplexEvent::new(1, Timestamp::ZERO, vec![constituent(4, 0, 0)]);
        assert_ne!(a.key(), other_window.key());
        assert_ne!(a.key(), other_events.key());
    }

    #[test]
    fn accessors() {
        let c = ComplexEvent::new(
            9,
            Timestamp::from_secs(4),
            vec![constituent(1, 0, 0), constituent(2, 1, 3)],
        );
        assert_eq!(c.window_id(), 9);
        assert_eq!(c.detected_at(), Timestamp::from_secs(4));
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.constituents()[1].position, 3);
    }

    #[test]
    #[should_panic(expected = "at least one constituent")]
    fn empty_constituents_rejected() {
        let _ = ComplexEvent::new(0, Timestamp::ZERO, Vec::new());
    }
}

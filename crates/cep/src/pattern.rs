//! Pattern definitions.
//!
//! A pattern is an ordered sequence of steps. Each step matches one or more
//! primitive events drawn from a set of admissible event types, optionally
//! constrained by an attribute predicate. This representation covers every
//! operator used in the paper's evaluation:
//!
//! * `seq(A; B; C)` — three steps, one type each, count 1 (Q3),
//! * `seq(A; A; B; …)` — repetition is just repeated steps (Q4),
//! * `seq(STR; any(n, DF1 … DFm))` — a step with `count = n` over a type set
//!   (Q1, Q2).

use crate::Predicate;
use espice_events::{Event, EventType};
use serde::{Deserialize, Serialize};

/// One step of a pattern.
///
/// A step matches `count` events whose type is in `types` and which satisfy
/// `predicate`. With `distinct_types` set, the matched events must all have
/// different types (e.g. *n different defenders*).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternStep {
    types: Vec<EventType>,
    count: usize,
    distinct_types: bool,
    predicate: Predicate,
}

impl PatternStep {
    /// A step matching a single event of a single type.
    pub fn single(event_type: EventType) -> Self {
        PatternStep {
            types: vec![event_type],
            count: 1,
            distinct_types: false,
            predicate: Predicate::True,
        }
    }

    /// A step matching a single event whose type is any of `types`.
    ///
    /// # Panics
    ///
    /// Panics if `types` is empty.
    pub fn any_single<I: IntoIterator<Item = EventType>>(types: I) -> Self {
        Self::any_of(types, 1, false)
    }

    /// A step matching `count` events whose types are in `types`
    /// (the `any(n, …)` operator). With `distinct_types`, each matched event
    /// must have a different type.
    ///
    /// # Panics
    ///
    /// Panics if `types` is empty or `count` is zero, or if `distinct_types`
    /// is requested with fewer admissible types than `count`.
    pub fn any_of<I: IntoIterator<Item = EventType>>(
        types: I,
        count: usize,
        distinct_types: bool,
    ) -> Self {
        let types: Vec<EventType> = types.into_iter().collect();
        assert!(!types.is_empty(), "a pattern step needs at least one admissible type");
        assert!(count >= 1, "a pattern step must match at least one event");
        if distinct_types {
            assert!(
                types.len() >= count,
                "cannot match {count} distinct types out of {}",
                types.len()
            );
        }
        PatternStep { types, count, distinct_types, predicate: Predicate::True }
    }

    /// Attaches an attribute predicate to this step.
    pub fn with_predicate(mut self, predicate: Predicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// The admissible event types of this step.
    pub fn types(&self) -> &[EventType] {
        &self.types
    }

    /// How many events this step consumes.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether matched events must have pairwise distinct types.
    pub fn distinct_types(&self) -> bool {
        self.distinct_types
    }

    /// The step's predicate.
    pub fn predicate(&self) -> &Predicate {
        &self.predicate
    }

    /// Whether `event` is admissible for this step (type and predicate).
    pub fn admits(&self, event: &Event) -> bool {
        self.types.contains(&event.event_type()) && self.predicate.eval(event)
    }
}

/// An ordered sequence of [`PatternStep`]s.
///
/// # Example
///
/// ```
/// use espice_cep::{Pattern, PatternStep};
/// use espice_events::EventType;
///
/// let a = EventType::from_index(0);
/// let b = EventType::from_index(1);
/// let c = EventType::from_index(2);
///
/// // seq(A; any(2, {B, C}))
/// let pattern = Pattern::new(vec![
///     PatternStep::single(a),
///     PatternStep::any_of([b, c], 2, true),
/// ]);
/// assert_eq!(pattern.len(), 2);
/// assert_eq!(pattern.total_events(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pattern {
    steps: Vec<PatternStep>,
}

impl Pattern {
    /// Creates a pattern from its steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty.
    pub fn new(steps: Vec<PatternStep>) -> Self {
        assert!(!steps.is_empty(), "a pattern needs at least one step");
        Pattern { steps }
    }

    /// Builds a plain sequence pattern from a list of single types
    /// (`seq(T1; T2; …)`), allowing repetitions.
    pub fn sequence<I: IntoIterator<Item = EventType>>(types: I) -> Self {
        let steps: Vec<PatternStep> = types.into_iter().map(PatternStep::single).collect();
        Pattern::new(steps)
    }

    /// The pattern steps.
    pub fn steps(&self) -> &[PatternStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the pattern has no steps (never true for constructed patterns).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total number of primitive events a full match consumes
    /// (the paper's *pattern size*).
    pub fn total_events(&self) -> usize {
        self.steps.iter().map(PatternStep::count).sum()
    }

    /// The set of event types that appear anywhere in the pattern
    /// (deduplicated, in first-appearance order).
    pub fn referenced_types(&self) -> Vec<EventType> {
        let mut seen = Vec::new();
        for step in &self.steps {
            for &ty in step.types() {
                if !seen.contains(&ty) {
                    seen.push(ty);
                }
            }
        }
        seen
    }

    /// How many times `ty` is referenced across all steps, weighted by step
    /// count. Used by the baseline shedder, which scores types by their
    /// repetition in the pattern.
    pub fn type_repetition(&self, ty: EventType) -> usize {
        self.steps
            .iter()
            .filter(|s| s.types().contains(&ty))
            .map(|s| if s.distinct_types() { 1 } else { s.count() })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CmpOp;
    use espice_events::{AttributeValue, Timestamp};

    fn ty(i: u32) -> EventType {
        EventType::from_index(i)
    }

    #[test]
    fn single_step_admits_only_its_type() {
        let step = PatternStep::single(ty(1));
        let match_event = Event::new(ty(1), Timestamp::ZERO, 0);
        let other = Event::new(ty(2), Timestamp::ZERO, 1);
        assert!(step.admits(&match_event));
        assert!(!step.admits(&other));
        assert_eq!(step.count(), 1);
    }

    #[test]
    fn any_of_checks_type_membership() {
        let step = PatternStep::any_of([ty(1), ty(2)], 2, true);
        assert!(step.admits(&Event::new(ty(2), Timestamp::ZERO, 0)));
        assert!(!step.admits(&Event::new(ty(3), Timestamp::ZERO, 1)));
        assert!(step.distinct_types());
    }

    #[test]
    fn predicate_restricts_admission() {
        let step = PatternStep::single(ty(0)).with_predicate(Predicate::attr_cmp(
            "change",
            CmpOp::Gt,
            0.0,
        ));
        let rising = Event::builder(ty(0), Timestamp::ZERO)
            .attr("change", AttributeValue::from(1.0))
            .build();
        let falling = Event::builder(ty(0), Timestamp::ZERO)
            .attr("change", AttributeValue::from(-1.0))
            .build();
        assert!(step.admits(&rising));
        assert!(!step.admits(&falling));
    }

    #[test]
    #[should_panic(expected = "at least one admissible type")]
    fn any_of_rejects_empty_type_set() {
        let _ = PatternStep::any_of(Vec::<EventType>::new(), 1, false);
    }

    #[test]
    #[should_panic(expected = "distinct types")]
    fn any_of_rejects_impossible_distinct_count() {
        let _ = PatternStep::any_of([ty(0)], 2, true);
    }

    #[test]
    fn sequence_builder_and_sizes() {
        let p = Pattern::sequence([ty(0), ty(1), ty(0)]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.total_events(), 3);
        assert_eq!(p.referenced_types(), vec![ty(0), ty(1)]);
        assert_eq!(p.type_repetition(ty(0)), 2);
        assert_eq!(p.type_repetition(ty(1)), 1);
        assert_eq!(p.type_repetition(ty(9)), 0);
    }

    #[test]
    fn total_events_counts_any_steps() {
        let p = Pattern::new(vec![
            PatternStep::single(ty(0)),
            PatternStep::any_of([ty(1), ty(2), ty(3)], 4, false),
        ]);
        assert_eq!(p.total_events(), 5);
        // Non-distinct any: repetition counts the full step count.
        assert_eq!(p.type_repetition(ty(1)), 4);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn pattern_rejects_empty_steps() {
        let _ = Pattern::new(Vec::new());
    }
}

//! Pattern matching over a window's events.
//!
//! The matcher runs once per closed window. It implements sequence matching
//! with *skip-till-next/any-match* semantics (irrelevant events between the
//! constituents are skipped), the **first**/**last** selection policies, the
//! **consumed**/**zero** consumption policies and an upper bound on the number
//! of complex events per window.

use crate::{
    ComplexEvent, Constituent, ConsumptionPolicy, Pattern, PatternStep, Query, SelectionPolicy,
    SkipPolicy, WindowId,
};
use espice_events::{Event, EventType, Timestamp};

/// An event kept in a window, together with its arrival position.
///
/// `position` is the index the event had when it was assigned to the window,
/// counting dropped events as well, so the matcher reports constituent
/// positions that are consistent with the utility model's notion of position.
#[derive(Debug, Clone)]
pub struct WindowEntry {
    /// Arrival position within the window (0-based).
    pub position: usize,
    /// The event itself.
    pub event: Event,
}

/// A borrowed view of a window entry: an arrival position plus a reference
/// into shared event storage.
///
/// The operator stores each event once in a shared ring (see the `ring`
/// module) instead of cloning it into every overlapping window, so at
/// window-close time the matcher runs over *references* into that ring. This
/// is the zero-copy counterpart of [`WindowEntry`]; the owning form remains
/// for callers that assemble windows by hand (tests, tools).
#[derive(Debug, Clone, Copy)]
pub struct EntryRef<'a> {
    /// Arrival position within the window (0-based, dropped events counted).
    pub position: usize,
    /// The event, borrowed from shared storage.
    pub event: &'a Event,
}

/// Result of running the matcher over one window.
#[derive(Debug, Clone, Default)]
pub struct MatchOutcome {
    /// The detected complex events, at most `max_matches_per_window`.
    pub complex_events: Vec<ComplexEvent>,
    /// Number of primitive events that participated in at least one match.
    pub constituents_used: usize,
}

/// A reusable pattern matcher configured from a [`Query`]'s policies.
///
/// # Example
///
/// ```
/// use espice_cep::{Matcher, Pattern, PatternStep, Query, WindowSpec, WindowEntry};
/// use espice_events::{Event, EventType, Timestamp};
///
/// let a = EventType::from_index(0);
/// let b = EventType::from_index(1);
/// let query = Query::builder()
///     .pattern(Pattern::new(vec![PatternStep::single(a), PatternStep::single(b)]))
///     .window(WindowSpec::count_sliding(4, 4))
///     .build();
/// let matcher = Matcher::from_query(&query);
///
/// let entries: Vec<WindowEntry> = vec![
///     WindowEntry { position: 0, event: Event::new(a, Timestamp::from_secs(0), 0) },
///     WindowEntry { position: 1, event: Event::new(b, Timestamp::from_secs(1), 1) },
/// ];
/// let outcome = matcher.matches(0, &entries);
/// assert_eq!(outcome.complex_events.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Matcher {
    pattern: Pattern,
    selection: SelectionPolicy,
    consumption: ConsumptionPolicy,
    skip: SkipPolicy,
    max_matches: usize,
}

/// Internal accessor abstraction: lets the match core index identically
/// into owned [`WindowEntry`] slices, zero-copy [`EntryRef`] slices and the
/// (possibly discontiguous) ring-slice pair of an undropped window, without
/// materialising an intermediate entry vector on any path.
trait EntryList {
    fn len(&self) -> usize;
    fn entry(&self, index: usize) -> EntryRef<'_>;
}

impl EntryList for [WindowEntry] {
    fn len(&self) -> usize {
        self.len()
    }
    fn entry(&self, index: usize) -> EntryRef<'_> {
        let entry = &self[index];
        EntryRef { position: entry.position, event: &entry.event }
    }
}

impl EntryList for [EntryRef<'_>] {
    fn len(&self) -> usize {
        self.len()
    }
    fn entry(&self, index: usize) -> EntryRef<'_> {
        self[index]
    }
}

/// The two contiguous pieces a window's events occupy inside the shared
/// event ring (a `VecDeque` hands out at most two slices). Valid only for
/// windows with an empty drop set: every ring slot in the range belongs to
/// the window, so the arrival position is simply the concatenated index.
struct RingSlices<'a> {
    head: &'a [Event],
    tail: &'a [Event],
}

impl EntryList for RingSlices<'_> {
    fn len(&self) -> usize {
        self.head.len() + self.tail.len()
    }
    fn entry(&self, index: usize) -> EntryRef<'_> {
        let event = if index < self.head.len() {
            &self.head[index]
        } else {
            &self.tail[index - self.head.len()]
        };
        EntryRef { position: index, event }
    }
}

/// An [`EntryList`] read in window order or reversed (the "last" selection
/// policy matches the reversed pattern over the reversed window).
struct Ordered<'a, L: ?Sized> {
    list: &'a L,
    reversed: bool,
}

impl<L: EntryList + ?Sized> Ordered<'_, L> {
    fn len(&self) -> usize {
        self.list.len()
    }

    fn entry(&self, index: usize) -> EntryRef<'_> {
        let index = if self.reversed { self.list.len() - 1 - index } else { index };
        self.list.entry(index)
    }
}

impl Matcher {
    /// Builds a matcher from a query's pattern and policies.
    pub fn from_query(query: &Query) -> Self {
        Matcher {
            pattern: query.pattern().clone(),
            selection: query.selection(),
            consumption: query.consumption(),
            skip: query.skip(),
            max_matches: query.max_matches_per_window(),
        }
    }

    /// The pattern this matcher looks for.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Runs the matcher over the (kept) entries of window `window_id`.
    ///
    /// Entries must be in arrival order. Same cost and behaviour as
    /// [`matches_refs`](Self::matches_refs); both delegate to one generic
    /// core, so neither form pays a conversion copy.
    pub fn matches(&self, window_id: WindowId, entries: &[WindowEntry]) -> MatchOutcome {
        self.matches_impl(window_id, entries)
    }

    /// Runs the matcher over the (kept) entries of window `window_id`,
    /// borrowed from shared storage. Entries must be in arrival order.
    pub fn matches_refs(&self, window_id: WindowId, entries: &[EntryRef<'_>]) -> MatchOutcome {
        self.matches_impl(window_id, entries)
    }

    /// Zero-copy fast path for a window that dropped nothing: runs the
    /// matcher directly over the (at most two) contiguous slices the
    /// window's events occupy in the shared event ring. The arrival
    /// position of the `i`-th event across the concatenation is `i`, so no
    /// per-close `EntryRef` vector needs to be materialised.
    pub fn matches_ring(
        &self,
        window_id: WindowId,
        head: &[Event],
        tail: &[Event],
    ) -> MatchOutcome {
        self.matches_impl(window_id, &RingSlices { head, tail })
    }

    /// The match core, generic over the entry representation.
    fn matches_impl<L: EntryList + ?Sized>(
        &self,
        window_id: WindowId,
        entries: &L,
    ) -> MatchOutcome {
        if entries.len() < self.pattern.total_events() {
            return MatchOutcome::default();
        }

        // The "last" selection policy picks the latest admissible instances.
        // It is implemented by matching the reversed pattern over the reversed
        // window and mapping the result back, which selects, greedily from the
        // end, the latest events that can still complete the pattern.
        let reversed = self.selection == SelectionPolicy::Last;
        let steps: Vec<&PatternStep> = if reversed {
            self.pattern.steps().iter().rev().collect()
        } else {
            self.pattern.steps().iter().collect()
        };
        let ordered = Ordered { list: entries, reversed };

        let mut used = vec![false; ordered.len()];
        let mut min_start = 0usize;
        let mut matches: Vec<Vec<usize>> = Vec::new();

        while matches.len() < self.max_matches {
            let taken = match self.skip {
                SkipPolicy::SkipTillNextMatch => greedy_match(&ordered, &steps, &used, min_start),
                SkipPolicy::Contiguous => contiguous_match(&ordered, &steps, &used, min_start),
            };
            let Some(taken) = taken else { break };
            match self.consumption {
                ConsumptionPolicy::Consumed => {
                    for &i in &taken {
                        used[i] = true;
                    }
                }
                ConsumptionPolicy::Zero => {
                    min_start = taken[0] + 1;
                }
            }
            matches.push(taken);
        }

        let mut used_positions = std::collections::HashSet::new();
        let complex_events = matches
            .into_iter()
            .map(|taken| {
                let mut constituents: Vec<Constituent> = taken
                    .iter()
                    .map(|&i| {
                        let entry = ordered.entry(i);
                        used_positions.insert(entry.position);
                        Constituent {
                            seq: entry.event.seq(),
                            event_type: entry.event.event_type(),
                            position: entry.position,
                        }
                    })
                    .collect();
                let detected_at = taken
                    .iter()
                    .map(|&i| ordered.entry(i).event.timestamp())
                    .max()
                    .unwrap_or(Timestamp::ZERO);
                if reversed {
                    // Matching ran over the reversed pattern; restore pattern order.
                    constituents.reverse();
                }
                ComplexEvent::new(window_id, detected_at, constituents)
            })
            .collect();

        MatchOutcome { complex_events, constituents_used: used_positions.len() }
    }
}

/// Greedy subsequence matching with skip-till-next/any-match semantics: each
/// step takes the earliest admissible, unused events after the previously
/// taken one.
fn greedy_match<L: EntryList + ?Sized>(
    entries: &Ordered<'_, L>,
    steps: &[&PatternStep],
    used: &[bool],
    min_start: usize,
) -> Option<Vec<usize>> {
    let mut taken = Vec::new();
    let mut idx = min_start;
    for step in steps {
        let mut need = step.count();
        let mut matched_types: Vec<EventType> = Vec::with_capacity(need);
        while need > 0 {
            if idx >= entries.len() {
                return None;
            }
            let entry = entries.entry(idx);
            let type_ok =
                !step.distinct_types() || !matched_types.contains(&entry.event.event_type());
            if !used[idx] && type_ok && step.admits(entry.event) {
                taken.push(idx);
                matched_types.push(entry.event.event_type());
                need -= 1;
            }
            idx += 1;
        }
    }
    Some(taken)
}

/// Contiguous matching: the constituents must be adjacent entries. Tries every
/// anchor from `min_start` and returns the first full match.
fn contiguous_match<L: EntryList + ?Sized>(
    entries: &Ordered<'_, L>,
    steps: &[&PatternStep],
    used: &[bool],
    min_start: usize,
) -> Option<Vec<usize>> {
    let total: usize = steps.iter().map(|s| s.count()).sum();
    if entries.len() < total {
        return None;
    }
    'anchor: for anchor in min_start..=(entries.len() - total) {
        let mut idx = anchor;
        let mut taken = Vec::with_capacity(total);
        for step in steps {
            let mut matched_types: Vec<EventType> = Vec::with_capacity(step.count());
            for _ in 0..step.count() {
                let entry = entries.entry(idx);
                let type_ok =
                    !step.distinct_types() || !matched_types.contains(&entry.event.event_type());
                if used[idx] || !type_ok || !step.admits(entry.event) {
                    continue 'anchor;
                }
                taken.push(idx);
                matched_types.push(entry.event.event_type());
                idx += 1;
            }
        }
        return Some(taken);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WindowSpec;
    use espice_events::EventType;

    fn ty(i: u32) -> EventType {
        EventType::from_index(i)
    }

    fn entry(t: u32, pos: usize, seq: u64) -> WindowEntry {
        WindowEntry {
            position: pos,
            event: Event::new(ty(t), Timestamp::from_secs(pos as u64), seq),
        }
    }

    fn matcher(
        pattern: Pattern,
        selection: SelectionPolicy,
        consumption: ConsumptionPolicy,
        max: usize,
    ) -> Matcher {
        let query = Query::builder()
            .pattern(pattern)
            .window(WindowSpec::count_sliding(100, 100))
            .selection(selection)
            .consumption(consumption)
            .max_matches_per_window(max)
            .build();
        Matcher::from_query(&query)
    }

    /// The paper's running example (§2.1): window [A1, A2, B3, B4], pattern
    /// seq(A; B), first selection, consumed consumption detects
    /// cplx13 = (A1, B3) and cplx24 = (A2, B4).
    #[test]
    fn paper_example_first_consumed() {
        let pattern = Pattern::sequence([ty(0), ty(1)]);
        let m = matcher(pattern, SelectionPolicy::First, ConsumptionPolicy::Consumed, 10);
        let entries = vec![entry(0, 0, 1), entry(0, 1, 2), entry(1, 2, 3), entry(1, 3, 4)];
        let outcome = m.matches(0, &entries);
        let keys: Vec<_> = outcome.complex_events.iter().map(ComplexEvent::key).collect();
        assert_eq!(keys, vec![(0, vec![1, 3]), (0, vec![2, 4])]);
        assert_eq!(outcome.constituents_used, 4);
    }

    /// Dropping A1 from the window of the running example yields a different
    /// match for the first pair — the false-positive mechanism of §2.1.
    #[test]
    fn paper_example_dropping_a1_changes_matches() {
        let pattern = Pattern::sequence([ty(0), ty(1)]);
        let m = matcher(pattern, SelectionPolicy::First, ConsumptionPolicy::Consumed, 10);
        // A1 dropped: only A2, B3, B4 remain (positions keep their values).
        let entries = vec![entry(0, 1, 2), entry(1, 2, 3), entry(1, 3, 4)];
        let outcome = m.matches(0, &entries);
        let keys: Vec<_> = outcome.complex_events.iter().map(ComplexEvent::key).collect();
        assert_eq!(keys, vec![(0, vec![2, 3])]);
    }

    #[test]
    fn last_selection_picks_latest_instances() {
        let pattern = Pattern::sequence([ty(0), ty(1)]);
        let m = matcher(pattern, SelectionPolicy::Last, ConsumptionPolicy::Consumed, 1);
        let entries = vec![entry(0, 0, 1), entry(0, 1, 2), entry(1, 2, 3), entry(1, 3, 4)];
        let outcome = m.matches(0, &entries);
        assert_eq!(outcome.complex_events.len(), 1);
        // Latest A (A2, seq 2) with latest B (B4, seq 4).
        assert_eq!(outcome.complex_events[0].key(), (0, vec![2, 4]));
        // Constituents are reported in pattern order (A before B).
        let types: Vec<_> =
            outcome.complex_events[0].constituents().iter().map(|c| c.event_type.index()).collect();
        assert_eq!(types, vec![0, 1]);
    }

    #[test]
    fn zero_consumption_reuses_events() {
        let pattern = Pattern::sequence([ty(0), ty(1)]);
        let m = matcher(pattern, SelectionPolicy::First, ConsumptionPolicy::Zero, 10);
        // A1, B2 : with zero consumption and one B, only one distinct match exists.
        let entries = vec![entry(0, 0, 1), entry(1, 1, 2)];
        assert_eq!(m.matches(0, &entries).complex_events.len(), 1);
        // A1, A2, B3: zero consumption yields (A1,B3) and (A2,B3) — B3 reused.
        let entries = vec![entry(0, 0, 1), entry(0, 1, 2), entry(1, 2, 3)];
        let keys: Vec<_> =
            m.matches(0, &entries).complex_events.iter().map(ComplexEvent::key).collect();
        assert_eq!(keys, vec![(0, vec![1, 3]), (0, vec![2, 3])]);
    }

    #[test]
    fn max_matches_limits_output() {
        let pattern = Pattern::sequence([ty(0), ty(1)]);
        let m = matcher(pattern, SelectionPolicy::First, ConsumptionPolicy::Consumed, 1);
        let entries = vec![entry(0, 0, 1), entry(0, 1, 2), entry(1, 2, 3), entry(1, 3, 4)];
        assert_eq!(m.matches(0, &entries).complex_events.len(), 1);
    }

    #[test]
    fn any_step_requires_distinct_types() {
        // seq(A; any(2, {B, C}) distinct)
        let pattern = Pattern::new(vec![
            PatternStep::single(ty(0)),
            PatternStep::any_of([ty(1), ty(2)], 2, true),
        ]);
        let m = matcher(pattern, SelectionPolicy::First, ConsumptionPolicy::Consumed, 1);
        // Only two B events after the A: distinct requirement cannot be met.
        let entries = vec![entry(0, 0, 1), entry(1, 1, 2), entry(1, 2, 3)];
        assert!(m.matches(0, &entries).complex_events.is_empty());
        // A B C works.
        let entries = vec![entry(0, 0, 1), entry(1, 1, 2), entry(2, 2, 3)];
        let outcome = m.matches(0, &entries);
        assert_eq!(outcome.complex_events.len(), 1);
        assert_eq!(outcome.complex_events[0].len(), 3);
    }

    #[test]
    fn any_step_without_distinct_allows_repeats() {
        let pattern = Pattern::new(vec![
            PatternStep::single(ty(0)),
            PatternStep::any_of([ty(1), ty(2)], 2, false),
        ]);
        let m = matcher(pattern, SelectionPolicy::First, ConsumptionPolicy::Consumed, 1);
        let entries = vec![entry(0, 0, 1), entry(1, 1, 2), entry(1, 2, 3)];
        assert_eq!(m.matches(0, &entries).complex_events.len(), 1);
    }

    #[test]
    fn skip_till_next_match_skips_noise() {
        let pattern = Pattern::sequence([ty(0), ty(1)]);
        let m = matcher(pattern, SelectionPolicy::First, ConsumptionPolicy::Consumed, 1);
        // Noise (type 9) interleaved everywhere.
        let entries =
            vec![entry(9, 0, 1), entry(0, 1, 2), entry(9, 2, 3), entry(9, 3, 4), entry(1, 4, 5)];
        let outcome = m.matches(0, &entries);
        assert_eq!(outcome.complex_events.len(), 1);
        assert_eq!(outcome.complex_events[0].key(), (0, vec![2, 5]));
    }

    #[test]
    fn contiguous_policy_requires_adjacency() {
        let pattern = Pattern::sequence([ty(0), ty(1)]);
        let query = Query::builder()
            .pattern(pattern)
            .window(WindowSpec::count_sliding(10, 10))
            .skip(SkipPolicy::Contiguous)
            .build();
        let m = Matcher::from_query(&query);
        // A . B (gap) — no contiguous match.
        let entries = vec![entry(0, 0, 1), entry(9, 1, 2), entry(1, 2, 3)];
        assert!(m.matches(0, &entries).complex_events.is_empty());
        // noise A B — contiguous match found at anchor 1.
        let entries = vec![entry(9, 0, 1), entry(0, 1, 2), entry(1, 2, 3)];
        assert_eq!(m.matches(0, &entries).complex_events.len(), 1);
    }

    #[test]
    fn sequence_with_repetition_matches_in_order() {
        // seq(A; A; B) — Q4 style repetition.
        let pattern = Pattern::sequence([ty(0), ty(0), ty(1)]);
        let m = matcher(pattern, SelectionPolicy::First, ConsumptionPolicy::Consumed, 1);
        let entries = vec![entry(0, 0, 1), entry(1, 1, 2), entry(0, 2, 3), entry(1, 3, 4)];
        let outcome = m.matches(0, &entries);
        assert_eq!(outcome.complex_events.len(), 1);
        assert_eq!(outcome.complex_events[0].key(), (0, vec![1, 3, 4]));
    }

    #[test]
    fn too_small_window_yields_no_matches() {
        let pattern = Pattern::sequence([ty(0), ty(1), ty(2)]);
        let m = matcher(pattern, SelectionPolicy::First, ConsumptionPolicy::Consumed, 1);
        let entries = vec![entry(0, 0, 1), entry(1, 1, 2)];
        assert!(m.matches(0, &entries).complex_events.is_empty());
    }

    #[test]
    fn matches_ring_equals_refs_for_every_split_point() {
        // An undropped window's ring slice pair must match exactly like the
        // EntryRef materialisation, wherever the VecDeque wrap point falls.
        let pattern = Pattern::sequence([ty(0), ty(1)]);
        for selection in [SelectionPolicy::First, SelectionPolicy::Last] {
            let m = matcher(pattern.clone(), selection, ConsumptionPolicy::Consumed, 10);
            let events: Vec<Event> = [0u32, 9, 0, 1, 9, 1]
                .iter()
                .enumerate()
                .map(|(i, &t)| Event::new(ty(t), Timestamp::from_secs(i as u64), i as u64))
                .collect();
            let refs: Vec<EntryRef<'_>> = events
                .iter()
                .enumerate()
                .map(|(position, event)| EntryRef { position, event })
                .collect();
            let expected = m.matches_refs(7, &refs).complex_events;
            assert!(!expected.is_empty());
            for split in 0..=events.len() {
                let outcome = m.matches_ring(7, &events[..split], &events[split..]);
                assert_eq!(outcome.complex_events, expected, "diverged at split {split}");
            }
        }
    }

    #[test]
    fn detection_time_is_latest_constituent_timestamp() {
        let pattern = Pattern::sequence([ty(0), ty(1)]);
        let m = matcher(pattern, SelectionPolicy::First, ConsumptionPolicy::Consumed, 1);
        let entries = vec![entry(0, 0, 1), entry(1, 5, 2)];
        let outcome = m.matches(3, &entries);
        assert_eq!(outcome.complex_events[0].detected_at(), Timestamp::from_secs(5));
        assert_eq!(outcome.complex_events[0].window_id(), 3);
    }
}

//! One shard of the [`ShardedEngine`]: the per-query operators restricted to
//! the windows this shard owns, plus the fused assignment pass that drives
//! them all from a single event hand-off.
//!
//! Sharding exploits the same property gSPICE and He et al. rely on for
//! per-operator shedding state: windows are processed independently, so the
//! window population can be hash-partitioned across workers without any
//! cross-worker coordination. A shard consumes the *full* event stream (an
//! event can belong to windows of several shards) but materialises, sheds and
//! matches only the windows whose global id it owns.
//!
//! With a multi-query [`QuerySet`] the shard owns one [`Operator`] **per
//! query** and offers every event to all of them in one pass: the event is
//! received once (one queue pop, one clone), each distinct open policy is
//! evaluated once ([`OpenTracker`]s shared across queries whose policies
//! coincide), and each query's own [`WindowEventDecider`] is consulted for
//! that query's windows. This is what amortises the dominant per-event
//! costs — queue hand-off and window-open bookkeeping — across queries the
//! way `decide_batch` amortises per-window costs.
//!
//! # Query slots and lifecycle
//!
//! The per-query axis is a vector of *slots*. A slot is `Live` while its
//! query executes and becomes `Retired` — a frozen statistics snapshot —
//! once the query has been torn down. Lifecycle commands arrive **in-band**
//! ([`ShardInput::Command`] between two events of the shard queue, or a
//! position-anchored command list on the slice path), so every shard
//! applies them at the same stream position: an admitted query's fresh
//! operator sees exactly the suffix of the stream from its admission point
//! (and therefore derives the same window ids as a fresh engine started
//! there), and a retiring query first *drains* — it stops opening windows
//! but keeps feeding its open ones until the last has closed — before its
//! operator and decider are dropped.
//!
//! Static runs drive the slots through monomorphic `&mut [D]` decider rows;
//! live runs own their deciders as boxed rows that grow on admission and
//! shrink on retirement. Both shapes plug into the same fused pass through
//! the crate-internal [`DeciderRow`] abstraction, so the two paths cannot
//! diverge behaviourally.
//!
//! [`ShardedEngine`]: crate::ShardedEngine
//! [`QuerySet`]: crate::QuerySet
//! [`OpenTracker`]: crate::OpenTracker
//! [`ShardInput::Command`]: crate::lifecycle::ShardInput

use crate::faults::ArmedFaults;
use crate::lifecycle::{ShardCommand, ShardInput};
use crate::queue::{Backoff, QueueConsumer};
use crate::shedding::QueueSample;
use crate::window::{
    OpenTracker, OwnershipPolicy, SharedSizePredictor, WindowBalancer, WindowExtent, WindowId,
};
use crate::{
    BoxedDecider, ComplexEvent, Operator, OperatorStats, Query, QueryId, QuerySet,
    WindowEventDecider,
};
use espice_events::{Event, SimDuration};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One entry of the per-query axis.
///
/// The `Live` variant is deliberately unboxed despite its size: slots live
/// in a small per-shard vector that is walked once per event, and boxing
/// the *common* variant would put a pointer chase on the fused hot path to
/// shrink a vector with a handful of entries.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum SlotRuntime {
    /// The query executes; `draining` means it no longer opens windows and
    /// is torn down as soon as its open windows have closed.
    Live { operator: Operator, draining: bool },
    /// The query was retired: its counters survive, its operator does not.
    Retired { stats: OperatorStats, peak_resident: usize },
}

/// Freezes a draining slot: snapshots the operator's counters and drops the
/// operator and (through the row) its decider — the teardown point of a
/// retirement, reached only after every open window has closed.
fn finalize_slot<R: DeciderRow>(state: &mut SlotRuntime, slot: usize, row: &mut R) {
    if let SlotRuntime::Live { operator, .. } = state {
        let stats = operator.stats().clone();
        let peak_resident = operator.peak_resident_entries();
        *state = SlotRuntime::Retired { stats, peak_resident };
        row.remove(slot);
    }
}

/// The decider side of the fused pass, abstracted over row ownership:
/// static runs borrow a monomorphic `&mut [D]` (one decider per slot, rows
/// can neither grow nor shrink), live runs own a `Vec<Option<BoxedDecider>>`
/// that grows on admission and drops deciders on retirement.
pub(crate) trait DeciderRow {
    /// The decider type the fused pass hands to the operators.
    type Decider: WindowEventDecider;

    /// The decider of `slot`, if the slot still has one.
    fn get(&mut self, slot: usize) -> Option<&mut Self::Decider>;

    /// Installs the decider of a freshly admitted slot.
    fn install(&mut self, slot: usize, decider: BoxedDecider);

    /// Drops the decider of a retired slot (with any per-window state it
    /// still holds — by the teardown contract, none).
    fn remove(&mut self, slot: usize);
}

impl<D: WindowEventDecider> DeciderRow for &mut [D] {
    type Decider = D;

    fn get(&mut self, slot: usize) -> Option<&mut D> {
        self.get_mut(slot)
    }

    fn install(&mut self, _slot: usize, _decider: BoxedDecider) {
        panic!("static decider rows cannot grow; admissions need the live run paths");
    }

    fn remove(&mut self, _slot: usize) {
        // Borrowed rows stay with the caller; the slot's decider is simply
        // never consulted again.
    }
}

impl DeciderRow for Vec<Option<BoxedDecider>> {
    type Decider = BoxedDecider;

    fn get(&mut self, slot: usize) -> Option<&mut BoxedDecider> {
        self.get_mut(slot).and_then(Option::as_mut)
    }

    fn install(&mut self, slot: usize, decider: BoxedDecider) {
        assert_eq!(slot, self.len(), "admissions must arrive in slot order");
        self.push(Some(decider));
    }

    fn remove(&mut self, slot: usize) {
        self[slot] = None;
    }
}

/// A single worker of the sharded engine: one operator per query slot,
/// driven by a fused per-event pass.
///
/// # Example
///
/// ```
/// use espice_cep::{Shard, Query, Pattern, WindowSpec, KeepAll};
/// use espice_events::{Event, EventType, Timestamp};
///
/// let a = EventType::from_index(0);
/// let b = EventType::from_index(1);
/// let query = Query::builder()
///     .pattern(Pattern::sequence([a, b]))
///     .window(WindowSpec::count_on_types(vec![a], 2))
///     .build();
/// let events = vec![
///     Event::new(a, Timestamp::from_secs(0), 0),
///     Event::new(b, Timestamp::from_secs(1), 1),
/// ];
/// // Shard 0 of 2 owns window 0 (the only window this stream opens).
/// let mut shard = Shard::new(query, 0, 2);
/// let complex = shard.run_events(&events, &mut KeepAll);
/// assert_eq!(complex.len(), 1);
/// ```
#[derive(Debug)]
pub struct Shard {
    /// The per-query axis, in [`QueryId`] order; grows on admission, never
    /// shrinks (retired slots keep their statistics snapshot).
    slots: Vec<SlotRuntime>,
    /// The shared open-policy trackers: one per *distinct* policy across
    /// the initial query set (admitted queries always get a fresh tracker —
    /// their slide state must start at the admission point, like a fresh
    /// engine's would, so they cannot join a mid-stream group).
    openers: Vec<OpenTracker>,
    /// `open_group[slot]` is the index into `openers` serving that slot.
    open_group: Vec<usize>,
    /// Scratch: the open decisions of the current event, one per opener.
    opens: Vec<bool>,
    /// This shard's index within the engine.
    index: usize,
    /// Total number of shards in the engine.
    count: usize,
    /// Events this shard received (one per fused pass). Slot counters
    /// freeze at retirement, so this is the only counter that keeps
    /// counting once every slot has retired mid-run.
    events_seen: u64,
    /// The dynamic ownership table, present iff the shard runs
    /// [`OwnershipPolicy::StealAtOpen`]. `None` is the static-modulo
    /// default: the operators derive ownership themselves and the fused
    /// pass pays nothing for the feature.
    balancer: Option<WindowBalancer>,
    /// The engine's window-size hint, mirrored here so the balancer's
    /// projected window cost matches the predictors' seed for time-based
    /// extents (identical on every shard — the engine applies one hint).
    size_hint: Option<usize>,
    /// Windows this shard materialised that the static partition would
    /// have placed elsewhere (always 0 under static modulo).
    stolen: u64,
}

/// Projected size of a window whose extent is time-based and for which no
/// engine-level hint was supplied. Mirrors the operators' and the engine's
/// predictor seed so the balancer's cost model agrees with
/// `QueueSample::predicted_window_size` before any window has closed.
const FALLBACK_SIZE_HINT: usize = 100;

impl Shard {
    /// Creates shard `index` of `count` for a single `query`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `index` is out of range.
    pub fn new(query: Query, index: usize, count: usize) -> Self {
        Self::for_queries(&QuerySet::single(query), index, count)
    }

    /// Creates shard `index` of `count` for a whole query set: one operator
    /// per query, with open-policy bookkeeping shared across queries whose
    /// policies are equal.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `index` is out of range.
    pub fn for_queries(queries: &QuerySet, index: usize, count: usize) -> Self {
        let mut openers: Vec<OpenTracker> = Vec::new();
        let mut open_group = Vec::with_capacity(queries.len());
        let slots = queries
            .iter()
            .map(|(query_id, query)| {
                let policy = query.window().open_policy();
                let group = match openers.iter().position(|t| t.policy() == policy) {
                    Some(existing) => existing,
                    None => {
                        openers.push(OpenTracker::new(policy.clone()));
                        openers.len() - 1
                    }
                };
                open_group.push(group);
                SlotRuntime::Live {
                    operator: Operator::for_query(query.clone(), query_id, index, count),
                    draining: false,
                }
            })
            .collect();
        let opens = vec![false; openers.len()];
        Shard {
            slots,
            openers,
            open_group,
            opens,
            index,
            count,
            events_seen: 0,
            balancer: None,
            size_hint: None,
            stolen: 0,
        }
    }

    /// Selects how this shard assigns newly opened windows
    /// ([`OwnershipPolicy::StaticModulo`] is the construction default).
    /// Every shard of an engine must run the same policy, installed before
    /// the first event; the engine applies it at build time.
    ///
    /// # The load signal, and why it is coordination-free
    ///
    /// [`OwnershipPolicy::StealAtOpen`] routes every opening
    /// `(query, window)` pair to the shard with the least *outstanding
    /// projected work*. The signal is the deterministic projection of the
    /// same per-shard quantities the drain loop already measures into
    /// [`QueueSample`]s:
    ///
    /// * `QueueSample::predicted_window_size` — the per-slot projected
    ///   event span of a window — is exactly the cost the balancer charges
    ///   for each assignment: the query's `expected_size()` for count
    ///   extents, the engine's window-size hint (the predictors' seed,
    ///   mirrored via [`set_window_size_hint`](Self::set_window_size_hint))
    ///   for time extents.
    /// * The sample's `depth` / `busy` / `drained`-vs-`kept` deltas
    ///   describe how much granted work a shard still has in flight; the
    ///   balancer's per-shard load — the sum of the remaining projected
    ///   spans of its live ownership entries, retired as the stream passes
    ///   their projected close — is the same quantity, *projected forward
    ///   from the open positions* instead of measured after the fact.
    ///
    /// The measured samples themselves cannot feed the decision: each
    /// shard samples its own queue at its own wall-clock cadence, so two
    /// shards consulting live measurements would compute different
    /// assignments and a window would be materialised twice or not at all.
    /// By deriving the signal purely from `(open position, timestamp, size
    /// hint)` — all pure functions of the shared stream — every shard's
    /// private [`WindowBalancer`] clone computes the identical ownership
    /// table in lockstep, with **no cross-shard communication on the hot
    /// path**. [`OpenTracker`] decisions stay shared exactly as before;
    /// only the owner of each window changes. Merged output is
    /// byte-identical to static ownership because any single-owner
    /// partition of the deterministic window-id space merges back into
    /// single-operator order.
    ///
    /// # Panics
    ///
    /// Panics if the shard has already processed events (the table is
    /// seeded from stream position 0; switching mid-run would diverge
    /// ownership across shards).
    pub fn set_ownership_policy(&mut self, policy: OwnershipPolicy) {
        assert_eq!(self.events_seen, 0, "ownership policy must be set before the first event");
        self.balancer = match policy {
            OwnershipPolicy::StaticModulo => None,
            OwnershipPolicy::StealAtOpen => Some(WindowBalancer::new(self.count)),
        };
        self.stolen = 0;
    }

    /// The ownership policy this shard runs.
    pub fn ownership_policy(&self) -> OwnershipPolicy {
        if self.balancer.is_some() {
            OwnershipPolicy::StealAtOpen
        } else {
            OwnershipPolicy::StaticModulo
        }
    }

    /// Windows this shard materialised that static modulo would have
    /// placed on another shard. Always 0 under
    /// [`OwnershipPolicy::StaticModulo`].
    pub fn stolen_windows(&self) -> u64 {
        self.stolen
    }

    /// This shard's index within the engine.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Length of the per-query axis: every slot the shard has ever carried,
    /// live or retired.
    pub fn query_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of slots still executing (not retired).
    pub fn live_count(&self) -> usize {
        self.slots.iter().filter(|s| matches!(s, SlotRuntime::Live { .. })).count()
    }

    /// The operator of query 0 (the only operator of a single-query shard).
    ///
    /// # Panics
    ///
    /// Panics if slot 0 has been retired.
    pub fn operator(&self) -> &Operator {
        match &self.slots[0] {
            SlotRuntime::Live { operator, .. } => operator,
            SlotRuntime::Retired { .. } => panic!("slot 0 has been retired"),
        }
    }

    /// The counters of one query slot: the live operator's counters, or the
    /// frozen snapshot of a retired slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn slot_stats(&self, slot: usize) -> &OperatorStats {
        match &self.slots[slot] {
            SlotRuntime::Live { operator, .. } => operator.stats(),
            SlotRuntime::Retired { stats, .. } => stats,
        }
    }

    /// Number of distinct open policies across the shard's queries — the
    /// number of `should_open` evaluations each event costs, regardless of
    /// how many queries ride on them.
    pub fn open_groups(&self) -> usize {
        self.openers.len()
    }

    /// Counters of this shard, merged over its per-query slots (retired
    /// slots included). `events_processed` counts the events the shard
    /// itself received, exactly once each — not multiplied by the query
    /// count, and still counting after every slot has retired (slot
    /// counters freeze at teardown); all other counters are disjoint sums.
    pub fn stats(&self) -> OperatorStats {
        let mut merged = OperatorStats::default();
        for slot in 0..self.slots.len() {
            merged.merge(self.slot_stats(slot));
        }
        merged.events_processed = self.events_seen;
        merged
    }

    /// Peak number of events resident in this shard's event rings during
    /// the run, summed over slots (per-query peaks need not coincide in
    /// time, so this is an upper bound; retired slots contribute their
    /// final peak).
    pub fn peak_resident_entries(&self) -> usize {
        self.slots
            .iter()
            .map(|slot| match slot {
                SlotRuntime::Live { operator, .. } => operator.peak_resident_entries(),
                SlotRuntime::Retired { peak_resident, .. } => *peak_resident,
            })
            .sum()
    }

    /// Seeds every live operator's window-size prediction (relevant for
    /// time-based, variable-size windows). The hint is mirrored into the
    /// balancer's cost model so projected window spans match the
    /// predictors' seed.
    pub fn set_window_size_hint(&mut self, hint: usize) {
        self.size_hint = Some(hint.max(1));
        for slot in &mut self.slots {
            if let SlotRuntime::Live { operator, .. } = slot {
                operator.set_window_size_hint(hint);
            }
        }
    }

    /// Switches slot `query`'s window-size prediction to an engine-shared
    /// estimator (see [`Operator::share_size_predictor`]).
    ///
    /// # Panics
    ///
    /// Panics if `query` is out of range or retired.
    pub fn share_size_predictor_for(&mut self, query: usize, shared: Arc<SharedSizePredictor>) {
        match &mut self.slots[query] {
            SlotRuntime::Live { operator, .. } => operator.share_size_predictor(shared),
            SlotRuntime::Retired { .. } => panic!("slot {query} has been retired"),
        }
    }

    /// Switches query 0's window-size prediction to an engine-shared
    /// estimator (single-query compatibility wrapper).
    pub fn share_size_predictor(&mut self, shared: Arc<SharedSizePredictor>) {
        self.share_size_predictor_for(0, shared);
    }

    /// Offers one event to every live slot's operator: each distinct open
    /// policy is evaluated once, then every operator gets the event with
    /// its group's shared open decision (forced to "don't open" while the
    /// slot drains). `outputs[slot]` receives the complex events the slot
    /// emitted; slots whose last open window closes while draining are torn
    /// down on the spot.
    pub(crate) fn push_fused<R: DeciderRow>(
        &mut self,
        event: &Event,
        row: &mut R,
        outputs: &mut [Vec<ComplexEvent>],
    ) {
        for (tracker, open) in self.openers.iter_mut().zip(self.opens.iter_mut()) {
            *open = tracker.should_open(event);
        }
        self.push_fused_preopened(event, row, outputs);
    }

    /// [`push_fused`](Self::push_fused) with the per-group open decisions
    /// already evaluated into `self.opens`. The span pass scans every
    /// opener exactly once per event to find span boundaries, so the
    /// opening events it routes here must not advance the trackers again.
    fn push_fused_preopened<R: DeciderRow>(
        &mut self,
        event: &Event,
        row: &mut R,
        outputs: &mut [Vec<ComplexEvent>],
    ) {
        // Stream position of this event (0-based). Every shard scans the
        // full stream, so this equals the producer-counted position — the
        // coordinate the ownership table is seeded from.
        let position = self.events_seen;
        self.events_seen += 1;
        let opens = &self.opens;
        let groups = &self.open_group;
        let mut balancer = self.balancer.as_mut();
        let size_hint = self.size_hint;
        let index = self.index;
        for (slot, state) in self.slots.iter_mut().enumerate() {
            let finished = match state {
                SlotRuntime::Live { operator, draining } => {
                    let decider = row.get(slot).expect("live slot without a decider");
                    let open = !*draining && opens[groups[slot]];
                    let emitted = match balancer.as_deref_mut() {
                        // Static modulo: the operator derives ownership
                        // itself — the zero-cost default path.
                        None => operator.push_opened(event, open, decider),
                        // Steal-at-open: consult the ownership table for
                        // every opening window, in slot order — identical
                        // consult sequence and inputs on every shard, so
                        // the tables stay in lockstep.
                        Some(balancer) => {
                            let owned = open && {
                                let window = operator.query().window();
                                let hint = window
                                    .expected_size()
                                    .or(size_hint)
                                    .unwrap_or(FALLBACK_SIZE_HINT);
                                let close_ts = match window.extent() {
                                    WindowExtent::Time(dur) => Some(event.timestamp() + dur),
                                    WindowExtent::Count(_) => None,
                                };
                                let owner =
                                    balancer.assign(position, event.timestamp(), hint, close_ts);
                                owner == index
                            };
                            if owned
                                && operator.next_window_id() % self.count as u64
                                    != self.index as u64
                            {
                                self.stolen += 1;
                            }
                            operator.push_routed(event, open, owned, decider)
                        }
                    };
                    outputs[slot].extend(emitted);
                    *draining && operator.open_windows() == 0
                }
                SlotRuntime::Retired { .. } => false,
            };
            if finished {
                finalize_slot(state, slot, row);
            }
        }
    }

    /// The span-fused pass: drives a stream slice through every slot,
    /// deciding whole *spans* — maximal stretches on which no opener group
    /// opens a window — against each open window at once via
    /// [`Operator::push_span`], instead of rebuilding per-event batch
    /// requests.
    ///
    /// Every opener is still evaluated once per event, in tracker order, so
    /// slide state advances exactly as on the per-event path; events where
    /// *any* group opens are routed through
    /// [`push_fused_preopened`](Self::push_fused_preopened), which keeps
    /// the [`WindowBalancer`](crate::WindowBalancer) consult sequence in
    /// lockstep across shards (the balancer is only ever consulted at
    /// opening events). Draining slots take the per-event path inside the
    /// span too: their teardown must freeze counters at the exact event
    /// that closes the last window.
    pub(crate) fn run_span_fused<R: DeciderRow>(
        &mut self,
        events: &[Event],
        row: &mut R,
        outputs: &mut [Vec<ComplexEvent>],
    ) {
        let mut span_start = 0usize;
        for (offset, event) in events.iter().enumerate() {
            let mut any_open = false;
            for (tracker, open) in self.openers.iter_mut().zip(self.opens.iter_mut()) {
                *open = tracker.should_open(event);
                any_open |= *open;
            }
            if any_open {
                if span_start < offset {
                    self.push_span_slots(&events[span_start..offset], row, outputs);
                }
                self.push_fused_preopened(event, row, outputs);
                span_start = offset + 1;
            }
        }
        if span_start < events.len() {
            self.push_span_slots(&events[span_start..], row, outputs);
        }
    }

    /// Offers one opens-free span to every live slot. Non-draining slots
    /// take the straight-line [`Operator::push_span`] kernel; draining
    /// slots replay the span per event so the slot tears down at the exact
    /// event that closes its last window, with the later span events never
    /// reaching it — just as on the per-event path.
    fn push_span_slots<R: DeciderRow>(
        &mut self,
        span: &[Event],
        row: &mut R,
        outputs: &mut [Vec<ComplexEvent>],
    ) {
        self.events_seen += span.len() as u64;
        for (slot, state) in self.slots.iter_mut().enumerate() {
            let finished = match state {
                SlotRuntime::Live { operator, draining } => {
                    let decider = row.get(slot).expect("live slot without a decider");
                    if *draining {
                        let mut finished = false;
                        for event in span {
                            outputs[slot]
                                .extend(operator.push_routed(event, false, false, decider));
                            if operator.open_windows() == 0 {
                                finished = true;
                                break;
                            }
                        }
                        finished
                    } else {
                        operator.push_span(span, decider, &mut outputs[slot]);
                        false
                    }
                }
                SlotRuntime::Retired { .. } => false,
            };
            if finished {
                finalize_slot(state, slot, row);
            }
        }
    }

    /// Applies one in-band lifecycle command at the current stream
    /// position. Admissions append a fresh slot (operator, opener, output
    /// lane, decider); retirements put a slot into draining (and tear it
    /// down immediately when it has no open windows).
    fn apply_command<R: DeciderRow>(
        &mut self,
        command: ShardCommand,
        row: &mut R,
        outputs: &mut Vec<Vec<ComplexEvent>>,
    ) {
        match command {
            ShardCommand::Admit { slot, query, decider, predictor } => {
                let slot = slot as usize;
                assert_eq!(slot, self.slots.len(), "admissions must arrive in slot order");
                // A fresh tracker, never a shared group: the admitted
                // query's slide state must start at the admission point,
                // exactly as a fresh engine's would — an initial-set
                // tracker carries mid-stream state.
                self.openers.push(OpenTracker::new(query.window().open_policy().clone()));
                self.opens.push(false);
                self.open_group.push(self.openers.len() - 1);
                let mut operator =
                    Operator::for_query(query, slot as QueryId, self.index, self.count);
                operator.share_size_predictor(predictor);
                self.slots.push(SlotRuntime::Live { operator, draining: false });
                row.install(slot, decider);
                outputs.push(Vec::new());
            }
            ShardCommand::Retire { slot } => {
                let slot = slot as usize;
                let state = &mut self.slots[slot];
                let finished = match state {
                    SlotRuntime::Live { operator, draining } => {
                        *draining = true;
                        operator.open_windows() == 0
                    }
                    // The engine validates handles before broadcasting, so
                    // a retired slot can only be seen here after an engine
                    // bug; tolerate it instead of poisoning the drain.
                    SlotRuntime::Retired { .. } => false,
                };
                if finished {
                    finalize_slot(state, slot, row);
                }
            }
        }
    }

    /// Closes all still-open windows of every live slot (end of stream) and
    /// tears down the slots that were draining.
    pub(crate) fn flush_core<R: DeciderRow>(
        &mut self,
        row: &mut R,
        outputs: &mut [Vec<ComplexEvent>],
    ) {
        for (slot, state) in self.slots.iter_mut().enumerate() {
            let finished = match state {
                SlotRuntime::Live { operator, draining } => {
                    let decider = row.get(slot).expect("live slot without a decider");
                    outputs[slot].extend(operator.flush(decider));
                    *draining
                }
                SlotRuntime::Retired { .. } => continue,
            };
            if finished {
                finalize_slot(state, slot, row);
            }
        }
    }

    /// The shared slice pass: events in stream order, with position-anchored
    /// lifecycle commands applied at their event boundaries (an empty
    /// command list is the static batch scan). Flushes at the end and
    /// returns one output lane per slot, admissions included.
    pub(crate) fn run_events_core<R: DeciderRow>(
        &mut self,
        events: &[Event],
        mut commands: VecDeque<(u64, ShardCommand)>,
        row: &mut R,
    ) -> Vec<Vec<ComplexEvent>> {
        let mut outputs: Vec<Vec<ComplexEvent>> = vec![Vec::new(); self.slots.len()];
        let mut position = 0usize;
        while position < events.len() {
            while commands.front().is_some_and(|(at, _)| *at <= position as u64) {
                let (_, command) = commands.pop_front().expect("front checked above");
                self.apply_command(command, row, &mut outputs);
            }
            // The stretch up to the next command anchor goes through the
            // span-fused pass in one piece — commands are span boundaries.
            let stretch_end =
                commands.front().map_or(events.len(), |(at, _)| (*at as usize).min(events.len()));
            self.run_span_fused(&events[position..stretch_end], row, &mut outputs);
            position = stretch_end;
        }
        // Commands anchored at or past the end of the stream: retires still
        // take effect before the final flush; admissions create slots that
        // never saw an event (empty output, zero counters).
        while let Some((_, command)) = commands.pop_front() {
            self.apply_command(command, row, &mut outputs);
        }
        self.flush_core(row, &mut outputs);
        outputs
    }

    /// Drives the full event slice through this shard and flushes at the end,
    /// returning the complex events of the windows the shard owns.
    ///
    /// Single-query wrapper over
    /// [`run_events_multi`](Self::run_events_multi).
    ///
    /// # Panics
    ///
    /// Panics if the shard serves more than one query.
    pub fn run_events<D: WindowEventDecider + ?Sized>(
        &mut self,
        events: &[Event],
        decider: &mut D,
    ) -> Vec<ComplexEvent> {
        assert_eq!(self.query_count(), 1, "multi-query shards need run_events_multi");
        let mut by_ref: &mut D = decider;
        let mut outputs = self.run_events_multi(events, std::slice::from_mut(&mut by_ref));
        outputs.pop().expect("one output per query")
    }

    /// Drives the full event slice through every query's operator in one
    /// fused pass (one decider per slot) and flushes at the end. Returns
    /// the complex events per slot, in slot order.
    ///
    /// # Panics
    ///
    /// Panics if `deciders.len()` differs from the query count.
    pub fn run_events_multi<D: WindowEventDecider>(
        &mut self,
        events: &[Event],
        deciders: &mut [D],
    ) -> Vec<Vec<ComplexEvent>> {
        assert_eq!(deciders.len(), self.query_count(), "need exactly one decider per query");
        self.run_events_core(events, VecDeque::new(), &mut &mut *deciders)
    }

    /// [`run_events_core`](Self::run_events_core) over an owned boxed
    /// decider row: the lifecycle slice path. Returns the outputs and the
    /// row (admitted deciders included, retired ones dropped).
    pub(crate) fn run_events_live(
        &mut self,
        events: &[Event],
        commands: VecDeque<(u64, ShardCommand)>,
        mut row: Vec<Option<BoxedDecider>>,
    ) -> (Vec<Vec<ComplexEvent>>, Vec<Option<BoxedDecider>>) {
        let outputs = self.run_events_core(events, commands, &mut row);
        (outputs, row)
    }

    /// Drains a bounded input queue through this shard until the producer
    /// closes it, then flushes. Single-query wrapper over
    /// [`run_queue_multi`](Self::run_queue_multi).
    ///
    /// # Panics
    ///
    /// Panics if the shard serves more than one query.
    pub fn run_queue<D: WindowEventDecider + ?Sized>(
        &mut self,
        queue: QueueConsumer<ShardInput>,
        decider: &mut D,
        check_interval: Option<Duration>,
    ) -> Vec<ComplexEvent> {
        assert_eq!(self.query_count(), 1, "multi-query shards need run_queue_multi");
        let mut by_ref: &mut D = decider;
        let mut outputs =
            self.run_queue_multi(queue, std::slice::from_mut(&mut by_ref), check_interval);
        outputs.pop().expect("one output per query")
    }

    /// Drains a bounded input queue through every query's operator until the
    /// producer closes it, then flushes. This is the streaming counterpart
    /// of [`run_events_multi`](Self::run_events_multi): events are processed
    /// as they are handed over — **once** per shard, regardless of the query
    /// count — the queue's fixed capacity backpressures the producer, and,
    /// when `check_interval` is set, every query's decider periodically
    /// receives a [`QueueSample`] of the *measured* queue state through
    /// [`WindowEventDecider::queue_sample`]. The queue serves all queries,
    /// so depth, drain count, busy time and the kept/assignment deltas are
    /// shard-level aggregates (identical across the samples of one cycle);
    /// only `predicted_window_size` is per query.
    ///
    /// Events must be pushed in global stream order; the shard then takes
    /// identical decisions to a slice-driven run over the same events.
    /// In-band [`ShardInput::Command`]s are applied at the position they
    /// occupy in the queue.
    ///
    /// # Panics
    ///
    /// Panics if `deciders.len()` differs from the query count, or an
    /// in-band admission arrives (static rows cannot grow — admissions need
    /// the engine's live run paths).
    pub fn run_queue_multi<D: WindowEventDecider>(
        &mut self,
        queue: QueueConsumer<ShardInput>,
        deciders: &mut [D],
        check_interval: Option<Duration>,
    ) -> Vec<Vec<ComplexEvent>> {
        assert_eq!(deciders.len(), self.query_count(), "need exactly one decider per query");
        self.run_queue_core(queue, &mut &mut *deciders, check_interval, None)
    }

    /// [`run_queue_multi`](Self::run_queue_multi) with a fault-injection
    /// hook armed. The hook fires once per queue hand-off (per chunk, or per
    /// event with per-event hand-off) with the stream position the hand-off
    /// starts at; a `None` hook costs one branch per hand-off.
    pub(crate) fn run_queue_multi_injected<D: WindowEventDecider>(
        &mut self,
        queue: QueueConsumer<ShardInput>,
        deciders: &mut [D],
        check_interval: Option<Duration>,
        faults: Option<&ArmedFaults>,
    ) -> Vec<Vec<ComplexEvent>> {
        assert_eq!(deciders.len(), self.query_count(), "need exactly one decider per query");
        self.run_queue_core(queue, &mut &mut *deciders, check_interval, faults)
    }

    /// [`run_queue_multi`](Self::run_queue_multi) over an owned boxed
    /// decider row: the lifecycle streaming path. Returns the outputs and
    /// the row (admitted deciders included, retired ones dropped).
    pub(crate) fn run_queue_live(
        &mut self,
        queue: QueueConsumer<ShardInput>,
        mut row: Vec<Option<BoxedDecider>>,
        check_interval: Option<Duration>,
        faults: Option<&ArmedFaults>,
    ) -> (Vec<Vec<ComplexEvent>>, Vec<Option<BoxedDecider>>) {
        let outputs = self.run_queue_core(queue, &mut row, check_interval, faults);
        (outputs, row)
    }

    /// The shared drain loop behind both queue entry points.
    fn run_queue_core<R: DeciderRow>(
        &mut self,
        mut queue: QueueConsumer<ShardInput>,
        row: &mut R,
        check_interval: Option<Duration>,
        faults: Option<&ArmedFaults>,
    ) -> Vec<Vec<ComplexEvent>> {
        /// How many drained events may pass between wall-clock reads while
        /// sampling is on (keeps `Instant::now` off the per-event path).
        const CLOCK_STRIDE: u32 = 32;

        let mut outputs: Vec<Vec<ComplexEvent>> = vec![Vec::new(); self.slots.len()];
        let started = Instant::now();
        let mut idle = Duration::ZERO;
        let mut drained_since_sample: u64 = 0;
        // Events processed but not yet retired from the queue's
        // event-denominated depth; flushed once per popped hand-off (one
        // relaxed RMW per chunk, not per event) and before every sample,
        // so the depth the controller sees is exact — including the
        // unscanned remainder of a partially processed chunk.
        let mut pending_consumed: u64 = 0;
        let mut since_clock_check: u32 = 0;
        let mut next_sample = check_interval;
        // Shard-level assignment counters at the previous sample, summed
        // over the per-query slots (the queue serves them all; retired
        // slots keep contributing their frozen totals so deltas stay
        // monotone across a retirement).
        let mut last_assignments: u64 = 0;
        let mut last_kept: u64 = 0;

        // Producer-counted stream position of the next hand-off, fed to the
        // fault hook. Starts at the events this shard has already seen so
        // injected positions line up with chunk bases on every path.
        let mut position = self.events_seen;

        let mut backoff = Backoff::new();
        loop {
            match queue.pop() {
                Some(ShardInput::Event(event)) => {
                    backoff.reset();
                    if let Some(faults) = faults {
                        faults.on_handoff(self.index, position, None);
                    }
                    position += 1;
                    self.push_fused(&event, row, &mut outputs);
                    drained_since_sample += 1;
                    pending_consumed += 1;
                    if let Some(deadline) = next_sample {
                        since_clock_check += 1;
                        if since_clock_check >= CLOCK_STRIDE {
                            since_clock_check = 0;
                            let elapsed = started.elapsed();
                            if elapsed >= deadline {
                                let interval =
                                    check_interval.expect("sampling fires only when configured");
                                next_sample = Some(elapsed + interval);
                                self.deliver_sample(
                                    row,
                                    &queue,
                                    &mut drained_since_sample,
                                    &mut pending_consumed,
                                    &mut last_assignments,
                                    &mut last_kept,
                                    elapsed,
                                    idle,
                                );
                            }
                        }
                    }
                    queue.consume_events(pending_consumed);
                    pending_consumed = 0;
                }
                Some(ShardInput::Chunk(chunk)) => {
                    // One hand-off covering a whole batch: the span-fused
                    // pass decides each open window against whole chunk
                    // slices at once; the sampling check fires at chunk
                    // boundaries (chunks are capacity-bounded, so the
                    // cadence stays within one chunk of the per-event
                    // path's).
                    backoff.reset();
                    if let Some(faults) = faults {
                        faults.on_handoff(self.index, chunk.base(), None);
                    }
                    position = chunk.end();
                    self.run_span_fused(chunk.events(), row, &mut outputs);
                    drained_since_sample += chunk.len() as u64;
                    pending_consumed += chunk.len() as u64;
                    if let Some(deadline) = next_sample {
                        since_clock_check = since_clock_check
                            .saturating_add(u32::try_from(chunk.len()).unwrap_or(u32::MAX));
                        if since_clock_check >= CLOCK_STRIDE {
                            since_clock_check = 0;
                            let elapsed = started.elapsed();
                            if elapsed >= deadline {
                                let interval =
                                    check_interval.expect("sampling fires only when configured");
                                next_sample = Some(elapsed + interval);
                                self.deliver_sample(
                                    row,
                                    &queue,
                                    &mut drained_since_sample,
                                    &mut pending_consumed,
                                    &mut last_assignments,
                                    &mut last_kept,
                                    elapsed,
                                    idle,
                                );
                            }
                        }
                    }
                    queue.consume_events(pending_consumed);
                    pending_consumed = 0;
                }
                Some(ShardInput::Command(command)) => {
                    backoff.reset();
                    self.apply_command(*command, row, &mut outputs);
                }
                None if queue.is_closed() => {
                    // The close flag is set after the final push, so one more
                    // pop settles whether anything raced in.
                    match queue.pop() {
                        Some(ShardInput::Event(event)) => {
                            if let Some(faults) = faults {
                                faults.on_handoff(self.index, position, None);
                            }
                            position += 1;
                            self.push_fused(&event, row, &mut outputs);
                            drained_since_sample += 1;
                            pending_consumed += 1;
                        }
                        Some(ShardInput::Chunk(chunk)) => {
                            if let Some(faults) = faults {
                                faults.on_handoff(self.index, chunk.base(), None);
                            }
                            self.run_span_fused(chunk.events(), row, &mut outputs);
                            drained_since_sample += chunk.len() as u64;
                            pending_consumed += chunk.len() as u64;
                        }
                        Some(ShardInput::Command(command)) => {
                            self.apply_command(*command, row, &mut outputs);
                        }
                        None => break,
                    }
                }
                None => {
                    // Empty but still open: back off (spin → yield → sleep)
                    // until the producer hands over more work. Without
                    // sampling no clocks are read here at all; with
                    // sampling, the wait is timed so idle is excluded from
                    // the busy measurement and samples keep firing so a
                    // closed-loop decider can observe the queue draining
                    // and deactivate shedding.
                    if next_sample.is_some() {
                        let wait = Instant::now();
                        backoff.wait();
                        idle += wait.elapsed();
                        let elapsed = started.elapsed();
                        if let Some(deadline) = next_sample {
                            if elapsed >= deadline {
                                let interval =
                                    check_interval.expect("sampling fires only when configured");
                                next_sample = Some(elapsed + interval);
                                self.deliver_sample(
                                    row,
                                    &queue,
                                    &mut drained_since_sample,
                                    &mut pending_consumed,
                                    &mut last_assignments,
                                    &mut last_kept,
                                    elapsed,
                                    idle,
                                );
                            }
                        }
                    } else {
                        backoff.wait();
                    }
                }
            }
        }
        queue.consume_events(pending_consumed);
        self.flush_core(row, &mut outputs);
        outputs
    }

    /// Hands every live slot's decider one measured [`QueueSample`]. The
    /// reported depth is **event-denominated**: processed events are first
    /// retired from the queue's event depth (`pending_consumed`), so a
    /// half-scanned chunk contributes exactly its unprocessed remainder —
    /// the `f · qmax` check must never mistake a half-full chunk for a
    /// full queue, nor a queue of fat chunks for a near-empty one.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn deliver_sample<R: DeciderRow, I>(
        &self,
        row: &mut R,
        queue: &QueueConsumer<I>,
        drained_since_sample: &mut u64,
        pending_consumed: &mut u64,
        last_assignments: &mut u64,
        last_kept: &mut u64,
        elapsed: Duration,
        idle: Duration,
    ) {
        queue.consume_events(*pending_consumed);
        *pending_consumed = 0;
        let assignments: u64 =
            (0..self.slots.len()).map(|slot| self.slot_stats(slot).assignments).sum();
        let kept: u64 = (0..self.slots.len()).map(|slot| self.slot_stats(slot).kept).sum();
        let mut sample = QueueSample {
            elapsed: SimDuration::from_secs_f64(elapsed.as_secs_f64()),
            busy: SimDuration::from_secs_f64((elapsed - idle).as_secs_f64()),
            depth: queue.event_depth() as usize,
            drained: *drained_since_sample,
            assignments: assignments - *last_assignments,
            kept: kept - *last_kept,
            predicted_window_size: 0,
        };
        *drained_since_sample = 0;
        *last_assignments = assignments;
        *last_kept = kept;
        for (slot, state) in self.slots.iter().enumerate() {
            if let SlotRuntime::Live { operator, .. } = state {
                if let Some(decider) = row.get(slot) {
                    sample.predicted_window_size = operator.predicted_window_size();
                    decider.queue_sample(&sample);
                }
            }
        }
    }

    /// Resets the run state of every live slot (operators and the shared
    /// open trackers) while keeping queries and shard geometry. Retired
    /// slots stay retired — reviving them takes an engine rebuild
    /// ([`ShardedEngine::reset`](crate::ShardedEngine::reset)).
    pub fn reset(&mut self) {
        for slot in &mut self.slots {
            if let SlotRuntime::Live { operator, draining } = slot {
                operator.reset();
                *draining = false;
            }
        }
        for opener in &mut self.openers {
            opener.reset();
        }
        if let Some(balancer) = &mut self.balancer {
            balancer.reset();
        }
        self.stolen = 0;
        self.events_seen = 0;
    }

    /// Cuts a replay checkpoint at stream position `position` (a chunk
    /// boundary: the shard has processed exactly the first `position`
    /// events). The checkpoint captures everything a *fresh* shard needs to
    /// re-derive this shard's forward behaviour when the replay stream also
    /// starts at a position at or below every currently open window's start:
    /// the open-tracker slide state and each slot's global window-id
    /// counter. Ring contents and open-window sets are deliberately *not*
    /// captured — they are reconstructed by replaying events, which is what
    /// keeps the checkpoint O(queries) instead of O(resident events).
    ///
    /// Static-path only: every slot must be live.
    pub(crate) fn cut_checkpoint(&self, position: u64) -> ShardCheckpoint {
        let mut next_window_ids = Vec::with_capacity(self.slots.len());
        let mut predictors = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            match slot {
                SlotRuntime::Live { operator, .. } => {
                    next_window_ids.push(operator.next_window_id());
                    predictors.push(operator.predictor_snapshot());
                }
                // The resilient path rejects engines with retired slots up
                // front, so checkpoints only ever see live rows.
                SlotRuntime::Retired { .. } => unreachable!("checkpoint on a retired slot"),
            }
        }
        ShardCheckpoint {
            position,
            openers: self.openers.clone(),
            next_window_ids,
            balancer: self.balancer.clone(),
            predictors,
            stolen: self.stolen,
        }
    }

    /// Stream position of the oldest event any live slot's open window still
    /// needs, or `None` when no window is open anywhere. Replaying from at
    /// or below this position reproduces every open window of every slot —
    /// the per-shard low-water mark chunk retention is pruned against,
    /// mirroring how [`EventRing`](crate::ring::EventRing) prunes to the
    /// oldest open window's start slot.
    pub(crate) fn oldest_open_start_pos(&self) -> Option<u64> {
        self.slots
            .iter()
            .filter_map(|slot| match slot {
                SlotRuntime::Live { operator, .. } => operator.oldest_open_start_pos(),
                SlotRuntime::Retired { .. } => None,
            })
            .min()
    }

    /// Positions a *fresh* shard at `checkpoint`, as if it had already
    /// scanned the first `checkpoint.position` events of the stream and
    /// none of its still-open windows had opened before that point.
    pub(crate) fn restore_checkpoint(&mut self, checkpoint: &ShardCheckpoint) {
        assert_eq!(
            checkpoint.next_window_ids.len(),
            self.slots.len(),
            "checkpoint and shard must agree on the query set"
        );
        self.openers = checkpoint.openers.clone();
        self.opens = vec![false; self.openers.len()];
        // The ownership table and steal counter resume exactly where the
        // checkpoint was cut: a replayed open must route to the same shard
        // it routed to the first time.
        self.balancer = checkpoint.balancer.clone();
        self.stolen = checkpoint.stolen;
        for (slot, next_id) in self.slots.iter_mut().zip(&checkpoint.next_window_ids) {
            match slot {
                SlotRuntime::Live { operator, .. } => {
                    operator.restore_for_replay(*next_id, checkpoint.position);
                }
                SlotRuntime::Retired { .. } => unreachable!("restore into a retired slot"),
            }
        }
        self.events_seen = checkpoint.position;
    }

    /// Rewinds every slot's engine-shared size predictor to a snapshot cut
    /// by [`cut_checkpoint`](Self::cut_checkpoint) (no-op for local
    /// predictors). Recovery rewinds to the crashed incarnation's *last
    /// flushed boundary* — not the replay checkpoint — because windows that
    /// opened before the replay checkpoint but closed before the boundary
    /// are never re-opened by the replay, so an earlier rewind would lose
    /// their observations for good.
    pub(crate) fn restore_predictors(&self, snapshots: &[Option<(u64, u64)>]) {
        for (slot, snapshot) in self.slots.iter().zip(snapshots) {
            match slot {
                SlotRuntime::Live { operator, .. } => operator.restore_predictor(*snapshot),
                SlotRuntime::Retired { .. } => unreachable!("restore into a retired slot"),
            }
        }
    }

    /// Mutes (or unmutes) every slot's size-predictor observation on window
    /// close. A replayed replacement stays muted until it reaches the
    /// crashed incarnation's last flushed boundary: every close in the
    /// replayed span already fed the shared predictor once.
    pub(crate) fn set_shared_predictor_muted(&mut self, muted: bool) {
        for slot in &mut self.slots {
            match slot {
                SlotRuntime::Live { operator, .. } => operator.set_predictor_muted(muted),
                SlotRuntime::Retired { .. } => unreachable!("mute of a retired slot"),
            }
        }
    }

    /// Snapshot of every live slot's run counters and ring peak, cut at a
    /// chunk boundary alongside [`cut_checkpoint`](Self::cut_checkpoint).
    pub(crate) fn slot_counters(&self) -> (Vec<OperatorStats>, Vec<usize>) {
        let mut stats = Vec::with_capacity(self.slots.len());
        let mut peaks = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            match slot {
                SlotRuntime::Live { operator, .. } => {
                    stats.push(operator.stats().clone());
                    peaks.push(operator.peak_resident_entries());
                }
                SlotRuntime::Retired { .. } => unreachable!("counters of a retired slot"),
            }
        }
        (stats, peaks)
    }

    /// Overwrites every slot's counters wholesale with a snapshot taken by
    /// the crashed incarnation. A replayed replacement calls this the moment
    /// it reaches the crash incarnation's last flushed boundary: from there
    /// on its counters must continue from the original's values, not from
    /// the replay's (which only scanned the stream suffix).
    pub(crate) fn overwrite_slot_counters(
        &mut self,
        stats: &[OperatorStats],
        peaks: &[usize],
        events_seen: u64,
    ) {
        for ((slot, stats), peak) in self.slots.iter_mut().zip(stats).zip(peaks) {
            match slot {
                SlotRuntime::Live { operator, .. } => {
                    operator.overwrite_counters(stats.clone(), *peak);
                }
                SlotRuntime::Retired { .. } => unreachable!("overwrite of a retired slot"),
            }
        }
        self.events_seen = events_seen;
    }
}

/// A replay checkpoint of one shard, cut at a chunk boundary by the
/// resilient drain loop (see [`crate::resilience`]). Plain data, cheap to
/// clone: open-tracker slide state plus one window-id counter per slot.
#[derive(Debug, Clone)]
pub(crate) struct ShardCheckpoint {
    /// The chunk boundary (producer-counted event position) the checkpoint
    /// was cut at.
    pub(crate) position: u64,
    openers: Vec<OpenTracker>,
    next_window_ids: Vec<WindowId>,
    /// The ownership table at the boundary (dynamic policies only): a
    /// replacement must route every replayed open to the shard it was
    /// routed to the first time, so stolen windows recover on the right
    /// shard.
    balancer: Option<WindowBalancer>,
    /// Per-slot shared size-predictor accumulators at the boundary
    /// (`None` for local predictors). Recovery rewinds the shared estimator
    /// to the *last flushed* checkpoint's snapshot and mutes the
    /// replacement's observations until the replay reaches that boundary,
    /// so replayed closes are observed exactly once.
    predictors: Vec<Option<(u64, u64)>>,
    /// Steal counter at the boundary.
    stolen: u64,
}

impl ShardCheckpoint {
    /// The per-slot shared size-predictor snapshots this checkpoint carries,
    /// for [`Shard::restore_predictors`].
    pub(crate) fn predictor_snapshots(&self) -> &[Option<(u64, u64)>] {
        &self.predictors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KeepAll, Pattern, WindowSpec};
    use espice_events::{EventType, Timestamp};

    fn ty(i: u32) -> EventType {
        EventType::from_index(i)
    }

    fn ev(t: u32, secs: u64, seq: u64) -> Event {
        Event::new(ty(t), Timestamp::from_secs(secs), seq)
    }

    fn query() -> Query {
        Query::builder()
            .pattern(Pattern::sequence([ty(0), ty(1)]))
            .window(WindowSpec::count_on_types(vec![ty(0)], 3))
            .build()
    }

    fn query_sized(size: usize) -> Query {
        Query::builder()
            .pattern(Pattern::sequence([ty(0), ty(1)]))
            .window(WindowSpec::count_on_types(vec![ty(0)], size))
            .build()
    }

    #[test]
    fn shard_owns_only_congruent_window_ids() {
        // Three windows open (events 0, 3, 6); shard 1 of 3 owns window 1.
        let events: Vec<Event> = (0..9).map(|i| ev(if i % 3 == 0 { 0 } else { 1 }, i, i)).collect();
        let mut shard = Shard::new(query(), 1, 3);
        let complex = shard.run_events(&events, &mut KeepAll);
        assert_eq!(shard.index(), 1);
        assert_eq!(shard.stats().windows_opened, 1);
        assert!(complex.iter().all(|c| c.window_id() == 1));
    }

    #[test]
    fn stealing_shards_partition_windows_exactly_once() {
        // Every shard consults its private balancer clone in lockstep, so
        // the union across shards must be exactly the single-operator
        // window set — each window materialised once, ids unchanged.
        let events: Vec<Event> =
            (0..120).map(|i| ev(if i % 3 == 0 { 0 } else { 1 }, i, i)).collect();
        let mut single = Shard::new(query(), 0, 1);
        let expected = single.run_events(&events, &mut KeepAll);

        let mut merged = Vec::new();
        let mut opened = 0;
        let mut stolen = 0;
        for index in 0..3 {
            let mut shard = Shard::new(query(), index, 3);
            shard.set_ownership_policy(OwnershipPolicy::StealAtOpen);
            assert_eq!(shard.ownership_policy(), OwnershipPolicy::StealAtOpen);
            merged.extend(shard.run_events(&events, &mut KeepAll));
            opened += shard.stats().windows_opened;
            stolen += shard.stolen_windows();
        }
        merged.sort_by_key(|c| c.window_id());
        assert_eq!(merged, expected);
        assert_eq!(opened, single.stats().windows_opened);
        assert!(stolen > 0, "the hashed rotation must displace some windows");
    }

    #[test]
    fn static_policy_never_counts_steals() {
        let events: Vec<Event> =
            (0..60).map(|i| ev(if i % 3 == 0 { 0 } else { 1 }, i, i)).collect();
        let mut shard = Shard::new(query(), 1, 2);
        assert_eq!(shard.ownership_policy(), OwnershipPolicy::StaticModulo);
        let _ = shard.run_events(&events, &mut KeepAll);
        assert_eq!(shard.stolen_windows(), 0);
    }

    #[test]
    fn reset_clears_the_ownership_table() {
        let events: Vec<Event> =
            (0..60).map(|i| ev(if i % 3 == 0 { 0 } else { 1 }, i, i)).collect();
        let mut shard = Shard::new(query(), 0, 2);
        shard.set_ownership_policy(OwnershipPolicy::StealAtOpen);
        let first = shard.run_events(&events, &mut KeepAll);
        shard.reset();
        assert_eq!(shard.stolen_windows(), 0);
        let second = shard.run_events(&events, &mut KeepAll);
        assert_eq!(first, second, "reset must replay identically under stealing");
    }

    #[test]
    #[should_panic(expected = "before the first event")]
    fn ownership_policy_cannot_change_mid_run() {
        let events = vec![ev(0, 0, 0)];
        let mut shard = Shard::new(query(), 0, 2);
        let _ = shard.run_events(&events, &mut KeepAll);
        shard.set_ownership_policy(OwnershipPolicy::StealAtOpen);
    }

    #[test]
    fn run_queue_equals_run_events() {
        let events: Vec<Event> =
            (0..60).map(|i| ev(if i % 3 == 0 { 0 } else { 1 }, i, i)).collect();
        let mut slice_shard = Shard::new(query(), 0, 2);
        let expected = slice_shard.run_events(&events, &mut KeepAll);

        let mut queue_shard = Shard::new(query(), 0, 2);
        let (mut producer, consumer) = crate::queue::spsc(4);
        let streamed = std::thread::scope(|scope| {
            let handle = scope.spawn(|| queue_shard.run_queue(consumer, &mut KeepAll, None));
            for event in &events {
                assert!(producer.push_blocking(ShardInput::Event(event.clone())));
            }
            producer.close();
            handle.join().expect("drain thread panicked")
        });
        assert_eq!(streamed, expected);
        assert_eq!(queue_shard.stats(), slice_shard.stats());
        assert_eq!(producer.stats().pushed, events.len() as u64);
    }

    #[test]
    fn chunked_queue_input_equals_per_event_input() {
        let events: Vec<Event> =
            (0..90).map(|i| ev(if i % 3 == 0 { 0 } else { 1 }, i, i)).collect();
        let mut slice_shard = Shard::new(query(), 0, 2);
        let expected = slice_shard.run_events(&events, &mut KeepAll);

        // Hand the same stream over as a mix of full chunks, a loose
        // per-event stretch, and a partial flush — the shard must not care
        // how the producer batched.
        let mut queue_shard = Shard::new(query(), 0, 2);
        let (mut producer, consumer) = crate::queue::spsc(4);
        let streamed = std::thread::scope(|scope| {
            let handle = scope.spawn(|| queue_shard.run_queue(consumer, &mut KeepAll, None));
            let mut builder = crate::arena::ChunkBuilder::new(7);
            for (i, event) in events.iter().enumerate() {
                if (40..50).contains(&i) {
                    if let Some(partial) = builder.seal() {
                        let weight = partial.len() as u64;
                        assert!(producer.push_blocking_weighted(ShardInput::Chunk(partial), weight));
                    }
                    assert!(producer.push_blocking(ShardInput::Event(event.clone())));
                } else if let Some(full) = builder.push(event.clone()) {
                    let weight = full.len() as u64;
                    assert!(producer.push_blocking_weighted(ShardInput::Chunk(full), weight));
                }
            }
            if let Some(partial) = builder.seal() {
                let weight = partial.len() as u64;
                assert!(producer.push_blocking_weighted(ShardInput::Chunk(partial), weight));
            }
            producer.close();
            handle.join().expect("drain thread panicked")
        });
        assert_eq!(streamed, expected);
        assert_eq!(queue_shard.stats(), slice_shard.stats());
        assert_eq!(producer.stats().pushed, events.len() as u64, "pushed counts events");
    }

    #[test]
    fn multi_query_shard_equals_independent_single_query_shards() {
        let events: Vec<Event> =
            (0..90).map(|i| ev(if i % 3 == 0 { 0 } else { 1 + (i % 2) as u32 }, i, i)).collect();
        let set = QuerySet::new(vec![query_sized(3), query_sized(5), query_sized(3)]);

        let mut fused = Shard::for_queries(&set, 0, 1);
        // Three queries, two distinct open policies... here all three share
        // OnTypes([ty0]) so a single tracker serves them all.
        assert_eq!(fused.open_groups(), 1);
        let mut deciders = vec![KeepAll; 3];
        let outputs = fused.run_events_multi(&events, &mut deciders);

        for (id, q) in set.iter() {
            let mut solo = Shard::new(q.clone(), 0, 1);
            let expected = solo.run_events(&events, &mut KeepAll);
            assert_eq!(outputs[id as usize], expected, "query {id} diverged");
            assert_eq!(fused.slot_stats(id as usize), solo.operator().stats());
        }
    }

    #[test]
    fn fused_windows_carry_their_query_id() {
        #[derive(Debug, Default, Clone)]
        struct SeenQueries(Vec<u32>);
        impl WindowEventDecider for SeenQueries {
            fn decide(
                &mut self,
                meta: &crate::WindowMeta,
                _position: usize,
                _event: &Event,
            ) -> crate::Decision {
                if !self.0.contains(&meta.query) {
                    self.0.push(meta.query);
                }
                crate::Decision::Keep
            }
        }
        let events: Vec<Event> = (0..30).map(|i| ev((i % 2) as u32, i, i)).collect();
        let set = QuerySet::new(vec![query_sized(3), query_sized(4)]);
        let mut shard = Shard::for_queries(&set, 0, 1);
        let mut deciders = vec![SeenQueries::default(), SeenQueries::default()];
        let _ = shard.run_events_multi(&events, &mut deciders);
        assert_eq!(deciders[0].0, vec![0]);
        assert_eq!(deciders[1].0, vec![1]);
    }

    #[test]
    fn distinct_open_policies_get_distinct_trackers() {
        let sliding = Query::builder()
            .pattern(Pattern::sequence([ty(0), ty(1)]))
            .window(WindowSpec::count_sliding(6, 2))
            .build();
        let set = QuerySet::new(vec![query_sized(3), sliding.clone(), query_sized(4)]);
        let fused = Shard::for_queries(&set, 0, 1);
        assert_eq!(fused.open_groups(), 2);

        // And the shared tracker still opens exactly what standalone
        // operators would.
        let events: Vec<Event> = (0..40).map(|i| ev((i % 3) as u32, i, i)).collect();
        let mut fused = fused;
        let mut deciders = vec![KeepAll; 3];
        let _ = fused.run_events_multi(&events, &mut deciders);
        for (id, q) in set.iter() {
            let mut solo = Shard::new(q.clone(), 0, 1);
            let _ = solo.run_events(&events, &mut KeepAll);
            assert_eq!(
                fused.slot_stats(id as usize).windows_opened,
                solo.operator().stats().windows_opened,
                "query {id} opened a different number of windows"
            );
        }
    }

    #[test]
    fn run_queue_multi_equals_run_events_multi() {
        let events: Vec<Event> =
            (0..80).map(|i| ev(if i % 3 == 0 { 0 } else { 1 }, i, i)).collect();
        let set = QuerySet::new(vec![query_sized(3), query_sized(6)]);

        let mut slice_shard = Shard::for_queries(&set, 0, 1);
        let mut slice_deciders = vec![KeepAll; 2];
        let expected = slice_shard.run_events_multi(&events, &mut slice_deciders);

        let mut queue_shard = Shard::for_queries(&set, 0, 1);
        let (mut producer, consumer) = crate::queue::spsc(4);
        let streamed = std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let mut deciders = vec![KeepAll; 2];
                queue_shard.run_queue_multi(consumer, &mut deciders, None)
            });
            for event in &events {
                assert!(producer.push_blocking(ShardInput::Event(event.clone())));
            }
            producer.close();
            handle.join().expect("drain thread panicked")
        });
        assert_eq!(streamed, expected);
        assert_eq!(queue_shard.stats(), slice_shard.stats());
    }

    #[test]
    fn run_queue_delivers_samples_when_sampling_is_on() {
        #[derive(Debug, Default)]
        struct Sampling {
            samples: Vec<crate::QueueSample>,
        }
        impl WindowEventDecider for Sampling {
            fn decide(
                &mut self,
                _meta: &crate::WindowMeta,
                _position: usize,
                _event: &Event,
            ) -> crate::Decision {
                crate::Decision::Keep
            }
            fn queue_sample(&mut self, sample: &crate::QueueSample) {
                self.samples.push(*sample);
            }
        }

        let events: Vec<Event> =
            (0..4000).map(|i| ev(if i % 3 == 0 { 0 } else { 1 }, i, i)).collect();
        let mut shard = Shard::new(query(), 0, 1);
        let mut decider = Sampling::default();
        let (mut producer, consumer) = crate::queue::spsc(64);
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                shard.run_queue(consumer, &mut decider, Some(std::time::Duration::from_micros(50)))
            });
            for event in &events {
                assert!(producer.push_blocking(ShardInput::Event(event.clone())));
            }
            producer.close();
            handle.join().expect("drain thread panicked");
        });
        assert!(!decider.samples.is_empty(), "sampling was configured but never fired");
        let drained: u64 = decider.samples.iter().map(|s| s.drained).sum();
        assert!(drained <= events.len() as u64);
        for pair in decider.samples.windows(2) {
            assert!(pair[0].elapsed <= pair[1].elapsed);
            assert!(pair[0].busy <= pair[1].busy);
        }
        let kept: u64 = decider.samples.iter().map(|s| s.kept).sum();
        let assignments: u64 = decider.samples.iter().map(|s| s.assignments).sum();
        assert_eq!(kept, assignments, "KeepAll keeps every assignment");
        assert!(assignments <= shard.stats().assignments);
        for sample in &decider.samples {
            assert!(sample.busy <= sample.elapsed);
            assert!(sample.depth <= 64);
            assert_eq!(sample.predicted_window_size, 3);
        }
    }

    #[test]
    fn reset_allows_rerunning_the_same_shard() {
        let events: Vec<Event> = (0..9).map(|i| ev(if i % 3 == 0 { 0 } else { 1 }, i, i)).collect();
        let mut shard = Shard::new(query(), 0, 2);
        let first = shard.run_events(&events, &mut KeepAll);
        shard.reset();
        let second = shard.run_events(&events, &mut KeepAll);
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "one decider per query")]
    fn mismatched_decider_count_panics() {
        let set = QuerySet::new(vec![query_sized(3), query_sized(4)]);
        let mut shard = Shard::for_queries(&set, 0, 1);
        let mut deciders = vec![KeepAll];
        let _ = shard.run_events_multi(&[], &mut deciders);
    }

    /// The shard-level lifecycle semantics in isolation: an admission at
    /// position k equals a fresh shard over `events[k..]`, and a retirement
    /// drains open windows before teardown.
    #[test]
    fn admission_mid_slice_equals_fresh_shard_over_suffix() {
        let events: Vec<Event> =
            (0..60).map(|i| ev(if i % 3 == 0 { 0 } else { 1 }, i, i)).collect();
        let admit_at = 21u64;
        let admitted = query_sized(4);

        let mut shard = Shard::new(query_sized(3), 0, 1);
        let mut commands = VecDeque::new();
        commands.push_back((
            admit_at,
            ShardCommand::Admit {
                slot: 1,
                query: admitted.clone(),
                decider: Box::new(KeepAll) as BoxedDecider,
                predictor: Arc::new(SharedSizePredictor::new(4)),
            },
        ));
        let row: Vec<Option<BoxedDecider>> = vec![Some(Box::new(KeepAll) as BoxedDecider)];
        let (outputs, row) = shard.run_events_live(&events, commands, row);
        assert_eq!(outputs.len(), 2);
        assert_eq!(row.len(), 2);
        assert!(row[1].is_some(), "admitted decider must survive the run");

        let mut fresh = Shard::new(admitted, 0, 1);
        let expected = fresh.run_events(&events[admit_at as usize..], &mut KeepAll);
        assert_eq!(outputs[1], expected, "admitted query must equal a fresh shard over the suffix");
        assert_eq!(shard.slot_stats(1), fresh.operator().stats());

        // The original query is untouched by the admission.
        let mut solo = Shard::new(query_sized(3), 0, 1);
        let baseline = solo.run_events(&events, &mut KeepAll);
        assert_eq!(outputs[0], baseline);
    }

    #[test]
    fn retirement_drains_open_windows_before_teardown() {
        // Window size 6 opened on every type-0 event (every 3rd event):
        // retiring at position 10 leaves windows open; they must still
        // close naturally (at their full size) before the slot retires.
        let events: Vec<Event> =
            (0..60).map(|i| ev(if i % 3 == 0 { 0 } else { 1 }, i, i)).collect();
        let mut shard = Shard::new(query_sized(6), 0, 1);
        let mut commands = VecDeque::new();
        commands.push_back((10, ShardCommand::Retire { slot: 0 }));
        let row: Vec<Option<BoxedDecider>> = vec![Some(Box::new(KeepAll) as BoxedDecider)];
        let (outputs, row) = shard.run_events_live(&events, commands, row);
        assert!(row[0].is_none(), "retired decider must be torn down");
        assert_eq!(shard.live_count(), 0);

        // Oracle: drive a fresh operator by hand — open windows normally up
        // to the retirement position, then stop opening and stop once the
        // last window closed.
        let mut oracle = Operator::new(query_sized(6));
        let mut tracker = OpenTracker::new(query_sized(6).window().open_policy().clone());
        let mut expected = Vec::new();
        for (i, event) in events.iter().enumerate() {
            let opens = tracker.should_open(event) && (i as u64) < 10;
            expected.extend(oracle.push_opened(event, opens, &mut KeepAll));
            if i as u64 >= 10 && oracle.open_windows() == 0 {
                break;
            }
        }
        assert_eq!(outputs[0], expected);
        assert_eq!(shard.slot_stats(0), oracle.stats());
        // Windows that were open at retirement closed at their full size.
        assert_eq!(shard.slot_stats(0).windows_closed, oracle.stats().windows_closed);
        assert!(shard.slot_stats(0).windows_closed > 0);
    }
}

//! One shard of the [`ShardedEngine`]: an operator restricted to the windows
//! it owns, plus the glue to drive it over a shared event slice.
//!
//! Sharding exploits the same property gSPICE and He et al. rely on for
//! per-operator shedding state: windows are processed independently, so the
//! window population can be hash-partitioned across workers without any
//! cross-worker coordination. A shard consumes the *full* event stream (an
//! event can belong to windows of several shards) but materialises, sheds and
//! matches only the windows whose global id it owns.
//!
//! [`ShardedEngine`]: crate::ShardedEngine

use crate::{ComplexEvent, Operator, OperatorStats, Query, WindowEventDecider};
use espice_events::Event;

/// A single worker of the sharded engine.
///
/// # Example
///
/// ```
/// use espice_cep::{Shard, Query, Pattern, WindowSpec, KeepAll};
/// use espice_events::{Event, EventType, Timestamp};
///
/// let a = EventType::from_index(0);
/// let b = EventType::from_index(1);
/// let query = Query::builder()
///     .pattern(Pattern::sequence([a, b]))
///     .window(WindowSpec::count_on_types(vec![a], 2))
///     .build();
/// let events = vec![
///     Event::new(a, Timestamp::from_secs(0), 0),
///     Event::new(b, Timestamp::from_secs(1), 1),
/// ];
/// // Shard 0 of 2 owns window 0 (the only window this stream opens).
/// let mut shard = Shard::new(query, 0, 2);
/// let complex = shard.run_events(&events, &mut KeepAll);
/// assert_eq!(complex.len(), 1);
/// ```
#[derive(Debug)]
pub struct Shard {
    operator: Operator,
}

impl Shard {
    /// Creates shard `index` of `count` for `query`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `index` is out of range.
    pub fn new(query: Query, index: usize, count: usize) -> Self {
        Shard { operator: Operator::sharded(query, index, count) }
    }

    /// This shard's index within the engine.
    pub fn index(&self) -> usize {
        self.operator.shard_index()
    }

    /// The underlying operator.
    pub fn operator(&self) -> &Operator {
        &self.operator
    }

    /// Counters of this shard's operator.
    pub fn stats(&self) -> &OperatorStats {
        self.operator.stats()
    }

    /// Peak number of events resident in this shard's shared event ring
    /// during the run (see [`Operator::peak_resident_entries`]).
    pub fn peak_resident_entries(&self) -> usize {
        self.operator.peak_resident_entries()
    }

    /// Seeds the operator's window-size prediction (relevant for time-based,
    /// variable-size windows).
    pub fn set_window_size_hint(&mut self, hint: usize) {
        self.operator.set_window_size_hint(hint);
    }

    /// Drives the full event slice through this shard and flushes at the end,
    /// returning the complex events of the windows the shard owns.
    pub fn run_events<D: WindowEventDecider + ?Sized>(
        &mut self,
        events: &[Event],
        decider: &mut D,
    ) -> Vec<ComplexEvent> {
        let mut out = Vec::new();
        for event in events {
            out.extend(self.operator.push(event, decider));
        }
        out.extend(self.operator.flush(decider));
        out
    }

    /// Resets the shard's run state while keeping query and shard geometry.
    pub fn reset(&mut self) {
        self.operator.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KeepAll, Pattern, WindowSpec};
    use espice_events::{EventType, Timestamp};

    fn ty(i: u32) -> EventType {
        EventType::from_index(i)
    }

    fn ev(t: u32, secs: u64, seq: u64) -> Event {
        Event::new(ty(t), Timestamp::from_secs(secs), seq)
    }

    fn query() -> Query {
        Query::builder()
            .pattern(Pattern::sequence([ty(0), ty(1)]))
            .window(WindowSpec::count_on_types(vec![ty(0)], 3))
            .build()
    }

    #[test]
    fn shard_owns_only_congruent_window_ids() {
        // Three windows open (events 0, 3, 6); shard 1 of 3 owns window 1.
        let events: Vec<Event> = (0..9).map(|i| ev(if i % 3 == 0 { 0 } else { 1 }, i, i)).collect();
        let mut shard = Shard::new(query(), 1, 3);
        let complex = shard.run_events(&events, &mut KeepAll);
        assert_eq!(shard.index(), 1);
        assert_eq!(shard.stats().windows_opened, 1);
        assert!(complex.iter().all(|c| c.window_id() == 1));
    }

    #[test]
    fn reset_allows_rerunning_the_same_shard() {
        let events: Vec<Event> = (0..9).map(|i| ev(if i % 3 == 0 { 0 } else { 1 }, i, i)).collect();
        let mut shard = Shard::new(query(), 0, 2);
        let first = shard.run_events(&events, &mut KeepAll);
        shard.reset();
        let second = shard.run_events(&events, &mut KeepAll);
        assert_eq!(first, second);
    }
}

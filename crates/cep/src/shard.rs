//! One shard of the [`ShardedEngine`]: the per-query operators restricted to
//! the windows this shard owns, plus the fused assignment pass that drives
//! them all from a single event hand-off.
//!
//! Sharding exploits the same property gSPICE and He et al. rely on for
//! per-operator shedding state: windows are processed independently, so the
//! window population can be hash-partitioned across workers without any
//! cross-worker coordination. A shard consumes the *full* event stream (an
//! event can belong to windows of several shards) but materialises, sheds and
//! matches only the windows whose global id it owns.
//!
//! With a multi-query [`QuerySet`] the shard owns one [`Operator`] **per
//! query** and offers every event to all of them in one pass: the event is
//! received once (one queue pop, one clone), each distinct open policy is
//! evaluated once ([`OpenTracker`]s shared across queries whose policies
//! coincide), and each query's own [`WindowEventDecider`] is consulted for
//! that query's windows. This is what amortises the dominant per-event
//! costs — queue hand-off and window-open bookkeeping — across queries the
//! way `decide_batch` amortises per-window costs.
//!
//! [`ShardedEngine`]: crate::ShardedEngine
//! [`QuerySet`]: crate::QuerySet
//! [`OpenTracker`]: crate::OpenTracker

use crate::queue::{Backoff, QueueConsumer};
use crate::shedding::QueueSample;
use crate::window::{OpenTracker, SharedSizePredictor};
use crate::{ComplexEvent, Operator, OperatorStats, Query, QuerySet, WindowEventDecider};
use espice_events::{Event, SimDuration};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A single worker of the sharded engine: one operator per query, driven by
/// a fused per-event pass.
///
/// # Example
///
/// ```
/// use espice_cep::{Shard, Query, Pattern, WindowSpec, KeepAll};
/// use espice_events::{Event, EventType, Timestamp};
///
/// let a = EventType::from_index(0);
/// let b = EventType::from_index(1);
/// let query = Query::builder()
///     .pattern(Pattern::sequence([a, b]))
///     .window(WindowSpec::count_on_types(vec![a], 2))
///     .build();
/// let events = vec![
///     Event::new(a, Timestamp::from_secs(0), 0),
///     Event::new(b, Timestamp::from_secs(1), 1),
/// ];
/// // Shard 0 of 2 owns window 0 (the only window this stream opens).
/// let mut shard = Shard::new(query, 0, 2);
/// let complex = shard.run_events(&events, &mut KeepAll);
/// assert_eq!(complex.len(), 1);
/// ```
#[derive(Debug)]
pub struct Shard {
    /// One operator per query, in [`QueryId`](crate::QueryId) order.
    operators: Vec<Operator>,
    /// The shared open-policy trackers: one per *distinct* policy across
    /// the query set, evaluated once per event.
    openers: Vec<OpenTracker>,
    /// `open_group[q]` is the index into `openers` serving query `q`.
    open_group: Vec<usize>,
    /// Scratch: the open decisions of the current event, one per opener.
    opens: Vec<bool>,
}

impl Shard {
    /// Creates shard `index` of `count` for a single `query`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `index` is out of range.
    pub fn new(query: Query, index: usize, count: usize) -> Self {
        Self::for_queries(&QuerySet::single(query), index, count)
    }

    /// Creates shard `index` of `count` for a whole query set: one operator
    /// per query, with open-policy bookkeeping shared across queries whose
    /// policies are equal.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `index` is out of range.
    pub fn for_queries(queries: &QuerySet, index: usize, count: usize) -> Self {
        let mut openers: Vec<OpenTracker> = Vec::new();
        let mut open_group = Vec::with_capacity(queries.len());
        let operators = queries
            .iter()
            .map(|(query_id, query)| {
                let policy = query.window().open_policy();
                let group = match openers.iter().position(|t| t.policy() == policy) {
                    Some(existing) => existing,
                    None => {
                        openers.push(OpenTracker::new(policy.clone()));
                        openers.len() - 1
                    }
                };
                open_group.push(group);
                Operator::for_query(query.clone(), query_id, index, count)
            })
            .collect();
        let opens = vec![false; openers.len()];
        Shard { operators, openers, open_group, opens }
    }

    /// This shard's index within the engine.
    pub fn index(&self) -> usize {
        self.operators[0].shard_index()
    }

    /// Number of queries this shard serves.
    pub fn query_count(&self) -> usize {
        self.operators.len()
    }

    /// The operator of query 0 (the only operator of a single-query shard).
    pub fn operator(&self) -> &Operator {
        &self.operators[0]
    }

    /// The per-query operators, in query order.
    pub fn operators(&self) -> &[Operator] {
        &self.operators
    }

    /// Number of distinct open policies across the shard's queries — the
    /// number of `should_open` evaluations each event costs, regardless of
    /// how many queries ride on them.
    pub fn open_groups(&self) -> usize {
        self.openers.len()
    }

    /// Counters of this shard, merged over its per-query operators. Every
    /// operator sees every stream event, so `events_processed` is counted
    /// once (not multiplied by the query count); all other counters are
    /// disjoint sums.
    pub fn stats(&self) -> OperatorStats {
        let mut merged = OperatorStats::default();
        for operator in &self.operators {
            merged.merge(operator.stats());
        }
        merged.events_processed = self.operators[0].stats().events_processed;
        merged
    }

    /// Peak number of events resident in this shard's event rings during
    /// the run, summed over queries (per-query peaks need not coincide in
    /// time, so this is an upper bound).
    pub fn peak_resident_entries(&self) -> usize {
        self.operators.iter().map(Operator::peak_resident_entries).sum()
    }

    /// Seeds every operator's window-size prediction (relevant for
    /// time-based, variable-size windows).
    pub fn set_window_size_hint(&mut self, hint: usize) {
        for operator in &mut self.operators {
            operator.set_window_size_hint(hint);
        }
    }

    /// Switches query `query`'s window-size prediction to an engine-shared
    /// estimator (see [`Operator::share_size_predictor`]).
    ///
    /// # Panics
    ///
    /// Panics if `query` is out of range.
    pub fn share_size_predictor_for(&mut self, query: usize, shared: Arc<SharedSizePredictor>) {
        self.operators[query].share_size_predictor(shared);
    }

    /// Switches query 0's window-size prediction to an engine-shared
    /// estimator (single-query compatibility wrapper).
    pub fn share_size_predictor(&mut self, shared: Arc<SharedSizePredictor>) {
        self.share_size_predictor_for(0, shared);
    }

    /// Offers one event to every query's operator: each distinct open
    /// policy is evaluated once, then every operator gets the event with
    /// its group's shared open decision. `outputs[q]` receives the complex
    /// events query `q` emitted.
    fn push_fused<D: WindowEventDecider>(
        &mut self,
        event: &Event,
        deciders: &mut [D],
        outputs: &mut [Vec<ComplexEvent>],
    ) {
        for (tracker, open) in self.openers.iter_mut().zip(self.opens.iter_mut()) {
            *open = tracker.should_open(event);
        }
        for (query, (operator, decider)) in
            self.operators.iter_mut().zip(deciders.iter_mut()).enumerate()
        {
            let opens = self.opens[self.open_group[query]];
            outputs[query].extend(operator.push_opened(event, opens, decider));
        }
    }

    /// Drives the full event slice through this shard and flushes at the end,
    /// returning the complex events of the windows the shard owns.
    ///
    /// Single-query wrapper over
    /// [`run_events_multi`](Self::run_events_multi).
    ///
    /// # Panics
    ///
    /// Panics if the shard serves more than one query.
    pub fn run_events<D: WindowEventDecider + ?Sized>(
        &mut self,
        events: &[Event],
        decider: &mut D,
    ) -> Vec<ComplexEvent> {
        assert_eq!(self.query_count(), 1, "multi-query shards need run_events_multi");
        let mut by_ref: &mut D = decider;
        let mut outputs = self.run_events_multi(events, std::slice::from_mut(&mut by_ref));
        outputs.pop().expect("one output per query")
    }

    /// Drives the full event slice through every query's operator in one
    /// fused pass (one decider per query) and flushes at the end. Returns
    /// the complex events per query, in query order.
    ///
    /// # Panics
    ///
    /// Panics if `deciders.len()` differs from the query count.
    pub fn run_events_multi<D: WindowEventDecider>(
        &mut self,
        events: &[Event],
        deciders: &mut [D],
    ) -> Vec<Vec<ComplexEvent>> {
        assert_eq!(deciders.len(), self.query_count(), "need exactly one decider per query");
        let mut outputs: Vec<Vec<ComplexEvent>> = vec![Vec::new(); self.query_count()];
        for event in events {
            self.push_fused(event, deciders, &mut outputs);
        }
        self.flush_into(deciders, &mut outputs);
        outputs
    }

    /// Closes all still-open windows of every query (end of stream).
    fn flush_into<D: WindowEventDecider>(
        &mut self,
        deciders: &mut [D],
        outputs: &mut [Vec<ComplexEvent>],
    ) {
        for (query, (operator, decider)) in
            self.operators.iter_mut().zip(deciders.iter_mut()).enumerate()
        {
            outputs[query].extend(operator.flush(decider));
        }
    }

    /// Drains a bounded input queue through this shard until the producer
    /// closes it, then flushes. Single-query wrapper over
    /// [`run_queue_multi`](Self::run_queue_multi).
    ///
    /// # Panics
    ///
    /// Panics if the shard serves more than one query.
    pub fn run_queue<D: WindowEventDecider + ?Sized>(
        &mut self,
        queue: QueueConsumer,
        decider: &mut D,
        check_interval: Option<Duration>,
    ) -> Vec<ComplexEvent> {
        assert_eq!(self.query_count(), 1, "multi-query shards need run_queue_multi");
        let mut by_ref: &mut D = decider;
        let mut outputs =
            self.run_queue_multi(queue, std::slice::from_mut(&mut by_ref), check_interval);
        outputs.pop().expect("one output per query")
    }

    /// Drains a bounded input queue through every query's operator until the
    /// producer closes it, then flushes. This is the streaming counterpart
    /// of [`run_events_multi`](Self::run_events_multi): events are processed
    /// as they are handed over — **once** per shard, regardless of the query
    /// count — the queue's fixed capacity backpressures the producer, and,
    /// when `check_interval` is set, every query's decider periodically
    /// receives a [`QueueSample`] of the *measured* queue state through
    /// [`WindowEventDecider::queue_sample`]. The queue serves all queries,
    /// so depth, drain count, busy time and the kept/assignment deltas are
    /// shard-level aggregates (identical across the samples of one cycle);
    /// only `predicted_window_size` is per query.
    ///
    /// Events must be pushed in global stream order; the shard then takes
    /// identical decisions to a slice-driven run over the same events.
    ///
    /// # Panics
    ///
    /// Panics if `deciders.len()` differs from the query count.
    pub fn run_queue_multi<D: WindowEventDecider>(
        &mut self,
        mut queue: QueueConsumer,
        deciders: &mut [D],
        check_interval: Option<Duration>,
    ) -> Vec<Vec<ComplexEvent>> {
        assert_eq!(deciders.len(), self.query_count(), "need exactly one decider per query");
        /// How many drained events may pass between wall-clock reads while
        /// sampling is on (keeps `Instant::now` off the per-event path).
        const CLOCK_STRIDE: u32 = 32;

        let mut outputs: Vec<Vec<ComplexEvent>> = vec![Vec::new(); self.query_count()];
        let started = Instant::now();
        let mut idle = Duration::ZERO;
        let mut drained_since_sample: u64 = 0;
        let mut since_clock_check: u32 = 0;
        let mut next_sample = check_interval;
        // Shard-level assignment counters at the previous sample, summed
        // over the per-query operators (the queue serves them all).
        let mut last_assignments: u64 = 0;
        let mut last_kept: u64 = 0;

        let sample = |operators: &[Operator],
                      deciders: &mut [D],
                      queue: &QueueConsumer,
                      next_sample: &mut Option<Duration>,
                      drained_since_sample: &mut u64,
                      last_assignments: &mut u64,
                      last_kept: &mut u64,
                      elapsed: Duration,
                      idle: Duration| {
            let interval = check_interval.expect("sampling fires only when configured");
            *next_sample = Some(elapsed + interval);
            let assignments: u64 = operators.iter().map(|o| o.stats().assignments).sum();
            let kept: u64 = operators.iter().map(|o| o.stats().kept).sum();
            let mut sample = QueueSample {
                elapsed: SimDuration::from_secs_f64(elapsed.as_secs_f64()),
                busy: SimDuration::from_secs_f64((elapsed - idle).as_secs_f64()),
                depth: queue.depth(),
                drained: *drained_since_sample,
                assignments: assignments - *last_assignments,
                kept: kept - *last_kept,
                predicted_window_size: 0,
            };
            *drained_since_sample = 0;
            *last_assignments = assignments;
            *last_kept = kept;
            for (operator, decider) in operators.iter().zip(deciders.iter_mut()) {
                sample.predicted_window_size = operator.predicted_window_size();
                decider.queue_sample(&sample);
            }
        };

        let mut backoff = Backoff::new();
        loop {
            match queue.pop() {
                Some(event) => {
                    backoff.reset();
                    self.push_fused(&event, deciders, &mut outputs);
                    drained_since_sample += 1;
                    if let Some(deadline) = next_sample {
                        since_clock_check += 1;
                        if since_clock_check >= CLOCK_STRIDE {
                            since_clock_check = 0;
                            let elapsed = started.elapsed();
                            if elapsed >= deadline {
                                sample(
                                    &self.operators,
                                    deciders,
                                    &queue,
                                    &mut next_sample,
                                    &mut drained_since_sample,
                                    &mut last_assignments,
                                    &mut last_kept,
                                    elapsed,
                                    idle,
                                );
                            }
                        }
                    }
                }
                None if queue.is_closed() => {
                    // The close flag is set after the final push, so one more
                    // pop settles whether anything raced in.
                    match queue.pop() {
                        Some(event) => {
                            self.push_fused(&event, deciders, &mut outputs);
                            drained_since_sample += 1;
                        }
                        None => break,
                    }
                }
                None => {
                    // Empty but still open: back off (spin → yield → sleep)
                    // until the producer hands over more work. Without
                    // sampling no clocks are read here at all; with
                    // sampling, the wait is timed so idle is excluded from
                    // the busy measurement and samples keep firing so a
                    // closed-loop decider can observe the queue draining
                    // and deactivate shedding.
                    if next_sample.is_some() {
                        let wait = Instant::now();
                        backoff.wait();
                        idle += wait.elapsed();
                        let elapsed = started.elapsed();
                        if let Some(deadline) = next_sample {
                            if elapsed >= deadline {
                                sample(
                                    &self.operators,
                                    deciders,
                                    &queue,
                                    &mut next_sample,
                                    &mut drained_since_sample,
                                    &mut last_assignments,
                                    &mut last_kept,
                                    elapsed,
                                    idle,
                                );
                            }
                        }
                    } else {
                        backoff.wait();
                    }
                }
            }
        }
        self.flush_into(deciders, &mut outputs);
        outputs
    }

    /// Resets the shard's run state (all operators and the shared open
    /// trackers) while keeping queries and shard geometry.
    pub fn reset(&mut self) {
        for operator in &mut self.operators {
            operator.reset();
        }
        for opener in &mut self.openers {
            opener.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KeepAll, Pattern, WindowSpec};
    use espice_events::{EventType, Timestamp};

    fn ty(i: u32) -> EventType {
        EventType::from_index(i)
    }

    fn ev(t: u32, secs: u64, seq: u64) -> Event {
        Event::new(ty(t), Timestamp::from_secs(secs), seq)
    }

    fn query() -> Query {
        Query::builder()
            .pattern(Pattern::sequence([ty(0), ty(1)]))
            .window(WindowSpec::count_on_types(vec![ty(0)], 3))
            .build()
    }

    fn query_sized(size: usize) -> Query {
        Query::builder()
            .pattern(Pattern::sequence([ty(0), ty(1)]))
            .window(WindowSpec::count_on_types(vec![ty(0)], size))
            .build()
    }

    #[test]
    fn shard_owns_only_congruent_window_ids() {
        // Three windows open (events 0, 3, 6); shard 1 of 3 owns window 1.
        let events: Vec<Event> = (0..9).map(|i| ev(if i % 3 == 0 { 0 } else { 1 }, i, i)).collect();
        let mut shard = Shard::new(query(), 1, 3);
        let complex = shard.run_events(&events, &mut KeepAll);
        assert_eq!(shard.index(), 1);
        assert_eq!(shard.stats().windows_opened, 1);
        assert!(complex.iter().all(|c| c.window_id() == 1));
    }

    #[test]
    fn run_queue_equals_run_events() {
        let events: Vec<Event> =
            (0..60).map(|i| ev(if i % 3 == 0 { 0 } else { 1 }, i, i)).collect();
        let mut slice_shard = Shard::new(query(), 0, 2);
        let expected = slice_shard.run_events(&events, &mut KeepAll);

        let mut queue_shard = Shard::new(query(), 0, 2);
        let (mut producer, consumer) = crate::queue::spsc(4);
        let streamed = std::thread::scope(|scope| {
            let handle = scope.spawn(|| queue_shard.run_queue(consumer, &mut KeepAll, None));
            for event in &events {
                assert!(producer.push_blocking(event.clone()));
            }
            producer.close();
            handle.join().expect("drain thread panicked")
        });
        assert_eq!(streamed, expected);
        assert_eq!(queue_shard.stats(), slice_shard.stats());
        assert_eq!(producer.stats().pushed, events.len() as u64);
    }

    #[test]
    fn multi_query_shard_equals_independent_single_query_shards() {
        let events: Vec<Event> =
            (0..90).map(|i| ev(if i % 3 == 0 { 0 } else { 1 + (i % 2) as u32 }, i, i)).collect();
        let set = QuerySet::new(vec![query_sized(3), query_sized(5), query_sized(3)]);

        let mut fused = Shard::for_queries(&set, 0, 1);
        // Three queries, two distinct open policies... here all three share
        // OnTypes([ty0]) so a single tracker serves them all.
        assert_eq!(fused.open_groups(), 1);
        let mut deciders = vec![KeepAll; 3];
        let outputs = fused.run_events_multi(&events, &mut deciders);

        for (id, q) in set.iter() {
            let mut solo = Shard::new(q.clone(), 0, 1);
            let expected = solo.run_events(&events, &mut KeepAll);
            assert_eq!(outputs[id as usize], expected, "query {id} diverged");
            assert_eq!(fused.operators()[id as usize].stats(), solo.operator().stats());
        }
    }

    #[test]
    fn fused_windows_carry_their_query_id() {
        #[derive(Debug, Default, Clone)]
        struct SeenQueries(Vec<u32>);
        impl WindowEventDecider for SeenQueries {
            fn decide(
                &mut self,
                meta: &crate::WindowMeta,
                _position: usize,
                _event: &Event,
            ) -> crate::Decision {
                if !self.0.contains(&meta.query) {
                    self.0.push(meta.query);
                }
                crate::Decision::Keep
            }
        }
        let events: Vec<Event> = (0..30).map(|i| ev((i % 2) as u32, i, i)).collect();
        let set = QuerySet::new(vec![query_sized(3), query_sized(4)]);
        let mut shard = Shard::for_queries(&set, 0, 1);
        let mut deciders = vec![SeenQueries::default(), SeenQueries::default()];
        let _ = shard.run_events_multi(&events, &mut deciders);
        assert_eq!(deciders[0].0, vec![0]);
        assert_eq!(deciders[1].0, vec![1]);
    }

    #[test]
    fn distinct_open_policies_get_distinct_trackers() {
        let sliding = Query::builder()
            .pattern(Pattern::sequence([ty(0), ty(1)]))
            .window(WindowSpec::count_sliding(6, 2))
            .build();
        let set = QuerySet::new(vec![query_sized(3), sliding.clone(), query_sized(4)]);
        let fused = Shard::for_queries(&set, 0, 1);
        assert_eq!(fused.open_groups(), 2);

        // And the shared tracker still opens exactly what standalone
        // operators would.
        let events: Vec<Event> = (0..40).map(|i| ev((i % 3) as u32, i, i)).collect();
        let mut fused = fused;
        let mut deciders = vec![KeepAll; 3];
        let _ = fused.run_events_multi(&events, &mut deciders);
        for (id, q) in set.iter() {
            let mut solo = Shard::new(q.clone(), 0, 1);
            let _ = solo.run_events(&events, &mut KeepAll);
            assert_eq!(
                fused.operators()[id as usize].stats().windows_opened,
                solo.operator().stats().windows_opened,
                "query {id} opened a different number of windows"
            );
        }
    }

    #[test]
    fn run_queue_multi_equals_run_events_multi() {
        let events: Vec<Event> =
            (0..80).map(|i| ev(if i % 3 == 0 { 0 } else { 1 }, i, i)).collect();
        let set = QuerySet::new(vec![query_sized(3), query_sized(6)]);

        let mut slice_shard = Shard::for_queries(&set, 0, 1);
        let mut slice_deciders = vec![KeepAll; 2];
        let expected = slice_shard.run_events_multi(&events, &mut slice_deciders);

        let mut queue_shard = Shard::for_queries(&set, 0, 1);
        let (mut producer, consumer) = crate::queue::spsc(4);
        let streamed = std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let mut deciders = vec![KeepAll; 2];
                queue_shard.run_queue_multi(consumer, &mut deciders, None)
            });
            for event in &events {
                assert!(producer.push_blocking(event.clone()));
            }
            producer.close();
            handle.join().expect("drain thread panicked")
        });
        assert_eq!(streamed, expected);
        assert_eq!(queue_shard.stats(), slice_shard.stats());
    }

    #[test]
    fn run_queue_delivers_samples_when_sampling_is_on() {
        #[derive(Debug, Default)]
        struct Sampling {
            samples: Vec<crate::QueueSample>,
        }
        impl WindowEventDecider for Sampling {
            fn decide(
                &mut self,
                _meta: &crate::WindowMeta,
                _position: usize,
                _event: &Event,
            ) -> crate::Decision {
                crate::Decision::Keep
            }
            fn queue_sample(&mut self, sample: &crate::QueueSample) {
                self.samples.push(*sample);
            }
        }

        let events: Vec<Event> =
            (0..4000).map(|i| ev(if i % 3 == 0 { 0 } else { 1 }, i, i)).collect();
        let mut shard = Shard::new(query(), 0, 1);
        let mut decider = Sampling::default();
        let (mut producer, consumer) = crate::queue::spsc(64);
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                shard.run_queue(consumer, &mut decider, Some(std::time::Duration::from_micros(50)))
            });
            for event in &events {
                assert!(producer.push_blocking(event.clone()));
            }
            producer.close();
            handle.join().expect("drain thread panicked");
        });
        assert!(!decider.samples.is_empty(), "sampling was configured but never fired");
        let drained: u64 = decider.samples.iter().map(|s| s.drained).sum();
        assert!(drained <= events.len() as u64);
        for pair in decider.samples.windows(2) {
            assert!(pair[0].elapsed <= pair[1].elapsed);
            assert!(pair[0].busy <= pair[1].busy);
        }
        let kept: u64 = decider.samples.iter().map(|s| s.kept).sum();
        let assignments: u64 = decider.samples.iter().map(|s| s.assignments).sum();
        assert_eq!(kept, assignments, "KeepAll keeps every assignment");
        assert!(assignments <= shard.stats().assignments);
        for sample in &decider.samples {
            assert!(sample.busy <= sample.elapsed);
            assert!(sample.depth <= 64);
            assert_eq!(sample.predicted_window_size, 3);
        }
    }

    #[test]
    fn reset_allows_rerunning_the_same_shard() {
        let events: Vec<Event> = (0..9).map(|i| ev(if i % 3 == 0 { 0 } else { 1 }, i, i)).collect();
        let mut shard = Shard::new(query(), 0, 2);
        let first = shard.run_events(&events, &mut KeepAll);
        shard.reset();
        let second = shard.run_events(&events, &mut KeepAll);
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "one decider per query")]
    fn mismatched_decider_count_panics() {
        let set = QuerySet::new(vec![query_sized(3), query_sized(4)]);
        let mut shard = Shard::for_queries(&set, 0, 1);
        let mut deciders = vec![KeepAll];
        let _ = shard.run_events_multi(&[], &mut deciders);
    }
}

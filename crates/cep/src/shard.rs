//! One shard of the [`ShardedEngine`]: an operator restricted to the windows
//! it owns, plus the glue to drive it over a shared event slice.
//!
//! Sharding exploits the same property gSPICE and He et al. rely on for
//! per-operator shedding state: windows are processed independently, so the
//! window population can be hash-partitioned across workers without any
//! cross-worker coordination. A shard consumes the *full* event stream (an
//! event can belong to windows of several shards) but materialises, sheds and
//! matches only the windows whose global id it owns.
//!
//! [`ShardedEngine`]: crate::ShardedEngine

use crate::queue::{Backoff, QueueConsumer};
use crate::shedding::QueueSample;
use crate::window::SharedSizePredictor;
use crate::{ComplexEvent, Operator, OperatorStats, Query, WindowEventDecider};
use espice_events::{Event, SimDuration};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A single worker of the sharded engine.
///
/// # Example
///
/// ```
/// use espice_cep::{Shard, Query, Pattern, WindowSpec, KeepAll};
/// use espice_events::{Event, EventType, Timestamp};
///
/// let a = EventType::from_index(0);
/// let b = EventType::from_index(1);
/// let query = Query::builder()
///     .pattern(Pattern::sequence([a, b]))
///     .window(WindowSpec::count_on_types(vec![a], 2))
///     .build();
/// let events = vec![
///     Event::new(a, Timestamp::from_secs(0), 0),
///     Event::new(b, Timestamp::from_secs(1), 1),
/// ];
/// // Shard 0 of 2 owns window 0 (the only window this stream opens).
/// let mut shard = Shard::new(query, 0, 2);
/// let complex = shard.run_events(&events, &mut KeepAll);
/// assert_eq!(complex.len(), 1);
/// ```
#[derive(Debug)]
pub struct Shard {
    operator: Operator,
}

impl Shard {
    /// Creates shard `index` of `count` for `query`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `index` is out of range.
    pub fn new(query: Query, index: usize, count: usize) -> Self {
        Shard { operator: Operator::sharded(query, index, count) }
    }

    /// This shard's index within the engine.
    pub fn index(&self) -> usize {
        self.operator.shard_index()
    }

    /// The underlying operator.
    pub fn operator(&self) -> &Operator {
        &self.operator
    }

    /// Counters of this shard's operator.
    pub fn stats(&self) -> &OperatorStats {
        self.operator.stats()
    }

    /// Peak number of events resident in this shard's shared event ring
    /// during the run (see [`Operator::peak_resident_entries`]).
    pub fn peak_resident_entries(&self) -> usize {
        self.operator.peak_resident_entries()
    }

    /// Seeds the operator's window-size prediction (relevant for time-based,
    /// variable-size windows).
    pub fn set_window_size_hint(&mut self, hint: usize) {
        self.operator.set_window_size_hint(hint);
    }

    /// Switches this shard's window-size prediction to an engine-shared
    /// estimator (see [`Operator::share_size_predictor`]).
    pub fn share_size_predictor(&mut self, shared: Arc<SharedSizePredictor>) {
        self.operator.share_size_predictor(shared);
    }

    /// Drives the full event slice through this shard and flushes at the end,
    /// returning the complex events of the windows the shard owns.
    pub fn run_events<D: WindowEventDecider + ?Sized>(
        &mut self,
        events: &[Event],
        decider: &mut D,
    ) -> Vec<ComplexEvent> {
        let mut out = Vec::new();
        for event in events {
            out.extend(self.operator.push(event, decider));
        }
        out.extend(self.operator.flush(decider));
        out
    }

    /// Drains a bounded input queue through this shard until the producer
    /// closes it, then flushes. This is the streaming counterpart of
    /// [`run_events`](Self::run_events): events are processed as they are
    /// handed over, the queue's fixed capacity backpressures the producer,
    /// and — when `check_interval` is set — the decider periodically
    /// receives a [`QueueSample`] of the *measured* queue state (depth,
    /// drain count, busy time) through
    /// [`WindowEventDecider::queue_sample`], which is where closed-loop
    /// overload detection hooks in.
    ///
    /// Events must be pushed in global stream order; the shard then takes
    /// identical decisions to a slice-driven run over the same events.
    pub fn run_queue<D: WindowEventDecider + ?Sized>(
        &mut self,
        mut queue: QueueConsumer,
        decider: &mut D,
        check_interval: Option<Duration>,
    ) -> Vec<ComplexEvent> {
        /// How many drained events may pass between wall-clock reads while
        /// sampling is on (keeps `Instant::now` off the per-event path).
        const CLOCK_STRIDE: u32 = 32;

        let mut out = Vec::new();
        let started = Instant::now();
        let mut idle = Duration::ZERO;
        let mut drained_since_sample: u64 = 0;
        let mut since_clock_check: u32 = 0;
        let mut next_sample = check_interval;

        let sample = |operator: &Operator,
                      decider: &mut D,
                      queue: &QueueConsumer,
                      next_sample: &mut Option<Duration>,
                      drained_since_sample: &mut u64,
                      elapsed: Duration,
                      idle: Duration| {
            let interval = check_interval.expect("sampling fires only when configured");
            *next_sample = Some(elapsed + interval);
            let sample = QueueSample {
                elapsed: SimDuration::from_secs_f64(elapsed.as_secs_f64()),
                busy: SimDuration::from_secs_f64((elapsed - idle).as_secs_f64()),
                depth: queue.depth(),
                drained: *drained_since_sample,
                predicted_window_size: operator.predicted_window_size(),
            };
            *drained_since_sample = 0;
            decider.queue_sample(&sample);
        };

        let mut backoff = Backoff::new();
        loop {
            match queue.pop() {
                Some(event) => {
                    backoff.reset();
                    out.extend(self.operator.push(&event, decider));
                    drained_since_sample += 1;
                    if let Some(deadline) = next_sample {
                        since_clock_check += 1;
                        if since_clock_check >= CLOCK_STRIDE {
                            since_clock_check = 0;
                            let elapsed = started.elapsed();
                            if elapsed >= deadline {
                                sample(
                                    &self.operator,
                                    decider,
                                    &queue,
                                    &mut next_sample,
                                    &mut drained_since_sample,
                                    elapsed,
                                    idle,
                                );
                            }
                        }
                    }
                }
                None if queue.is_closed() => {
                    // The close flag is set after the final push, so one more
                    // pop settles whether anything raced in.
                    match queue.pop() {
                        Some(event) => {
                            out.extend(self.operator.push(&event, decider));
                            drained_since_sample += 1;
                        }
                        None => break,
                    }
                }
                None => {
                    // Empty but still open: back off (spin → yield → sleep)
                    // until the producer hands over more work. Without
                    // sampling no clocks are read here at all; with
                    // sampling, the wait is timed so idle is excluded from
                    // the busy measurement and samples keep firing so a
                    // closed-loop decider can observe the queue draining
                    // and deactivate shedding.
                    if next_sample.is_some() {
                        let wait = Instant::now();
                        backoff.wait();
                        idle += wait.elapsed();
                        let elapsed = started.elapsed();
                        if let Some(deadline) = next_sample {
                            if elapsed >= deadline {
                                sample(
                                    &self.operator,
                                    decider,
                                    &queue,
                                    &mut next_sample,
                                    &mut drained_since_sample,
                                    elapsed,
                                    idle,
                                );
                            }
                        }
                    } else {
                        backoff.wait();
                    }
                }
            }
        }
        out.extend(self.operator.flush(decider));
        out
    }

    /// Resets the shard's run state while keeping query and shard geometry.
    pub fn reset(&mut self) {
        self.operator.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KeepAll, Pattern, WindowSpec};
    use espice_events::{EventType, Timestamp};

    fn ty(i: u32) -> EventType {
        EventType::from_index(i)
    }

    fn ev(t: u32, secs: u64, seq: u64) -> Event {
        Event::new(ty(t), Timestamp::from_secs(secs), seq)
    }

    fn query() -> Query {
        Query::builder()
            .pattern(Pattern::sequence([ty(0), ty(1)]))
            .window(WindowSpec::count_on_types(vec![ty(0)], 3))
            .build()
    }

    #[test]
    fn shard_owns_only_congruent_window_ids() {
        // Three windows open (events 0, 3, 6); shard 1 of 3 owns window 1.
        let events: Vec<Event> = (0..9).map(|i| ev(if i % 3 == 0 { 0 } else { 1 }, i, i)).collect();
        let mut shard = Shard::new(query(), 1, 3);
        let complex = shard.run_events(&events, &mut KeepAll);
        assert_eq!(shard.index(), 1);
        assert_eq!(shard.stats().windows_opened, 1);
        assert!(complex.iter().all(|c| c.window_id() == 1));
    }

    #[test]
    fn run_queue_equals_run_events() {
        let events: Vec<Event> =
            (0..60).map(|i| ev(if i % 3 == 0 { 0 } else { 1 }, i, i)).collect();
        let mut slice_shard = Shard::new(query(), 0, 2);
        let expected = slice_shard.run_events(&events, &mut KeepAll);

        let mut queue_shard = Shard::new(query(), 0, 2);
        let (mut producer, consumer) = crate::queue::spsc(4);
        let streamed = std::thread::scope(|scope| {
            let handle = scope.spawn(|| queue_shard.run_queue(consumer, &mut KeepAll, None));
            for event in &events {
                assert!(producer.push_blocking(event.clone()));
            }
            producer.close();
            handle.join().expect("drain thread panicked")
        });
        assert_eq!(streamed, expected);
        assert_eq!(queue_shard.stats(), slice_shard.stats());
        assert_eq!(producer.stats().pushed, events.len() as u64);
    }

    #[test]
    fn run_queue_delivers_samples_when_sampling_is_on() {
        #[derive(Debug, Default)]
        struct Sampling {
            samples: Vec<crate::QueueSample>,
        }
        impl WindowEventDecider for Sampling {
            fn decide(
                &mut self,
                _meta: &crate::WindowMeta,
                _position: usize,
                _event: &Event,
            ) -> crate::Decision {
                crate::Decision::Keep
            }
            fn queue_sample(&mut self, sample: &crate::QueueSample) {
                self.samples.push(*sample);
            }
        }

        let events: Vec<Event> =
            (0..4000).map(|i| ev(if i % 3 == 0 { 0 } else { 1 }, i, i)).collect();
        let mut shard = Shard::new(query(), 0, 1);
        let mut decider = Sampling::default();
        let (mut producer, consumer) = crate::queue::spsc(64);
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                shard.run_queue(consumer, &mut decider, Some(std::time::Duration::from_micros(50)))
            });
            for event in &events {
                assert!(producer.push_blocking(event.clone()));
            }
            producer.close();
            handle.join().expect("drain thread panicked");
        });
        assert!(!decider.samples.is_empty(), "sampling was configured but never fired");
        let drained: u64 = decider.samples.iter().map(|s| s.drained).sum();
        assert!(drained <= events.len() as u64);
        for pair in decider.samples.windows(2) {
            assert!(pair[0].elapsed <= pair[1].elapsed);
            assert!(pair[0].busy <= pair[1].busy);
        }
        for sample in &decider.samples {
            assert!(sample.busy <= sample.elapsed);
            assert!(sample.depth <= 64);
            assert_eq!(sample.predicted_window_size, 3);
        }
    }

    #[test]
    fn reset_allows_rerunning_the_same_shard() {
        let events: Vec<Event> = (0..9).map(|i| ev(if i % 3 == 0 { 0 } else { 1 }, i, i)).collect();
        let mut shard = Shard::new(query(), 0, 2);
        let first = shard.run_events(&events, &mut KeepAll);
        shard.reset();
        let second = shard.run_events(&events, &mut KeepAll);
        assert_eq!(first, second);
    }
}

//! Query definition: pattern + window + matching policies.

use crate::{Pattern, WindowSpec};
use serde::{Deserialize, Serialize};

/// Selection policy: which event instances participate in a match when
/// several candidates exist (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// The earliest admissible instances are chosen.
    #[default]
    First,
    /// The latest admissible instances are chosen.
    Last,
}

/// Consumption policy: whether events used by one match may be reused by
/// subsequent matches within the same window (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ConsumptionPolicy {
    /// Matched events are consumed and cannot participate in further matches.
    #[default]
    Consumed,
    /// Matched events may be reused ("zero consumption").
    Zero,
}

/// Skip semantics between pattern steps.
///
/// All evaluation queries in the paper "skip the intermediate not matching
/// primitive events, i.e., skip-till-next/any-match"; strict contiguity is
/// provided for completeness and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SkipPolicy {
    /// Irrelevant events between matched events are skipped.
    #[default]
    SkipTillNextMatch,
    /// Matched events must be contiguous in the window.
    Contiguous,
}

/// A complete CEP query: what to match ([`Pattern`]), over which portions of
/// the stream ([`WindowSpec`]) and under which matching policies.
///
/// # Example
///
/// ```
/// use espice_cep::{Query, Pattern, PatternStep, WindowSpec, SelectionPolicy};
/// use espice_events::{EventType, SimDuration};
///
/// let str_ev = EventType::from_index(0);
/// let df = [EventType::from_index(1), EventType::from_index(2)];
///
/// // Q1-style query: a striker possession followed by any 2 distinct
/// // defender events within a 15 second window opened on possession events.
/// let query = Query::builder()
///     .pattern(Pattern::new(vec![
///         PatternStep::single(str_ev),
///         PatternStep::any_of(df, 2, true),
///     ]))
///     .window(WindowSpec::time_on_types(vec![str_ev], SimDuration::from_secs(15)))
///     .selection(SelectionPolicy::First)
///     .build();
/// assert_eq!(query.pattern().total_events(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    name: String,
    pattern: Pattern,
    window: WindowSpec,
    selection: SelectionPolicy,
    consumption: ConsumptionPolicy,
    skip: SkipPolicy,
    max_matches_per_window: usize,
}

impl Query {
    /// Starts building a query.
    pub fn builder() -> QueryBuilder {
        QueryBuilder::default()
    }

    /// Human-readable query name (used in experiment reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The query's pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The query's window specification.
    pub fn window(&self) -> &WindowSpec {
        &self.window
    }

    /// The selection policy.
    pub fn selection(&self) -> SelectionPolicy {
        self.selection
    }

    /// The consumption policy.
    pub fn consumption(&self) -> ConsumptionPolicy {
        self.consumption
    }

    /// The skip policy.
    pub fn skip(&self) -> SkipPolicy {
        self.skip
    }

    /// Upper bound on complex events emitted per window.
    ///
    /// The paper's evaluation uses one complex event per window; this is the
    /// default.
    pub fn max_matches_per_window(&self) -> usize {
        self.max_matches_per_window
    }

    /// Returns a copy of this query with a different window specification.
    /// Used by parameter sweeps that vary the window size.
    pub fn with_window(&self, window: WindowSpec) -> Query {
        let mut q = self.clone();
        q.window = window;
        q
    }

    /// Returns a copy of this query with a different selection policy.
    pub fn with_selection(&self, selection: SelectionPolicy) -> Query {
        let mut q = self.clone();
        q.selection = selection;
        q
    }
}

/// Builder for [`Query`] values.
#[derive(Debug, Clone, Default)]
pub struct QueryBuilder {
    name: Option<String>,
    pattern: Option<Pattern>,
    window: Option<WindowSpec>,
    selection: SelectionPolicy,
    consumption: ConsumptionPolicy,
    skip: SkipPolicy,
    max_matches_per_window: Option<usize>,
}

impl QueryBuilder {
    /// Sets the query name.
    pub fn name(mut self, name: &str) -> Self {
        self.name = Some(name.to_owned());
        self
    }

    /// Sets the pattern (required).
    pub fn pattern(mut self, pattern: Pattern) -> Self {
        self.pattern = Some(pattern);
        self
    }

    /// Sets the window specification (required).
    pub fn window(mut self, window: WindowSpec) -> Self {
        self.window = Some(window);
        self
    }

    /// Sets the selection policy (default: [`SelectionPolicy::First`]).
    pub fn selection(mut self, selection: SelectionPolicy) -> Self {
        self.selection = selection;
        self
    }

    /// Sets the consumption policy (default: [`ConsumptionPolicy::Consumed`]).
    pub fn consumption(mut self, consumption: ConsumptionPolicy) -> Self {
        self.consumption = consumption;
        self
    }

    /// Sets the skip policy (default: skip-till-next-match).
    pub fn skip(mut self, skip: SkipPolicy) -> Self {
        self.skip = skip;
        self
    }

    /// Sets the maximum number of complex events per window (default: 1).
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn max_matches_per_window(mut self, max: usize) -> Self {
        assert!(max >= 1, "a query must be allowed to produce at least one match per window");
        self.max_matches_per_window = Some(max);
        self
    }

    /// Finishes building the query.
    ///
    /// # Panics
    ///
    /// Panics if the pattern or the window specification is missing.
    pub fn build(self) -> Query {
        Query {
            name: self.name.unwrap_or_else(|| "query".to_owned()),
            pattern: self.pattern.expect("a query needs a pattern"),
            window: self.window.expect("a query needs a window specification"),
            selection: self.selection,
            consumption: self.consumption,
            skip: self.skip,
            max_matches_per_window: self.max_matches_per_window.unwrap_or(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PatternStep;
    use espice_events::EventType;

    fn simple_pattern() -> Pattern {
        Pattern::new(vec![PatternStep::single(EventType::from_index(0))])
    }

    #[test]
    fn builder_defaults() {
        let q = Query::builder()
            .pattern(simple_pattern())
            .window(WindowSpec::count_sliding(10, 5))
            .build();
        assert_eq!(q.name(), "query");
        assert_eq!(q.selection(), SelectionPolicy::First);
        assert_eq!(q.consumption(), ConsumptionPolicy::Consumed);
        assert_eq!(q.skip(), SkipPolicy::SkipTillNextMatch);
        assert_eq!(q.max_matches_per_window(), 1);
    }

    #[test]
    fn builder_sets_all_policies() {
        let q = Query::builder()
            .name("Q2")
            .pattern(simple_pattern())
            .window(WindowSpec::count_sliding(10, 5))
            .selection(SelectionPolicy::Last)
            .consumption(ConsumptionPolicy::Zero)
            .skip(SkipPolicy::Contiguous)
            .max_matches_per_window(3)
            .build();
        assert_eq!(q.name(), "Q2");
        assert_eq!(q.selection(), SelectionPolicy::Last);
        assert_eq!(q.consumption(), ConsumptionPolicy::Zero);
        assert_eq!(q.skip(), SkipPolicy::Contiguous);
        assert_eq!(q.max_matches_per_window(), 3);
    }

    #[test]
    #[should_panic(expected = "needs a pattern")]
    fn build_without_pattern_panics() {
        let _ = Query::builder().window(WindowSpec::count_sliding(10, 5)).build();
    }

    #[test]
    #[should_panic(expected = "needs a window")]
    fn build_without_window_panics() {
        let _ = Query::builder().pattern(simple_pattern()).build();
    }

    #[test]
    fn with_window_and_selection_produce_modified_copies() {
        let q = Query::builder()
            .pattern(simple_pattern())
            .window(WindowSpec::count_sliding(10, 5))
            .build();
        let q2 = q.with_window(WindowSpec::count_sliding(20, 10));
        let q3 = q.with_selection(SelectionPolicy::Last);
        assert_ne!(q.window(), q2.window());
        assert_eq!(q.selection(), SelectionPolicy::First);
        assert_eq!(q3.selection(), SelectionPolicy::Last);
    }
}

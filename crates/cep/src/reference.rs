//! The seed per-window storage engine, kept verbatim as a test oracle.
//!
//! [`ReferenceOperator`] is the pre-ring implementation of [`Operator`]: it
//! clones a [`WindowEntry`] into every open window an event is kept in, pays
//! O(overlap) storage work per event and rebuilds the open-window deque on
//! every push. It exists so that
//!
//! * property tests can pin the ring-backed operator's complex events and
//!   statistics against an independent implementation, and
//! * the `window_overlap` bench can measure the ring's win over the seed
//!   storage on identical workloads (including peak resident entries).
//!
//! It is `#[doc(hidden)]`: not part of the supported API, only an oracle.
//! Keep its decider call sequence byte-identical to [`Operator`]'s —
//! stateful deciders (eSPICE's boundary thinning) must observe the same
//! sequence of `decide_batch` / `window_closed` calls in both engines for
//! the identity properties to be meaningful.
//!
//! [`Operator`]: crate::Operator

use crate::window::SizePredictor;
use crate::OperatorStats;
use crate::{
    BatchRequest, ComplexEvent, Matcher, OpenPolicy, Query, WindowEntry, WindowEventDecider,
    WindowId, WindowMeta, WindowSpec,
};
use espice_events::{Event, EventStream, Timestamp};
use std::collections::VecDeque;

/// State of one open window in the per-window storage scheme.
#[derive(Debug)]
struct RefWindow {
    meta: WindowMeta,
    entries: Vec<WindowEntry>,
    assigned: usize,
}

/// The seed engine: per-window `Vec<WindowEntry>` storage. See the module
/// docs; this is a test oracle, not a supported API.
#[derive(Debug)]
pub struct ReferenceOperator {
    query: Query,
    matcher: Matcher,
    open: VecDeque<RefWindow>,
    next_window_id: WindowId,
    shard_index: u64,
    shard_count: u64,
    since_count_open: usize,
    last_time_open: Option<Timestamp>,
    size_predictor: SizePredictor,
    stats: OperatorStats,
    resident: usize,
    peak_resident: usize,
    batch_requests: Vec<BatchRequest>,
    batch_decisions: Vec<crate::Decision>,
}

impl ReferenceOperator {
    /// Creates an unsharded reference operator for `query`.
    pub fn new(query: Query) -> Self {
        Self::sharded(query, 0, 1)
    }

    /// Creates shard `shard_index` of `shard_count` (same geometry rules as
    /// [`Operator::sharded`](crate::Operator::sharded)).
    pub fn sharded(query: Query, shard_index: usize, shard_count: usize) -> Self {
        assert!(shard_count >= 1, "shard count must be at least 1");
        assert!(shard_index < shard_count, "shard index {shard_index} out of {shard_count}");
        let matcher = Matcher::from_query(&query);
        let initial_size = query.window().expected_size().unwrap_or(100);
        ReferenceOperator {
            matcher,
            open: VecDeque::new(),
            next_window_id: 0,
            shard_index: shard_index as u64,
            shard_count: shard_count as u64,
            since_count_open: 0,
            last_time_open: None,
            size_predictor: SizePredictor::new(initial_size.max(1), 0.25),
            stats: OperatorStats::default(),
            resident: 0,
            peak_resident: 0,
            batch_requests: Vec::new(),
            batch_decisions: Vec::new(),
            query,
        }
    }

    /// Counters for the current run.
    pub fn stats(&self) -> &OperatorStats {
        &self.stats
    }

    /// Entries currently stored across all open windows (each event counted
    /// once *per window* that kept it).
    pub fn resident_entries(&self) -> usize {
        self.resident
    }

    /// The largest `resident_entries` value seen during this run.
    pub fn peak_resident_entries(&self) -> usize {
        self.peak_resident
    }

    /// Seeds the window-size prediction, mirroring
    /// [`Operator::set_window_size_hint`](crate::Operator::set_window_size_hint).
    pub fn set_window_size_hint(&mut self, hint: usize) {
        self.size_predictor = SizePredictor::new(hint.max(1), 0.25);
    }

    fn predicted_window_size(&self) -> usize {
        match self.query.window().expected_size() {
            Some(size) => size,
            None => self.size_predictor.predict(),
        }
    }

    /// One event through the seed push path: deque rebuild, per-window entry
    /// clones, `remove(idx)` for filled windows.
    pub fn push<D: WindowEventDecider + ?Sized>(
        &mut self,
        event: &Event,
        decider: &mut D,
    ) -> Vec<ComplexEvent> {
        self.stats.events_processed += 1;
        let mut emitted = Vec::new();

        let spec = self.query.window().clone();
        let mut still_open = VecDeque::with_capacity(self.open.len());
        while let Some(window) = self.open.pop_front() {
            if spec.accepts(window.meta.opened_at, window.assigned, event) {
                still_open.push_back(window);
            } else {
                emitted.extend(self.close_window(window, decider));
            }
        }
        self.open = still_open;

        if self.should_open(&spec, event) {
            let id = self.next_window_id;
            self.next_window_id += 1;
            if id % self.shard_count == self.shard_index {
                let meta = WindowMeta {
                    id,
                    query: 0,
                    opened_at: event.timestamp(),
                    open_seq: event.seq(),
                    predicted_size: self.predicted_window_size(),
                };
                self.stats.windows_opened += 1;
                self.open.push_back(RefWindow { meta, entries: Vec::new(), assigned: 0 });
            }
        }

        let mut filled = Vec::new();
        if !self.open.is_empty() {
            self.batch_requests.clear();
            for window in self.open.iter_mut() {
                let position = window.assigned;
                window.assigned += 1;
                self.batch_requests.push(BatchRequest { meta: window.meta, position });
            }
            self.stats.assignments += self.batch_requests.len() as u64;
            decider.decide_batch(event, &self.batch_requests, &mut self.batch_decisions);
            assert_eq!(
                self.batch_decisions.len(),
                self.batch_requests.len(),
                "decide_batch must produce exactly one decision per request"
            );
            for (idx, window) in self.open.iter_mut().enumerate() {
                let position = self.batch_requests[idx].position;
                if self.batch_decisions[idx].is_keep() {
                    self.stats.kept += 1;
                    window.entries.push(WindowEntry { position, event: event.clone() });
                    self.resident += 1;
                } else {
                    self.stats.dropped += 1;
                }
                if !spec.accepts(window.meta.opened_at, window.assigned, event) {
                    filled.push(idx);
                }
            }
            self.peak_resident = self.peak_resident.max(self.resident);
        }

        for idx in filled.into_iter().rev() {
            let window = self.open.remove(idx).expect("filled window index is valid");
            emitted.extend(self.close_window(window, decider));
        }

        emitted
    }

    /// Closes all remaining open windows.
    pub fn flush<D: WindowEventDecider + ?Sized>(&mut self, decider: &mut D) -> Vec<ComplexEvent> {
        let mut emitted = Vec::new();
        while let Some(window) = self.open.pop_front() {
            emitted.extend(self.close_window(window, decider));
        }
        emitted
    }

    /// Runs a whole stream and flushes.
    pub fn run<S, D>(&mut self, stream: &S, decider: &mut D) -> Vec<ComplexEvent>
    where
        S: EventStream + ?Sized,
        D: WindowEventDecider + ?Sized,
    {
        let mut out = Vec::new();
        for event in stream.events() {
            out.extend(self.push(event, decider));
        }
        out.extend(self.flush(decider));
        out
    }

    fn should_open(&mut self, spec: &WindowSpec, event: &Event) -> bool {
        match spec.open_policy() {
            OpenPolicy::OnTypes(_) => spec.opens_on(event.event_type()),
            OpenPolicy::EveryCount(slide) => {
                let open = self.since_count_open == 0;
                self.since_count_open += 1;
                if self.since_count_open >= *slide {
                    self.since_count_open = 0;
                }
                open
            }
            OpenPolicy::EveryDuration(slide) => match self.last_time_open {
                None => {
                    self.last_time_open = Some(event.timestamp());
                    true
                }
                Some(last) => {
                    if event.timestamp() >= last + *slide {
                        self.last_time_open = Some(event.timestamp());
                        true
                    } else {
                        false
                    }
                }
            },
        }
    }

    fn close_window<D: WindowEventDecider + ?Sized>(
        &mut self,
        window: RefWindow,
        decider: &mut D,
    ) -> Vec<ComplexEvent> {
        self.stats.windows_closed += 1;
        self.size_predictor.observe(window.assigned);
        decider.window_closed(&window.meta, window.assigned);
        self.resident -= window.entries.len();
        let outcome = self.matcher.matches(window.meta.id, &window.entries);
        self.stats.complex_events += outcome.complex_events.len() as u64;
        outcome.complex_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KeepAll, Pattern, WindowSpec};
    use espice_events::{EventType, VecStream};

    #[test]
    fn reference_operator_reproduces_seed_behaviour() {
        let a = EventType::from_index(0);
        let b = EventType::from_index(1);
        let query = Query::builder()
            .pattern(Pattern::sequence([a, b]))
            .window(WindowSpec::count_sliding(4, 2))
            .build();
        let events: Vec<Event> = (0..12)
            .map(|i| Event::new(if i % 2 == 0 { a } else { b }, Timestamp::from_secs(i), i))
            .collect();
        let mut reference = ReferenceOperator::new(query);
        let out = reference.run(&VecStream::from_ordered(events), &mut KeepAll);
        assert!(!out.is_empty());
        // Overlap 2: every kept event is stored twice at the peak.
        assert!(reference.peak_resident_entries() > 4);
        assert_eq!(reference.resident_entries(), 0);
    }
}

//! Bounded single-producer/single-consumer event queues.
//!
//! The streaming engine gives every shard its own input queue: the producer
//! fan-out loop appends each incoming event to every shard's queue, and each
//! shard's drain thread pops from its queue alone. That access pattern is
//! exactly SPSC, so the queue is a fixed-capacity ring over two monotone
//! slot counters — the same slot-index discipline as the shared window
//! storage's event ring, applied to a concurrent hand-off — with no locks
//! and no external dependencies.
//!
//! Capacity is the backpressure mechanism eSPICE's overload model assumes:
//! a full queue makes [`QueueProducer::push`] fail (and
//! [`QueueProducer::push_blocking`] wait), so the producer slows to the
//! drain rate instead of buffering unboundedly, and the *measured* queue
//! depth ([`QueueConsumer::depth`]) is the quantity the overload detector
//! compares against `f · qmax` (paper §3.4).
//!
//! Memory ordering: the producer publishes an event by storing `tail` with
//! `Release` after writing the slot; the consumer `Acquire`-loads `tail`
//! before reading, and releases the slot back by storing `head` with
//! `Release` after taking the event, which the producer `Acquire`-loads
//! before reusing the slot. Slot counters increase monotonically and are
//! mapped into the buffer modulo the capacity.

use espice_events::Event;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared state of one SPSC queue. Only ever touched through the unique
/// [`QueueProducer`] / [`QueueConsumer`] pair, which is what makes the
/// unsynchronised slot accesses sound.
///
/// Generic over the element type: the engine's shard queues carry plain
/// [`Event`]s on the static paths and `ShardInput` (events interleaved with
/// in-band lifecycle commands) on the live paths — the hand-off discipline
/// is identical either way.
#[derive(Debug)]
struct Shared<T> {
    slots: Box<[UnsafeCell<Option<T>>]>,
    /// Next slot the consumer takes. Monotone; slot = `head % capacity`.
    head: AtomicUsize,
    /// Next slot the producer fills. Monotone; slot = `tail % capacity`.
    tail: AtomicUsize,
    /// Set by [`QueueProducer::close`]: no further pushes will happen.
    closed: AtomicBool,
    /// Set when the consumer is dropped: pushes can never be drained again.
    consumer_gone: AtomicBool,
    /// Largest depth ever observed at push time.
    peak_depth: AtomicUsize,
    /// Queue depth in **events** (not slots): incremented by the push
    /// weight, decremented by [`QueueConsumer::consume_events`] as the
    /// drain loop processes events. With chunked hand-off one slot can
    /// carry many events (or, for a command, none), so this — not the slot
    /// count — is the quantity the overload detector's `f · qmax` check
    /// needs.
    event_depth: AtomicU64,
    /// Largest event-denominated depth ever observed at push time.
    peak_event_depth: AtomicU64,
}

// SAFETY: the queue is shared between exactly two threads (the handles are
// not Clone), the producer only writes slots in `[head + capacity, ...)`
// never resident, the consumer only reads slots in `[head, tail)`, and the
// Release/Acquire pairs on `head`/`tail` order every slot access.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

/// Staged wait for the queue endpoints: spin briefly (the other side is
/// usually mid-hand-off), then yield the scheduler slice, then degrade to a
/// short sleep so a queue that stays full or empty for long — a live
/// source trickling events, a stalled shard — costs microseconds of wakeup
/// latency instead of a pinned core.
#[derive(Debug, Default)]
pub struct Backoff {
    rounds: u32,
}

impl Backoff {
    /// The number of initial spin rounds before yielding.
    const SPIN_ROUNDS: u32 = 16;
    /// The number of yield rounds before sleeping.
    const YIELD_ROUNDS: u32 = 64;
    /// The sleep applied once spinning and yielding were exhausted.
    const SLEEP: std::time::Duration = std::time::Duration::from_micros(100);

    /// A fresh backoff, starting at the spinning stage.
    pub fn new() -> Self {
        Backoff { rounds: 0 }
    }

    /// Waits one round, escalating spin → yield → sleep.
    pub fn wait(&mut self) {
        if self.rounds < Self::SPIN_ROUNDS {
            std::hint::spin_loop();
        } else if self.rounds < Self::SPIN_ROUNDS + Self::YIELD_ROUNDS {
            std::thread::yield_now();
        } else {
            std::thread::sleep(Self::SLEEP);
        }
        self.rounds = self.rounds.saturating_add(1);
    }

    /// Resets to the spinning stage (progress was made).
    pub fn reset(&mut self) {
        self.rounds = 0;
    }
}

/// Counters describing one queue's run, reported by the engine alongside
/// the operator statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// Configured capacity of the queue, in hand-off slots.
    pub capacity: usize,
    /// Events pushed over the queue's lifetime (a chunk counts its
    /// events, an in-band command counts zero).
    pub pushed: u64,
    /// Largest number of hand-offs (slots) resident at once; bounded by
    /// `capacity`.
    pub peak_depth: usize,
    /// Largest number of *events* resident at once — with chunked
    /// hand-off each slot can carry a whole batch, so this is the
    /// "how overfilled did the queue get" figure and can exceed
    /// `capacity`.
    pub peak_event_depth: u64,
    /// Hand-offs whose push found the queue full at least once (the
    /// producer had to wait — the backpressure signal).
    pub backpressure_events: u64,
}

/// Creates a bounded SPSC queue of the given capacity, returning the two
/// (move-only) endpoint handles.
///
/// # Panics
///
/// Panics if `capacity` is zero.
///
/// # Example
///
/// ```
/// use espice_cep::queue::spsc;
/// use espice_events::{Event, EventType, Timestamp};
///
/// let (mut producer, mut consumer) = spsc(2);
/// let ev = |seq| Event::new(EventType::from_index(0), Timestamp::ZERO, seq);
/// producer.push(ev(0)).unwrap();
/// producer.push(ev(1)).unwrap();
/// assert!(producer.push(ev(2)).is_err(), "third push exceeds capacity");
/// assert_eq!(consumer.pop().unwrap().seq(), 0);
/// producer.close();
/// assert_eq!(consumer.pop().unwrap().seq(), 1);
/// assert!(consumer.pop().is_none());
/// assert!(consumer.is_closed());
/// ```
pub fn spsc<T>(capacity: usize) -> (QueueProducer<T>, QueueConsumer<T>) {
    assert!(capacity >= 1, "queue capacity must be at least 1");
    let slots = (0..capacity).map(|_| UnsafeCell::new(None)).collect();
    let shared = Arc::new(Shared {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
        consumer_gone: AtomicBool::new(false),
        peak_depth: AtomicUsize::new(0),
        event_depth: AtomicU64::new(0),
        peak_event_depth: AtomicU64::new(0),
    });
    let producer =
        QueueProducer { shared: Arc::clone(&shared), pushed: 0, backpressure_events: 0, capacity };
    let consumer = QueueConsumer { shared, capacity };
    (producer, consumer)
}

/// Outcome of a deadline-bounded blocking push
/// ([`QueueProducer::push_blocking_weighted_until`]). The rejected item is
/// handed back so the caller can retry it — against the same queue after
/// re-checking its watchdog, or against a replacement shard's queue.
#[derive(Debug)]
pub enum PushOutcome<T> {
    /// The item was handed over.
    Pushed,
    /// The consumer endpoint was dropped (its drain thread died).
    ConsumerGone(T),
    /// The queue stayed full past the deadline.
    TimedOut(T),
}

/// The producer endpoint of an SPSC queue. Move-only: exactly one producer
/// exists per queue.
#[derive(Debug)]
pub struct QueueProducer<T = Event> {
    shared: Arc<Shared<T>>,
    pushed: u64,
    backpressure_events: u64,
    capacity: usize,
}

impl<T> QueueProducer<T> {
    /// Attempts to push one event, returning it back if the queue is full
    /// or the consumer is gone.
    pub fn push(&mut self, event: T) -> Result<(), T> {
        self.push_weighted(event, 1)
    }

    /// Attempts to push one item that stands for `events` stream events —
    /// a chunk (`events == chunk.len()`), a single event (`1`), or an
    /// in-band command (`0`). The weight is what [`QueueStats::pushed`] and
    /// the event-denominated queue depth advance by, so the overload
    /// controller keeps counting events however the hand-off is batched.
    pub fn push_weighted(&mut self, item: T, events: u64) -> Result<(), T> {
        if self.shared.consumer_gone.load(Ordering::Acquire) {
            return Err(item);
        }
        let tail = self.shared.tail.load(Ordering::Relaxed);
        let head = self.shared.head.load(Ordering::Acquire);
        if tail - head == self.capacity {
            return Err(item);
        }
        // SAFETY: `tail - head < capacity`, so the consumer has released
        // this slot (its last use happened before the `head` store we just
        // acquired), and no other producer exists.
        unsafe {
            *self.shared.slots[tail % self.capacity].get() = Some(item);
        }
        self.shared.tail.store(tail + 1, Ordering::Release);
        self.pushed += events;
        if events > 0 {
            let event_depth = self.shared.event_depth.fetch_add(events, Ordering::Relaxed) + events;
            self.shared.peak_event_depth.fetch_max(event_depth, Ordering::Relaxed);
        }
        let depth = tail + 1 - head;
        self.shared.peak_depth.fetch_max(depth, Ordering::Relaxed);
        Ok(())
    }

    /// Pushes one event, waiting while the queue is full (bounded-queue
    /// backpressure). Returns `false` if the consumer disappeared before
    /// the event could be handed over (its drain thread panicked) — the
    /// caller should stop producing.
    pub fn push_blocking(&mut self, event: T) -> bool {
        self.push_blocking_weighted(event, 1)
    }

    /// [`push_weighted`](Self::push_weighted) with full-queue waiting, the
    /// blocking counterpart used by the chunked producer loops.
    pub fn push_blocking_weighted(&mut self, item: T, events: u64) -> bool {
        let mut item = item;
        let mut waited = false;
        let mut backoff = Backoff::new();
        loop {
            match self.push_weighted(item, events) {
                Ok(()) => return true,
                Err(rejected) => {
                    if self.shared.consumer_gone.load(Ordering::Acquire) {
                        return false;
                    }
                    if !waited {
                        waited = true;
                        self.backpressure_events += 1;
                    }
                    item = rejected;
                    backoff.wait();
                }
            }
        }
    }

    /// [`push_blocking_weighted`](Self::push_blocking_weighted) with a
    /// deadline: waits while the queue is full, but only until `deadline`.
    /// Distinguishes a vanished consumer from a consumer that is merely not
    /// making progress, which is what the engine's stall watchdog needs. The
    /// clock is read only on the full-queue wait path, so the fast path costs
    /// the same as the plain blocking push.
    pub fn push_blocking_weighted_until(
        &mut self,
        item: T,
        events: u64,
        deadline: std::time::Instant,
    ) -> PushOutcome<T> {
        let mut item = item;
        let mut waited = false;
        let mut backoff = Backoff::new();
        loop {
            match self.push_weighted(item, events) {
                Ok(()) => return PushOutcome::Pushed,
                Err(rejected) => {
                    if self.shared.consumer_gone.load(Ordering::Acquire) {
                        return PushOutcome::ConsumerGone(rejected);
                    }
                    if std::time::Instant::now() >= deadline {
                        return PushOutcome::TimedOut(rejected);
                    }
                    if !waited {
                        waited = true;
                        self.backpressure_events += 1;
                    }
                    item = rejected;
                    backoff.wait();
                }
            }
        }
    }

    /// Marks the end of the stream. Events already queued remain drainable.
    pub fn close(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
    }

    /// Number of events currently resident.
    pub fn depth(&self) -> usize {
        self.shared.tail.load(Ordering::Relaxed) - self.shared.head.load(Ordering::Acquire)
    }

    /// The queue's counters so far.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            capacity: self.capacity,
            pushed: self.pushed,
            peak_depth: self.shared.peak_depth.load(Ordering::Relaxed),
            peak_event_depth: self.shared.peak_event_depth.load(Ordering::Relaxed),
            backpressure_events: self.backpressure_events,
        }
    }
}

impl<T> Drop for QueueProducer<T> {
    fn drop(&mut self) {
        // A dropped producer can never push again; let the consumer finish.
        self.close();
    }
}

/// The consumer endpoint of an SPSC queue. Move-only: exactly one consumer
/// exists per queue.
#[derive(Debug)]
pub struct QueueConsumer<T = Event> {
    shared: Arc<Shared<T>>,
    capacity: usize,
}

impl<T> QueueConsumer<T> {
    /// Takes the oldest queued event, or `None` if the queue is currently
    /// empty. An empty pop with [`is_closed`](Self::is_closed) true means
    /// the stream has ended.
    pub fn pop(&mut self) -> Option<T> {
        let head = self.shared.head.load(Ordering::Relaxed);
        let tail = self.shared.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: `head < tail`, so the producer published this slot (the
        // `tail` store we acquired happened after its write), and no other
        // consumer exists.
        let event = unsafe { (*self.shared.slots[head % self.capacity].get()).take() };
        self.shared.head.store(head + 1, Ordering::Release);
        Some(event.expect("published slots hold an event"))
    }

    /// The measured queue depth in **slots**: items pushed but not yet
    /// popped. With chunked hand-off one slot can carry a whole batch; use
    /// [`event_depth`](Self::event_depth) for the event-denominated depth
    /// the overload detector compares against `f · qmax`.
    pub fn depth(&self) -> usize {
        self.shared.tail.load(Ordering::Acquire) - self.shared.head.load(Ordering::Relaxed)
    }

    /// The measured queue depth in **events**: stream events pushed (by
    /// weight) and not yet declared consumed via
    /// [`consume_events`](Self::consume_events). Counts the unscanned
    /// remainder of a partially processed chunk, and counts in-band
    /// commands (weight 0) not at all.
    pub fn event_depth(&self) -> u64 {
        self.shared.event_depth.load(Ordering::Relaxed)
    }

    /// Declares `events` stream events consumed, retiring them from
    /// [`event_depth`](Self::event_depth). The drain loop calls this as it
    /// processes events — possibly batched, as long as the count is flushed
    /// before the depth is sampled.
    pub fn consume_events(&self, events: u64) {
        if events > 0 {
            self.shared.event_depth.fetch_sub(events, Ordering::Relaxed);
        }
    }

    /// Whether the queue currently holds no events.
    pub fn is_empty(&self) -> bool {
        self.depth() == 0
    }

    /// Whether the producer has announced the end of the stream. Queued
    /// events remain poppable after close.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }

    /// The queue's configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl<T> Drop for QueueConsumer<T> {
    fn drop(&mut self) {
        // Unblock a producer stuck in `push_blocking` if the drain thread
        // dies: nothing will ever pop again.
        self.shared.consumer_gone.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espice_events::{EventType, Timestamp};

    fn ev(seq: u64) -> Event {
        Event::new(EventType::from_index(0), Timestamp::from_secs(seq), seq)
    }

    #[test]
    fn fifo_order_is_preserved() {
        let (mut producer, mut consumer) = spsc(4);
        for seq in 0..4 {
            producer.push(ev(seq)).unwrap();
        }
        for seq in 0..4 {
            assert_eq!(consumer.pop().unwrap().seq(), seq);
        }
        assert!(consumer.pop().is_none());
    }

    #[test]
    fn full_queue_rejects_and_reports_depth() {
        let (mut producer, mut consumer) = spsc(2);
        producer.push(ev(0)).unwrap();
        producer.push(ev(1)).unwrap();
        assert_eq!(producer.depth(), 2);
        assert_eq!(consumer.depth(), 2);
        let rejected = producer.push(ev(2)).unwrap_err();
        assert_eq!(rejected.seq(), 2);
        assert_eq!(consumer.pop().unwrap().seq(), 0);
        producer.push(ev(2)).unwrap();
        assert_eq!(consumer.pop().unwrap().seq(), 1);
        assert_eq!(consumer.pop().unwrap().seq(), 2);
    }

    #[test]
    fn wraparound_reuses_slots() {
        let (mut producer, mut consumer) = spsc(2);
        for seq in 0..100 {
            producer.push(ev(seq)).unwrap();
            assert_eq!(consumer.pop().unwrap().seq(), seq);
        }
        assert!(consumer.is_empty());
        let stats = producer.stats();
        assert_eq!(stats.pushed, 100);
        assert_eq!(stats.peak_depth, 1);
        assert_eq!(stats.backpressure_events, 0);
    }

    #[test]
    fn close_lets_consumer_drain_then_finish() {
        let (mut producer, mut consumer) = spsc(4);
        producer.push(ev(0)).unwrap();
        producer.close();
        assert!(consumer.is_closed());
        assert_eq!(consumer.pop().unwrap().seq(), 0);
        assert!(consumer.pop().is_none());
        assert!(consumer.is_empty());
    }

    #[test]
    fn dropped_consumer_unblocks_producer() {
        let (mut producer, consumer) = spsc(1);
        producer.push(ev(0)).unwrap();
        drop(consumer);
        assert!(!producer.push_blocking(ev(1)), "push into a dead queue must not hang");
    }

    #[test]
    fn cross_thread_handoff_delivers_everything_in_order() {
        let (mut producer, mut consumer) = spsc(8);
        let total = 50_000u64;
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for seq in 0..total {
                    assert!(producer.push_blocking(ev(seq)));
                }
                producer.close();
            });
            let mut expected = 0u64;
            loop {
                match consumer.pop() {
                    Some(event) => {
                        assert_eq!(event.seq(), expected);
                        expected += 1;
                    }
                    None if consumer.is_closed() => {
                        if consumer.is_empty() {
                            break;
                        }
                    }
                    None => std::thread::yield_now(),
                }
            }
            assert_eq!(expected, total);
        });
    }

    #[test]
    fn blocking_push_counts_backpressure() {
        let (mut producer, mut consumer) = spsc(1);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for seq in 0..100 {
                    assert!(producer.push_blocking(ev(seq)));
                }
                producer.close();
                let stats = producer.stats();
                assert_eq!(stats.pushed, 100);
                assert_eq!(stats.capacity, 1);
            });
            let mut popped = 0;
            while popped < 100 {
                if consumer.pop().is_some() {
                    popped += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
    }

    #[test]
    fn weighted_pushes_count_events_not_slots() {
        // A queue of batches: each slot is a Vec standing for several
        // stream events (or, with weight 0, for an in-band command).
        let (mut producer, mut consumer) = spsc::<Vec<u64>>(4);
        producer.push_weighted(vec![0, 1, 2], 3).unwrap();
        producer.push_weighted(vec![], 0).unwrap();
        producer.push_weighted(vec![3], 1).unwrap();
        assert_eq!(producer.depth(), 3, "slot depth counts items");
        assert_eq!(consumer.event_depth(), 4, "event depth counts weights");
        assert_eq!(producer.stats().pushed, 4, "pushed is event-denominated");
        assert_eq!(producer.stats().peak_depth, 3, "peak depth counts slots");
        assert_eq!(producer.stats().peak_event_depth, 4, "event peak counts weights");

        // Consuming half the first batch: the unscanned remainder stays in
        // the event depth even though the slot was already popped.
        let first = consumer.pop().unwrap();
        assert_eq!(first.len(), 3);
        consumer.consume_events(1);
        assert_eq!(consumer.event_depth(), 3);
        consumer.consume_events(2);
        let command = consumer.pop().unwrap();
        assert!(command.is_empty());
        assert_eq!(consumer.event_depth(), 1, "commands carry no event weight");
        consumer.pop().unwrap();
        consumer.consume_events(1);
        assert_eq!(consumer.event_depth(), 0);
    }

    #[test]
    fn blocking_weighted_push_applies_backpressure_per_slot() {
        let (mut producer, mut consumer) = spsc::<Vec<u64>>(1);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for batch in 0..50u64 {
                    let chunk: Vec<u64> = (batch * 4..batch * 4 + 4).collect();
                    assert!(producer.push_blocking_weighted(chunk, 4));
                }
                producer.close();
                let stats = producer.stats();
                assert_eq!(stats.pushed, 200, "50 chunks of 4 events each");
                assert!(stats.peak_depth <= 1, "peak depth stays slot-denominated");
                assert!(stats.peak_event_depth >= 4, "one resident chunk is 4 events");
            });
            let mut seen = 0u64;
            while seen < 200 {
                if let Some(chunk) = consumer.pop() {
                    for (offset, seq) in chunk.iter().enumerate() {
                        assert_eq!(*seq, seen + offset as u64);
                    }
                    let events = chunk.len() as u64;
                    seen += events;
                    consumer.consume_events(events);
                } else {
                    std::thread::yield_now();
                }
            }
            assert_eq!(consumer.event_depth(), 0);
        });
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = spsc::<Event>(0);
    }
}

//! The CEP operator: window management + pattern matching + shedding hook.
//!
//! The operator mirrors Figure 1 of the paper: incoming primitive events are
//! assigned to every open window they belong to; the load shedder (a
//! [`WindowEventDecider`]) is consulted for every (event, window) pair; when a
//! window closes, the pattern matcher runs over the kept events and emits
//! complex events.

use crate::window::SizePredictor;
use crate::{
    BatchRequest, ComplexEvent, Decision, Matcher, OpenPolicy, Query, WindowEntry,
    WindowEventDecider, WindowId, WindowMeta, WindowSpec,
};
use espice_events::{Event, EventStream, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Counters describing one operator run.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperatorStats {
    /// Primitive events pushed into the operator.
    pub events_processed: u64,
    /// Windows opened.
    pub windows_opened: u64,
    /// Windows closed (matched).
    pub windows_closed: u64,
    /// (event, window) assignments considered, i.e. shedding decisions taken.
    pub assignments: u64,
    /// Assignments kept by the decider.
    pub kept: u64,
    /// Assignments dropped by the decider.
    pub dropped: u64,
    /// Complex events emitted.
    pub complex_events: u64,
}

impl OperatorStats {
    /// Fraction of (event, window) assignments that were dropped.
    pub fn drop_ratio(&self) -> f64 {
        if self.assignments == 0 {
            0.0
        } else {
            self.dropped as f64 / self.assignments as f64
        }
    }

    /// Adds every counter of `other` into `self`. Used by the sharded engine
    /// to merge per-shard statistics into engine-level totals.
    pub fn merge(&mut self, other: &OperatorStats) {
        self.events_processed += other.events_processed;
        self.windows_opened += other.windows_opened;
        self.windows_closed += other.windows_closed;
        self.assignments += other.assignments;
        self.kept += other.kept;
        self.dropped += other.dropped;
        self.complex_events += other.complex_events;
    }
}

/// State of one open window.
#[derive(Debug)]
struct OpenWindow {
    meta: WindowMeta,
    entries: Vec<WindowEntry>,
    /// Total number of events assigned so far (kept + dropped).
    assigned: usize,
}

/// A single CEP operator executing one [`Query`].
///
/// # Example
///
/// ```
/// use espice_cep::{Operator, Query, Pattern, PatternStep, WindowSpec, KeepAll};
/// use espice_events::{Event, EventType, Timestamp, VecStream};
///
/// let a = EventType::from_index(0);
/// let b = EventType::from_index(1);
/// let query = Query::builder()
///     .pattern(Pattern::sequence([a, b]))
///     .window(WindowSpec::count_on_types(vec![a], 4))
///     .build();
///
/// let stream = VecStream::from_ordered(vec![
///     Event::new(a, Timestamp::from_secs(0), 0),
///     Event::new(b, Timestamp::from_secs(1), 1),
/// ]);
/// let mut op = Operator::new(query);
/// let complex = op.run(&stream, &mut KeepAll);
/// assert_eq!(complex.len(), 1);
/// ```
#[derive(Debug)]
pub struct Operator {
    query: Query,
    matcher: Matcher,
    open: VecDeque<OpenWindow>,
    /// The *global* window counter: it advances for every window the stream
    /// opens, whether or not this operator owns it, so window ids are
    /// identical across shard counts.
    next_window_id: WindowId,
    /// Which windows this operator materialises: ids congruent to
    /// `shard_index` modulo `shard_count`. An unsharded operator is shard 0
    /// of 1 and owns everything.
    shard_index: u64,
    shard_count: u64,
    /// Events seen since the last count-slide window was opened.
    since_count_open: usize,
    /// Stream time of the last time-slide window opening.
    last_time_open: Option<Timestamp>,
    size_predictor: SizePredictor,
    stats: OperatorStats,
    /// Reusable buffers for the batched shedding call in `push`.
    batch_requests: Vec<BatchRequest>,
    batch_decisions: Vec<Decision>,
}

impl Operator {
    /// Creates an operator for `query`.
    pub fn new(query: Query) -> Self {
        Self::sharded(query, 0, 1)
    }

    /// Creates the shard `shard_index` of `shard_count` cooperating operators
    /// for `query`.
    ///
    /// A sharded operator consumes the *full* event stream but materialises
    /// only the windows whose (global) id is congruent to `shard_index`
    /// modulo `shard_count`. Window-open decisions depend only on the stream
    /// itself, so every shard advances the same global window counter and the
    /// union of all shards' windows — ids included — is exactly the window
    /// set a single unsharded operator produces. [`Operator::new`] is shard
    /// 0 of 1.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero or `shard_index` is out of range.
    pub fn sharded(query: Query, shard_index: usize, shard_count: usize) -> Self {
        assert!(shard_count >= 1, "shard count must be at least 1");
        assert!(shard_index < shard_count, "shard index {shard_index} out of {shard_count}");
        let matcher = Matcher::from_query(&query);
        let initial_size = query.window().expected_size().unwrap_or(100);
        Operator {
            matcher,
            open: VecDeque::new(),
            next_window_id: 0,
            shard_index: shard_index as u64,
            shard_count: shard_count as u64,
            since_count_open: 0,
            last_time_open: None,
            size_predictor: SizePredictor::new(initial_size.max(1), 0.25),
            stats: OperatorStats::default(),
            batch_requests: Vec::new(),
            batch_decisions: Vec::new(),
            query,
        }
    }

    /// The operator's query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// This operator's shard index (0 for an unsharded operator).
    pub fn shard_index(&self) -> usize {
        self.shard_index as usize
    }

    /// The total number of cooperating shards (1 for an unsharded operator).
    pub fn shard_count(&self) -> usize {
        self.shard_count as usize
    }

    /// Seeds the window-size prediction for time-based (variable size)
    /// windows, e.g. with the average window size a previously trained model
    /// observed. Without a hint the predictor starts from a generic default
    /// and only becomes accurate after the first windows close, which skews
    /// position scaling for the earliest windows of a run.
    pub fn set_window_size_hint(&mut self, hint: usize) {
        self.size_predictor = SizePredictor::new(hint.max(1), 0.25);
    }

    /// Counters for the current run.
    pub fn stats(&self) -> &OperatorStats {
        &self.stats
    }

    /// Number of currently open windows.
    pub fn open_windows(&self) -> usize {
        self.open.len()
    }

    /// The current window-size prediction (`N` for variable-size windows,
    /// the configured size for count windows before any window has closed).
    pub fn predicted_window_size(&self) -> usize {
        match self.query.window().expected_size() {
            Some(size) => size,
            None => self.size_predictor.predict(),
        }
    }

    /// Pushes one event through the operator, consulting `decider` for every
    /// (event, window) pair. Returns the complex events of windows that closed
    /// as a consequence of this event.
    pub fn push<D: WindowEventDecider + ?Sized>(
        &mut self,
        event: &Event,
        decider: &mut D,
    ) -> Vec<ComplexEvent> {
        self.stats.events_processed += 1;
        let mut emitted = Vec::new();

        // 1. Close time-based windows the new event no longer fits into.
        //    (Count-based windows close below, when they fill up.)
        let spec = self.query.window().clone();
        let mut still_open = VecDeque::with_capacity(self.open.len());
        while let Some(window) = self.open.pop_front() {
            if spec.accepts(window.meta.opened_at, window.assigned, event) {
                still_open.push_back(window);
            } else {
                emitted.extend(self.close_window(window, decider));
            }
        }
        self.open = still_open;

        // 2. Possibly open a new window at this event. The global window
        //    counter advances for every opened window; the window is only
        //    materialised when this shard owns its id.
        if self.should_open(&spec, event) {
            let id = self.next_window_id;
            self.next_window_id += 1;
            if id % self.shard_count == self.shard_index {
                let meta = WindowMeta {
                    id,
                    opened_at: event.timestamp(),
                    open_seq: event.seq(),
                    predicted_size: self.predicted_window_size(),
                };
                self.stats.windows_opened += 1;
                self.open.push_back(OpenWindow { meta, entries: Vec::new(), assigned: 0 });
            }
        }

        // 3. Assign the event to every open window, asking the decider for
        //    the whole batch of (event, window) pairs at once so it can
        //    amortise per-event lookups across overlapping windows.
        let mut filled = Vec::new();
        if !self.open.is_empty() {
            self.batch_requests.clear();
            for window in self.open.iter_mut() {
                let position = window.assigned;
                window.assigned += 1;
                self.batch_requests.push(BatchRequest { meta: window.meta, position });
            }
            self.stats.assignments += self.batch_requests.len() as u64;
            decider.decide_batch(event, &self.batch_requests, &mut self.batch_decisions);
            assert_eq!(
                self.batch_decisions.len(),
                self.batch_requests.len(),
                "decide_batch must produce exactly one decision per request"
            );
            for (idx, window) in self.open.iter_mut().enumerate() {
                let position = self.batch_requests[idx].position;
                if self.batch_decisions[idx].is_keep() {
                    self.stats.kept += 1;
                    window.entries.push(WindowEntry { position, event: event.clone() });
                } else {
                    self.stats.dropped += 1;
                }
                if !spec.accepts(window.meta.opened_at, window.assigned, event) {
                    // Count-based window reached its size.
                    filled.push(idx);
                }
            }
        }

        // 4. Close windows that filled up (back-to-front so indices stay valid).
        for idx in filled.into_iter().rev() {
            let window = self.open.remove(idx).expect("filled window index is valid");
            emitted.extend(self.close_window(window, decider));
        }

        emitted
    }

    /// Closes all remaining open windows (end of stream) and returns their
    /// complex events.
    pub fn flush<D: WindowEventDecider + ?Sized>(&mut self, decider: &mut D) -> Vec<ComplexEvent> {
        let mut emitted = Vec::new();
        while let Some(window) = self.open.pop_front() {
            emitted.extend(self.close_window(window, decider));
        }
        emitted
    }

    /// Runs the operator over an entire stream and flushes at the end.
    pub fn run<S, D>(&mut self, stream: &S, decider: &mut D) -> Vec<ComplexEvent>
    where
        S: EventStream + ?Sized,
        D: WindowEventDecider + ?Sized,
    {
        let mut out = Vec::new();
        for event in stream.events() {
            out.extend(self.push(event, decider));
        }
        out.extend(self.flush(decider));
        out
    }

    /// Resets all run state (open windows, counters) while keeping the query.
    pub fn reset(&mut self) {
        self.open.clear();
        self.next_window_id = 0;
        self.since_count_open = 0;
        self.last_time_open = None;
        self.stats = OperatorStats::default();
        let initial_size = self.query.window().expected_size().unwrap_or(100);
        self.size_predictor = SizePredictor::new(initial_size.max(1), 0.25);
    }

    fn should_open(&mut self, spec: &WindowSpec, event: &Event) -> bool {
        match spec.open_policy() {
            OpenPolicy::OnTypes(_) => spec.opens_on(event.event_type()),
            OpenPolicy::EveryCount(slide) => {
                let open = self.since_count_open == 0;
                self.since_count_open += 1;
                if self.since_count_open >= *slide {
                    self.since_count_open = 0;
                }
                open
            }
            OpenPolicy::EveryDuration(slide) => match self.last_time_open {
                None => {
                    self.last_time_open = Some(event.timestamp());
                    true
                }
                Some(last) => {
                    if event.timestamp() >= last + *slide {
                        self.last_time_open = Some(event.timestamp());
                        true
                    } else {
                        false
                    }
                }
            },
        }
    }

    fn close_window<D: WindowEventDecider + ?Sized>(
        &mut self,
        window: OpenWindow,
        decider: &mut D,
    ) -> Vec<ComplexEvent> {
        self.stats.windows_closed += 1;
        self.size_predictor.observe(window.assigned);
        decider.window_closed(&window.meta, window.assigned);
        let outcome = self.matcher.matches(window.meta.id, &window.entries);
        self.stats.complex_events += outcome.complex_events.len() as u64;
        outcome.complex_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Decision, KeepAll, Pattern};
    use espice_events::{EventType, SimDuration, VecStream};

    fn ty(i: u32) -> EventType {
        EventType::from_index(i)
    }

    fn ev(t: u32, ts_secs: u64, seq: u64) -> Event {
        Event::new(ty(t), Timestamp::from_secs(ts_secs), seq)
    }

    fn seq_query(window: WindowSpec) -> Query {
        Query::builder().pattern(Pattern::sequence([ty(0), ty(1)])).window(window).build()
    }

    #[test]
    fn count_on_types_window_detects_match() {
        let query = seq_query(WindowSpec::count_on_types(vec![ty(0)], 3));
        let stream = VecStream::from_ordered(vec![ev(0, 0, 0), ev(2, 1, 1), ev(1, 2, 2)]);
        let mut op = Operator::new(query);
        let matches = op.run(&stream, &mut KeepAll);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].key(), (0, vec![0, 2]));
        assert_eq!(op.stats().windows_opened, 1);
        assert_eq!(op.stats().windows_closed, 1);
    }

    #[test]
    fn time_window_closes_when_duration_exceeded() {
        let query = seq_query(WindowSpec::time_on_types(vec![ty(0)], SimDuration::from_secs(10)));
        // Window opens at t=0; event at t=15 falls outside and closes it.
        let stream =
            VecStream::from_ordered(vec![ev(0, 0, 0), ev(1, 5, 1), ev(2, 15, 2), ev(1, 16, 3)]);
        let mut op = Operator::new(query);
        let matches = op.run(&stream, &mut KeepAll);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].key(), (0, vec![0, 1]));
    }

    #[test]
    fn overlapping_windows_share_events() {
        // Every type-0 event opens a 4-event window; a type-1 event can
        // complete matches in several overlapping windows.
        let query = seq_query(WindowSpec::count_on_types(vec![ty(0)], 4));
        let stream = VecStream::from_ordered(vec![
            ev(0, 0, 0),
            ev(0, 1, 1),
            ev(1, 2, 2),
            ev(2, 3, 3),
            ev(2, 4, 4),
            ev(2, 5, 5),
        ]);
        let mut op = Operator::new(query);
        let matches = op.run(&stream, &mut KeepAll);
        assert_eq!(matches.len(), 2);
        // Both windows matched with the shared type-1 event (seq 2).
        assert!(matches.iter().all(|c| c.key().1.contains(&2)));
        assert!(op.stats().assignments > op.stats().events_processed);
    }

    #[test]
    fn count_sliding_windows_open_every_slide() {
        let query = seq_query(WindowSpec::count_sliding(4, 2));
        let events: Vec<Event> = (0..8).map(|i| ev(if i % 2 == 0 { 0 } else { 1 }, i, i)).collect();
        let mut op = Operator::new(query);
        let matches = op.run(&VecStream::from_ordered(events), &mut KeepAll);
        assert_eq!(op.stats().windows_opened, 4);
        assert!(!matches.is_empty());
    }

    #[test]
    fn time_sliding_windows_open_every_slide_duration() {
        let query = seq_query(WindowSpec::time_sliding(
            SimDuration::from_secs(4),
            SimDuration::from_secs(2),
        ));
        let events: Vec<Event> =
            (0..10).map(|i| ev(if i % 2 == 0 { 0 } else { 1 }, i, i)).collect();
        let mut op = Operator::new(query);
        let _ = op.run(&VecStream::from_ordered(events), &mut KeepAll);
        // Openings at t=0,2,4,6,8.
        assert_eq!(op.stats().windows_opened, 5);
    }

    #[test]
    fn flush_emits_matches_of_still_open_windows() {
        let query = seq_query(WindowSpec::time_on_types(vec![ty(0)], SimDuration::from_secs(100)));
        let stream = VecStream::from_ordered(vec![ev(0, 0, 0), ev(1, 1, 1)]);
        let mut op = Operator::new(query);
        let mut keep = KeepAll;
        let mut matches = Vec::new();
        for e in stream.iter() {
            matches.extend(op.push(e, &mut keep));
        }
        assert!(matches.is_empty());
        matches.extend(op.flush(&mut keep));
        assert_eq!(matches.len(), 1);
        assert_eq!(op.open_windows(), 0);
    }

    /// A decider that drops every event of a given type; used to verify the
    /// shedding hook is honoured and reflected in the statistics.
    #[derive(Debug)]
    struct DropType(EventType);

    impl WindowEventDecider for DropType {
        fn decide(&mut self, _meta: &WindowMeta, _position: usize, event: &Event) -> Decision {
            if event.event_type() == self.0 {
                Decision::Drop
            } else {
                Decision::Keep
            }
        }
    }

    #[test]
    fn dropping_a_needed_type_prevents_matches() {
        let query = seq_query(WindowSpec::count_on_types(vec![ty(0)], 3));
        let stream = VecStream::from_ordered(vec![ev(0, 0, 0), ev(1, 1, 1), ev(2, 2, 2)]);
        let mut op = Operator::new(query);
        let matches = op.run(&stream, &mut DropType(ty(1)));
        assert!(matches.is_empty());
        assert_eq!(op.stats().dropped, 1);
        assert_eq!(op.stats().kept, op.stats().assignments - 1);
        assert!(op.stats().drop_ratio() > 0.0);
    }

    #[test]
    fn positions_count_dropped_events_too() {
        // Drop type-2 noise; the later type-1 event must still report its
        // original arrival position (2), not its index among kept events.
        let query = seq_query(WindowSpec::count_on_types(vec![ty(0)], 3));
        let stream = VecStream::from_ordered(vec![ev(0, 0, 0), ev(2, 1, 1), ev(1, 2, 2)]);
        let mut op = Operator::new(query);
        let matches = op.run(&stream, &mut DropType(ty(2)));
        assert_eq!(matches.len(), 1);
        let positions: Vec<_> = matches[0].constituents().iter().map(|c| c.position).collect();
        assert_eq!(positions, vec![0, 2]);
    }

    #[test]
    fn predicted_window_size_tracks_time_windows() {
        let query = seq_query(WindowSpec::time_on_types(vec![ty(0)], SimDuration::from_secs(5)));
        let mut op = Operator::new(query);
        // Two windows of ~6 events each.
        let mut events = Vec::new();
        let mut seq = 0;
        for start in [0u64, 20] {
            events.push(ev(0, start, seq));
            seq += 1;
            for i in 1..6u64 {
                events.push(ev(2, start + i % 5, seq));
                seq += 1;
            }
        }
        let stream = VecStream::from_unordered(events);
        let _ = op.run(&stream, &mut KeepAll);
        assert!(op.predicted_window_size() >= 5 && op.predicted_window_size() <= 7);
    }

    #[test]
    fn reset_clears_state() {
        let query = seq_query(WindowSpec::count_on_types(vec![ty(0)], 3));
        let stream = VecStream::from_ordered(vec![ev(0, 0, 0), ev(1, 1, 1), ev(2, 2, 2)]);
        let mut op = Operator::new(query);
        let _ = op.run(&stream, &mut KeepAll);
        assert!(op.stats().events_processed > 0);
        op.reset();
        assert_eq!(op.stats().events_processed, 0);
        assert_eq!(op.open_windows(), 0);
        // Re-running after reset produces the same results.
        let matches = op.run(&stream, &mut KeepAll);
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn sharded_operators_partition_windows_by_global_id() {
        let events: Vec<Event> =
            (0..24).map(|i| ev(if i % 3 == 0 { 0 } else { 1 }, i, i)).collect();
        let stream = VecStream::from_ordered(events);
        let query = seq_query(WindowSpec::count_on_types(vec![ty(0)], 4));

        let mut single = Operator::new(query.clone());
        let expected = single.run(&stream, &mut KeepAll);

        let mut merged = Vec::new();
        let mut opened = 0;
        let mut assignments = 0;
        for index in 0..3 {
            let mut shard = Operator::sharded(query.clone(), index, 3);
            let out = shard.run(&stream, &mut KeepAll);
            // Every materialised window id belongs to this shard.
            assert!(out.iter().all(|c| c.window_id() % 3 == index as u64));
            merged.extend(out);
            opened += shard.stats().windows_opened;
            assignments += shard.stats().assignments;
            // Every shard sees the whole stream.
            assert_eq!(shard.stats().events_processed, stream.len() as u64);
        }
        merged.sort_by_key(|c| c.window_id());
        assert_eq!(merged, expected);
        assert_eq!(opened, single.stats().windows_opened);
        assert_eq!(assignments, single.stats().assignments);
    }

    #[test]
    fn sharded_operator_rejects_bad_shard_geometry() {
        let query = seq_query(WindowSpec::count_sliding(4, 2));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = Operator::sharded(query.clone(), 2, 2);
        }));
        assert!(result.is_err());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = Operator::sharded(query, 0, 0);
        }));
        assert!(result.is_err());
    }

    /// A decider that drops everything via an overridden `decide_batch`, to
    /// verify the operator honours batched decisions in its bookkeeping.
    #[derive(Debug)]
    struct BatchDropAll;

    impl WindowEventDecider for BatchDropAll {
        fn decide(&mut self, _meta: &WindowMeta, _position: usize, _event: &Event) -> Decision {
            unreachable!("operator must use decide_batch");
        }

        fn decide_batch(
            &mut self,
            _event: &Event,
            requests: &[crate::BatchRequest],
            decisions: &mut Vec<Decision>,
        ) {
            decisions.clear();
            decisions.resize(requests.len(), Decision::Drop);
        }
    }

    #[test]
    fn operator_routes_decisions_through_decide_batch() {
        let query = seq_query(WindowSpec::count_on_types(vec![ty(0)], 3));
        let stream = VecStream::from_ordered(vec![ev(0, 0, 0), ev(1, 1, 1), ev(2, 2, 2)]);
        let mut op = Operator::new(query);
        let matches = op.run(&stream, &mut BatchDropAll);
        assert!(matches.is_empty());
        assert_eq!(op.stats().dropped, op.stats().assignments);
        assert_eq!(op.stats().kept, 0);
    }

    #[test]
    fn operator_stats_merge_sums_counters() {
        let a = OperatorStats {
            events_processed: 1,
            windows_opened: 2,
            windows_closed: 3,
            assignments: 4,
            kept: 3,
            dropped: 1,
            complex_events: 5,
        };
        let mut b = a.clone();
        b.merge(&a);
        assert_eq!(b.assignments, 8);
        assert_eq!(b.kept, 6);
        assert_eq!(b.dropped, 2);
        assert_eq!(b.complex_events, 10);
    }

    #[test]
    fn stats_complex_event_counter_matches_output() {
        let query = seq_query(WindowSpec::count_on_types(vec![ty(0)], 3));
        let stream = VecStream::from_ordered(vec![
            ev(0, 0, 0),
            ev(1, 1, 1),
            ev(2, 2, 2),
            ev(0, 3, 3),
            ev(1, 4, 4),
            ev(2, 5, 5),
        ]);
        let mut op = Operator::new(query);
        let matches = op.run(&stream, &mut KeepAll);
        assert_eq!(op.stats().complex_events as usize, matches.len());
    }
}

//! The CEP operator: window management + pattern matching + shedding hook.
//!
//! The operator mirrors Figure 1 of the paper: incoming primitive events are
//! assigned to every open window they belong to; the load shedder (a
//! [`WindowEventDecider`]) is consulted for every (event, window) pair; when a
//! window closes, the pattern matcher runs over the kept events and emits
//! complex events.
//!
//! # Shared window storage
//!
//! Overlapping windows share their events through one operator-owned
//! [`EventRing`]: a kept event is appended **once**, regardless of how many
//! windows it belongs to, and each open window only records the ring slot at
//! which it started plus the positions its decider dropped (a [`DropSet`]).
//! Since every open window is assigned every arriving event, an event's
//! arrival position within a window is just `slot - window.start`, so the
//! per-event storage work is O(1) in the overlap factor where it used to be
//! O(overlap) `WindowEntry` clones. When a window closes the matcher runs
//! over references into the shared slice, skipping the dropped slots; the
//! ring is pruned back to the oldest still-open window's start (windows
//! close in open order, so nothing below that can ever be referenced again).

use crate::matcher::EntryRef;
use crate::ring::{DropSet, EventRing, SlotIndex};
use crate::window::{OpenTracker, SharedSizePredictor, SizePredictor};
use crate::{
    BatchRequest, ComplexEvent, Decision, Matcher, Query, QueryId, WindowEventDecider,
    WindowExtent, WindowId, WindowMeta,
};
use espice_events::{Event, EventStream};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

/// Counters describing one operator run.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperatorStats {
    /// Primitive events pushed into the operator.
    pub events_processed: u64,
    /// Windows opened.
    pub windows_opened: u64,
    /// Windows closed (matched).
    pub windows_closed: u64,
    /// (event, window) assignments considered, i.e. shedding decisions taken.
    pub assignments: u64,
    /// Assignments kept by the decider.
    pub kept: u64,
    /// Assignments dropped by the decider.
    pub dropped: u64,
    /// Complex events emitted.
    pub complex_events: u64,
}

impl OperatorStats {
    /// Fraction of (event, window) assignments that were dropped.
    pub fn drop_ratio(&self) -> f64 {
        if self.assignments == 0 {
            0.0
        } else {
            self.dropped as f64 / self.assignments as f64
        }
    }

    /// Adds every counter of `other` into `self`. Used by the sharded engine
    /// to merge per-shard statistics into engine-level totals.
    pub fn merge(&mut self, other: &OperatorStats) {
        self.events_processed += other.events_processed;
        self.windows_opened += other.windows_opened;
        self.windows_closed += other.windows_closed;
        self.assignments += other.assignments;
        self.kept += other.kept;
        self.dropped += other.dropped;
        self.complex_events += other.complex_events;
    }
}

/// Where the operator's window-size prediction lives: owned by this
/// operator (the default), or shared with the other shards of an engine so
/// predictions on time-based windows do not drift with the shard count.
#[derive(Debug)]
enum Prediction {
    Local(SizePredictor),
    Shared(Arc<SharedSizePredictor>),
}

impl Prediction {
    fn observe(&mut self, size: usize) {
        match self {
            Prediction::Local(predictor) => predictor.observe(size),
            Prediction::Shared(shared) => shared.observe(size),
        }
    }

    fn predict(&self) -> usize {
        match self {
            Prediction::Local(predictor) => predictor.predict(),
            Prediction::Shared(shared) => shared.predict(),
        }
    }

    fn reset_to(&mut self, initial: usize) {
        match self {
            Prediction::Local(predictor) => *predictor = SizePredictor::new(initial, 0.25),
            Prediction::Shared(shared) => shared.reset_to(initial),
        }
    }
}

/// State of one open window: a compact record over the shared event ring.
///
/// The window's events are the ring slots `[start, start + assigned)` minus
/// the positions in `dropped`; `assigned` itself is derived as
/// `ring.next_slot() - start` because the window has been assigned every
/// event appended since it opened.
#[derive(Debug)]
struct OpenWindow {
    meta: WindowMeta,
    /// Ring slot of the window's first assigned event.
    start: SlotIndex,
    /// Operator-counted stream position of the event the window opened on
    /// (`events_processed - 1` at open time). On the fused engine path every
    /// shard scans the full stream, so this equals the producer-counted
    /// position — the coordinate chunk-replay recovery acknowledges in.
    start_pos: u64,
    /// Positions (slot offsets) the decider dropped from *this* window.
    dropped: DropSet,
    /// pSPICE-style partial-match store, tracked only when the decider
    /// returned a budget from
    /// [`WindowEventDecider::partial_match_budget`] at open time. Kept
    /// events feed it; past the budget it evicts the open partial match
    /// with the lowest utility-per-remaining-cost and retro-drops
    /// constituents nothing else references into `dropped`.
    partial: Option<crate::partial::PartialStore>,
}

/// A single CEP operator executing one [`Query`].
///
/// # Example
///
/// ```
/// use espice_cep::{Operator, Query, Pattern, PatternStep, WindowSpec, KeepAll};
/// use espice_events::{Event, EventType, Timestamp, VecStream};
///
/// let a = EventType::from_index(0);
/// let b = EventType::from_index(1);
/// let query = Query::builder()
///     .pattern(Pattern::sequence([a, b]))
///     .window(WindowSpec::count_on_types(vec![a], 4))
///     .build();
///
/// let stream = VecStream::from_ordered(vec![
///     Event::new(a, Timestamp::from_secs(0), 0),
///     Event::new(b, Timestamp::from_secs(1), 1),
/// ]);
/// let mut op = Operator::new(query);
/// let complex = op.run(&stream, &mut KeepAll);
/// assert_eq!(complex.len(), 1);
/// ```
#[derive(Debug)]
pub struct Operator {
    query: Query,
    /// The window extent, cached out of `query` once at construction: it is
    /// `Copy`, so the per-event accept/close checks neither clone nor borrow
    /// the full `WindowSpec` on the hot path.
    extent: WindowExtent,
    matcher: Matcher,
    /// Shared storage for the events of all open windows.
    ring: EventRing,
    /// Largest number of events ever resident in the ring at once.
    peak_resident: usize,
    open: VecDeque<OpenWindow>,
    /// The *global* window counter: it advances for every window the stream
    /// opens, whether or not this operator owns it, so window ids are
    /// identical across shard counts.
    next_window_id: WindowId,
    /// Which windows this operator materialises: ids congruent to
    /// `shard_index` modulo `shard_count`. An unsharded operator is shard 0
    /// of 1 and owns everything.
    shard_index: u64,
    shard_count: u64,
    /// Which query of a multi-query engine this operator executes (stamped
    /// into every [`WindowMeta`]); 0 for a standalone operator.
    query_id: QueryId,
    /// Open-policy state for self-driven pushes. A fused multi-query shard
    /// bypasses it via [`push_opened`](Operator::push_opened) and tracks
    /// opens itself (shared across queries with equal policies).
    opener: OpenTracker,
    prediction: Prediction,
    /// While set, window closes skip [`Prediction::observe`]. Chunk-replay
    /// recovery mutes a replacement shard's operators for the replayed span:
    /// every close up to the last flushed boundary was already fed into the
    /// shared predictor by the crashed incarnation, so observing it again
    /// would double-count (see [`crate::resilience`]).
    predictor_muted: bool,
    stats: OperatorStats,
    /// Reusable buffers for the batched shedding call in `push`.
    batch_requests: Vec<BatchRequest>,
    batch_decisions: Vec<Decision>,
}

impl Operator {
    /// Creates an operator for `query`.
    pub fn new(query: Query) -> Self {
        Self::sharded(query, 0, 1)
    }

    /// Creates the shard `shard_index` of `shard_count` cooperating operators
    /// for `query`.
    ///
    /// A sharded operator consumes the *full* event stream but materialises
    /// only the windows whose (global) id is congruent to `shard_index`
    /// modulo `shard_count`. Window-open decisions depend only on the stream
    /// itself, so every shard advances the same global window counter and the
    /// union of all shards' windows — ids included — is exactly the window
    /// set a single unsharded operator produces. [`Operator::new`] is shard
    /// 0 of 1.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero or `shard_index` is out of range.
    pub fn sharded(query: Query, shard_index: usize, shard_count: usize) -> Self {
        Self::for_query(query, 0, shard_index, shard_count)
    }

    /// Creates the operator executing query `query_id` of a multi-query
    /// engine, as shard `shard_index` of `shard_count`. The query id is
    /// stamped into every [`WindowMeta`] the operator emits, so shedders
    /// that key state on windows can distinguish the windows of different
    /// queries (`(query, id)` is the engine-wide window key).
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero or `shard_index` is out of range.
    pub fn for_query(
        query: Query,
        query_id: QueryId,
        shard_index: usize,
        shard_count: usize,
    ) -> Self {
        assert!(shard_count >= 1, "shard count must be at least 1");
        assert!(shard_index < shard_count, "shard index {shard_index} out of {shard_count}");
        let matcher = Matcher::from_query(&query);
        let initial_size = query.window().expected_size().unwrap_or(100);
        Operator {
            extent: query.window().extent(),
            matcher,
            ring: EventRing::new(),
            peak_resident: 0,
            open: VecDeque::new(),
            next_window_id: 0,
            shard_index: shard_index as u64,
            shard_count: shard_count as u64,
            query_id,
            opener: OpenTracker::new(query.window().open_policy().clone()),
            prediction: Prediction::Local(SizePredictor::new(initial_size.max(1), 0.25)),
            predictor_muted: false,
            stats: OperatorStats::default(),
            batch_requests: Vec::new(),
            batch_decisions: Vec::new(),
            query,
        }
    }

    /// The operator's query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// This operator's shard index (0 for an unsharded operator).
    pub fn shard_index(&self) -> usize {
        self.shard_index as usize
    }

    /// The total number of cooperating shards (1 for an unsharded operator).
    pub fn shard_count(&self) -> usize {
        self.shard_count as usize
    }

    /// The query id this operator stamps into its windows (0 unless created
    /// via [`for_query`](Operator::for_query)).
    pub fn query_id(&self) -> QueryId {
        self.query_id
    }

    /// Seeds the window-size prediction for time-based (variable size)
    /// windows, e.g. with the average window size a previously trained model
    /// observed. Without a hint the predictor starts from a generic default
    /// and only becomes accurate after the first windows close, which skews
    /// position scaling for the earliest windows of a run.
    pub fn set_window_size_hint(&mut self, hint: usize) {
        self.prediction.reset_to(hint.max(1));
    }

    /// Replaces the operator's local window-size predictor with one shared
    /// across all shards of an engine. On time-based (variable size)
    /// windows a local predictor only observes the windows this shard owns,
    /// so `predicted_size` drifts with the shard count; a shared predictor
    /// feeds every closure into one estimate. Count-based windows never
    /// consult the predictor.
    pub fn share_size_predictor(&mut self, shared: Arc<SharedSizePredictor>) {
        self.prediction = Prediction::Shared(shared);
    }

    /// Counters for the current run.
    pub fn stats(&self) -> &OperatorStats {
        &self.stats
    }

    /// Number of currently open windows.
    pub fn open_windows(&self) -> usize {
        self.open.len()
    }

    /// Number of events currently resident in the shared event ring. Bounded
    /// by the span of the *oldest* open window, not by that span times the
    /// overlap factor.
    pub fn resident_entries(&self) -> usize {
        self.ring.len()
    }

    /// The largest number of events that were ever resident at once during
    /// this run (peak memory footprint of the window storage, in events).
    pub fn peak_resident_entries(&self) -> usize {
        self.peak_resident
    }

    /// Stream position (operator-counted) of the oldest still-open window's
    /// first event, or `None` with no window open. This is the replay
    /// low-water mark: re-feeding the stream from here reproduces every
    /// window currently open.
    pub(crate) fn oldest_open_start_pos(&self) -> Option<u64> {
        self.open.front().map(|w| w.start_pos)
    }

    /// The global window counter (advances for every window the stream
    /// opens, owned or not). Captured at chunk boundaries so a replacement
    /// shard can restart its id sequence exactly where a checkpoint was cut.
    pub(crate) fn next_window_id(&self) -> WindowId {
        self.next_window_id
    }

    /// Positions a *fresh* operator at a replay checkpoint: the window-id
    /// counter resumes from `next_window_id` and the event counter from
    /// `position`, as if the operator had already scanned the first
    /// `position` events without opening anything that is still open.
    pub(crate) fn restore_for_replay(&mut self, next_window_id: WindowId, position: u64) {
        self.next_window_id = next_window_id;
        self.stats.events_processed = position;
    }

    /// Overwrites the run counters wholesale. Used when a replayed
    /// replacement reaches the crashed incarnation's last flushed boundary:
    /// from there on the counters must continue from the original's values,
    /// not from the replay's (which only saw the suffix of the stream).
    pub(crate) fn overwrite_counters(&mut self, stats: OperatorStats, peak_resident: usize) {
        self.stats = stats;
        self.peak_resident = peak_resident;
    }

    /// The engine-shared size predictor's `(sum, count)` accumulator, or
    /// `None` for a local predictor. Captured into replay checkpoints so a
    /// replacement can rewind the estimator instead of double-observing
    /// the closes it re-derives during chunk replay.
    pub(crate) fn predictor_snapshot(&self) -> Option<(u64, u64)> {
        match &self.prediction {
            Prediction::Shared(shared) => Some(shared.snapshot()),
            Prediction::Local(_) => None,
        }
    }

    /// Rewinds the engine-shared size predictor to a checkpoint snapshot
    /// (no-op for local predictors and for checkpoints cut before the
    /// predictor was shared).
    pub(crate) fn restore_predictor(&self, snapshot: Option<(u64, u64)>) {
        if let (Prediction::Shared(shared), Some((sum, count))) = (&self.prediction, snapshot) {
            shared.restore(sum, count);
        }
    }

    /// Mutes (or unmutes) window-size observation on close. Recovery mutes a
    /// replacement's operators while it replays the span up to the crashed
    /// incarnation's last flushed boundary — those closes already fed the
    /// shared predictor once — and unmutes at the counter hand-over.
    pub(crate) fn set_predictor_muted(&mut self, muted: bool) {
        self.predictor_muted = muted;
    }

    /// Total entries written to the window storage during this run. With the
    /// shared ring this is one write per event assigned to at least one
    /// window — per-window storage writes each kept event once per
    /// overlapping window instead (compare with [`OperatorStats::kept`]).
    pub fn entries_written(&self) -> u64 {
        self.ring.next_slot()
    }

    /// The current window-size prediction (`N` for variable-size windows,
    /// the configured size for count windows before any window has closed).
    pub fn predicted_window_size(&self) -> usize {
        match self.query.window().expected_size() {
            Some(size) => size,
            None => self.prediction.predict(),
        }
    }

    /// Pushes one event through the operator, consulting `decider` for every
    /// (event, window) pair. Returns the complex events of windows that closed
    /// as a consequence of this event.
    pub fn push<D: WindowEventDecider + ?Sized>(
        &mut self,
        event: &Event,
        decider: &mut D,
    ) -> Vec<ComplexEvent> {
        let opens = self.opener.should_open(event);
        self.push_opened(event, opens, decider)
    }

    /// [`push`](Operator::push) with the window-open decision supplied by
    /// the caller instead of the operator's own [`OpenTracker`]. This is
    /// the fused multi-query entry point: a shard serving several queries
    /// evaluates each distinct open policy **once** per event and feeds the
    /// shared decision to every operator in the policy group. The caller
    /// takes over the open bookkeeping entirely — `opens` must equal what
    /// the operator's own tracker would have answered, for every event of
    /// the stream in order, or window populations diverge from a
    /// self-driven run. Do not mix with [`push`](Operator::push) in one
    /// run.
    ///
    /// Ownership stays the operator's static partition: an opening window
    /// is materialised iff `id % shard_count == shard_index`. A caller with
    /// a dynamic [`OwnershipPolicy`](crate::OwnershipPolicy) supplies its
    /// own ownership verdict through the crate-internal `push_routed`
    /// instead.
    pub fn push_opened<D: WindowEventDecider + ?Sized>(
        &mut self,
        event: &Event,
        opens: bool,
        decider: &mut D,
    ) -> Vec<ComplexEvent> {
        let owned = opens && self.next_window_id % self.shard_count == self.shard_index;
        self.push_routed(event, opens, owned, decider)
    }

    /// [`push_opened`](Operator::push_opened) with the *ownership* decision
    /// supplied by the caller too: when `opens` is true the global window
    /// counter advances on every shard as always, but the window is
    /// materialised (buffered, shed, matched) here iff `owned`. The caller
    /// must grant each window to exactly one shard — the shard's ownership
    /// table derives `owned` deterministically from the open position, so
    /// all shards agree without coordination (see
    /// [`Shard::set_ownership_policy`](crate::Shard::set_ownership_policy)).
    /// `owned` must be false whenever `opens` is false.
    pub(crate) fn push_routed<D: WindowEventDecider + ?Sized>(
        &mut self,
        event: &Event,
        opens: bool,
        owned: bool,
        decider: &mut D,
    ) -> Vec<ComplexEvent> {
        debug_assert!(opens || !owned, "ownership of a window that does not open");
        self.stats.events_processed += 1;
        let mut emitted = Vec::new();

        // 1. Close time-based windows the new event no longer fits into.
        //    Windows open in stream order and share one duration, so the
        //    expired windows are a prefix of the deque: pop from the front
        //    instead of rebuilding the deque. (Count-based windows close in
        //    step 4, when they fill up.)
        if matches!(self.extent, WindowExtent::Time(_)) {
            let extent = self.extent;
            let mut closed_any = false;
            while self.open.front().is_some_and(|w| !extent.accepts(w.meta.opened_at, 0, event)) {
                let window = self.open.pop_front().expect("front checked above");
                emitted.extend(self.close_window(window, decider));
                closed_any = true;
            }
            if closed_any {
                self.prune_ring();
            }
        }

        // 2. Possibly open a new window at this event. The global window
        //    counter advances for every opened window; the window is only
        //    materialised when this shard owns it.
        if opens {
            let id = self.next_window_id;
            self.next_window_id += 1;
            if owned {
                let meta = WindowMeta {
                    id,
                    query: self.query_id,
                    opened_at: event.timestamp(),
                    open_seq: event.seq(),
                    predicted_size: self.predicted_window_size(),
                };
                self.stats.windows_opened += 1;
                // The budget is consulted exactly once per window open, so
                // already-open windows finish under the budget they started
                // with and replay-based recovery reconstructs identical
                // stores.
                let partial =
                    decider.partial_match_budget(&meta).map(crate::partial::PartialStore::new);
                self.open.push_back(OpenWindow {
                    meta,
                    start: self.ring.next_slot(),
                    start_pos: self.stats.events_processed - 1,
                    dropped: DropSet::new(),
                    partial,
                });
            }
        }

        // 3. Assign the event to every open window: append it *once* to the
        //    shared ring, then ask the decider for the whole batch of
        //    (event, window) pairs at once so it can amortise per-event
        //    lookups across overlapping windows. A drop only records the
        //    position in that window's drop set — the ring entry is shared,
        //    so a drop in one window never affects the others.
        if !self.open.is_empty() {
            let slot = self.ring.push(event.clone());
            self.peak_resident = self.peak_resident.max(self.ring.len());
            self.batch_requests.clear();
            for window in self.open.iter() {
                let position = (slot - window.start) as usize;
                self.batch_requests.push(BatchRequest { meta: window.meta, position });
            }
            self.stats.assignments += self.batch_requests.len() as u64;
            decider.decide_batch(event, &self.batch_requests, &mut self.batch_decisions);
            assert_eq!(
                self.batch_decisions.len(),
                self.batch_requests.len(),
                "decide_batch must produce exactly one decision per request"
            );
            let mut kept = 0u64;
            let mut retro = 0u64;
            let pattern = self.query.pattern();
            for (window, decision) in self.open.iter_mut().zip(&self.batch_decisions) {
                let position = (slot - window.start) as usize;
                if decision.is_keep() {
                    kept += 1;
                    if let Some(store) = window.partial.as_mut() {
                        let utility = decider.constituent_utility(&window.meta, position, event);
                        retro += store.feed(pattern, position, event, utility, &mut window.dropped)
                            as u64;
                    }
                } else {
                    window.dropped.push(position);
                }
            }
            self.stats.kept += kept;
            self.stats.dropped += self.batch_requests.len() as u64 - kept;
            // Retro-drops demote assignments that were already counted as
            // kept (possibly in earlier pushes), preserving
            // `kept + dropped == assignments`.
            self.stats.kept -= retro;
            self.stats.dropped += retro;
        }

        // 4. Close count-based windows that filled up. Older windows always
        //    hold at least as many events as younger ones (every open window
        //    is assigned every event, and windows open one per event at
        //    most), so the filled windows are a prefix of the deque and
        //    pop_front preserves close order without shifting — the seed
        //    engine's O(n) `VecDeque::remove(idx)` is gone.
        if let WindowExtent::Count(size) = self.extent {
            let next = self.ring.next_slot();
            let mut closed_any = false;
            while self.open.front().is_some_and(|w| (next - w.start) as usize >= size) {
                let window = self.open.pop_front().expect("front checked above");
                emitted.extend(self.close_window(window, decider));
                closed_any = true;
            }
            if closed_any {
                self.prune_ring();
            }
            debug_assert!(
                self.open.iter().all(|w| ((next - w.start) as usize) < size),
                "filled count windows must form a prefix of the open deque"
            );
        }

        emitted
    }

    /// Pushes a whole *span* of events — a stream slice on which **no
    /// window opens** for this operator — deciding every open window
    /// against the span at once via
    /// [`WindowEventDecider::decide_span`].
    ///
    /// The caller guarantees that no event of the span opens a window (the
    /// fused shard splits spans at opening events, which take the per-event
    /// [`push_opened`](Operator::push_opened) path, and at draining slots,
    /// whose teardown must freeze counters at the exact closing event).
    /// Because no window opens mid-span, every open window sees the span at
    /// consecutive positions, so a compiling decider can walk its verdict
    /// table sequentially instead of rebuilding a batch-request vector per
    /// event. The span is cut into sub-runs at window closes: a sub-run
    /// never crosses the front window's fill (count extents) or expiry
    /// (time extents), so windows close at exactly the event they would
    /// close at on the per-event path and the merged output stays
    /// byte-identical.
    pub(crate) fn push_span<D: WindowEventDecider + ?Sized>(
        &mut self,
        events: &[Event],
        decider: &mut D,
        emitted: &mut Vec<ComplexEvent>,
    ) {
        let mut remaining = events;
        while !remaining.is_empty() {
            // Close time-based windows the sub-run's first event no longer
            // fits into (step 1 of `push_routed`, hoisted to the sub-run
            // boundary — sub-runs are cut so no window expires inside one).
            if matches!(self.extent, WindowExtent::Time(_)) {
                let extent = self.extent;
                let first = &remaining[0];
                let mut closed_any = false;
                while self.open.front().is_some_and(|w| !extent.accepts(w.meta.opened_at, 0, first))
                {
                    let window = self.open.pop_front().expect("front checked above");
                    emitted.extend(self.close_window(window, decider));
                    closed_any = true;
                }
                if closed_any {
                    self.prune_ring();
                }
            }

            // With no window open and none opening (caller guarantee), the
            // rest of the span only advances the event counter — nothing is
            // buffered and nothing can close.
            let Some(front) = self.open.front() else {
                self.stats.events_processed += remaining.len() as u64;
                return;
            };

            // The longest prefix of `remaining` during which no window
            // closes. Windows close oldest-first (they open in stream order
            // and share one extent), so the front window bounds the sub-run
            // for every open window at once.
            let limit = match self.extent {
                WindowExtent::Count(size) => {
                    let assigned = (self.ring.next_slot() - front.start) as usize;
                    debug_assert!(assigned < size, "a filled count window was left open");
                    (size - assigned).min(remaining.len())
                }
                WindowExtent::Time(_) => {
                    let opened_at = front.meta.opened_at;
                    let extent = self.extent;
                    remaining
                        .iter()
                        .position(|event| !extent.accepts(opened_at, 0, event))
                        .unwrap_or(remaining.len())
                }
            };
            let (sub_run, rest) = remaining.split_at(limit);
            remaining = rest;

            // Assign the sub-run to every open window: append it once to
            // the shared ring, then let the decider walk each window's
            // consecutive position range (step 3 of `push_routed`,
            // span-at-a-time).
            let base = self.ring.next_slot();
            for event in sub_run {
                self.ring.push(event.clone());
            }
            self.peak_resident = self.peak_resident.max(self.ring.len());
            let assigned = sub_run.len() as u64;
            let mut dropped_total = 0u64;
            let mut retro_total = 0u64;
            let pattern = self.query.pattern();
            for window in self.open.iter_mut() {
                let start_position = (base - window.start) as usize;
                let dropped =
                    decider.decide_span(&window.meta, start_position, sub_run, &mut window.dropped);
                dropped_total += dropped as u64;
                if let Some(store) = window.partial.as_mut() {
                    // Feed the window's kept positions in order — the same
                    // per-window sequence the per-event path produces, so
                    // the store state (and its retro-drops) stays
                    // byte-identical between the two paths.
                    for (offset, event) in sub_run.iter().enumerate() {
                        let position = start_position + offset;
                        if window.dropped.contains(position) {
                            continue;
                        }
                        let utility = decider.constituent_utility(&window.meta, position, event);
                        retro_total +=
                            store.feed(pattern, position, event, utility, &mut window.dropped)
                                as u64;
                    }
                }
            }
            let windows = self.open.len() as u64;
            self.stats.assignments += assigned * windows;
            self.stats.dropped += dropped_total;
            self.stats.kept += assigned * windows - dropped_total;
            // Retro-drops demote previously-kept assignments (see
            // `push_routed` step 3); order matters — this sub-run's kept
            // are added above before older ones are demoted.
            self.stats.kept -= retro_total;
            self.stats.dropped += retro_total;
            self.stats.events_processed += assigned;

            // Close count-based windows the sub-run filled (step 4 of
            // `push_routed`; at most the front can fill, but mirror the
            // prefix pop for robustness).
            if let WindowExtent::Count(size) = self.extent {
                let next = self.ring.next_slot();
                let mut closed_any = false;
                while self.open.front().is_some_and(|w| (next - w.start) as usize >= size) {
                    let window = self.open.pop_front().expect("front checked above");
                    emitted.extend(self.close_window(window, decider));
                    closed_any = true;
                }
                if closed_any {
                    self.prune_ring();
                }
            }
        }
    }

    /// Closes all remaining open windows (end of stream) and returns their
    /// complex events.
    pub fn flush<D: WindowEventDecider + ?Sized>(&mut self, decider: &mut D) -> Vec<ComplexEvent> {
        let mut emitted = Vec::new();
        while let Some(window) = self.open.pop_front() {
            emitted.extend(self.close_window(window, decider));
        }
        self.prune_ring();
        emitted
    }

    /// Runs the operator over an entire stream and flushes at the end.
    pub fn run<S, D>(&mut self, stream: &S, decider: &mut D) -> Vec<ComplexEvent>
    where
        S: EventStream + ?Sized,
        D: WindowEventDecider + ?Sized,
    {
        let mut out = Vec::new();
        for event in stream.events() {
            out.extend(self.push(event, decider));
        }
        out.extend(self.flush(decider));
        out
    }

    /// Resets all run state (open windows, counters) while keeping the query.
    pub fn reset(&mut self) {
        self.open.clear();
        self.ring.reset();
        self.peak_resident = 0;
        self.next_window_id = 0;
        self.opener.reset();
        self.predictor_muted = false;
        self.stats = OperatorStats::default();
        let initial_size = self.query.window().expected_size().unwrap_or(100);
        self.prediction.reset_to(initial_size.max(1));
    }

    /// Releases the ring slots no open window can reference anymore. Open
    /// windows are ordered by start slot, so the front window bounds them
    /// all; with no window open the ring empties completely.
    fn prune_ring(&mut self) {
        match self.open.front() {
            Some(window) => self.ring.release_before(window.start),
            None => self.ring.release_all(),
        }
    }

    fn close_window<D: WindowEventDecider + ?Sized>(
        &mut self,
        window: OpenWindow,
        decider: &mut D,
    ) -> Vec<ComplexEvent> {
        // The window was assigned every event appended since it opened.
        let assigned = (self.ring.next_slot() - window.start) as usize;
        self.stats.windows_closed += 1;
        if !self.predictor_muted {
            self.prediction.observe(assigned);
        }
        decider.window_closed(&window.meta, assigned);
        let outcome = if window.dropped.is_empty() {
            // Nothing was dropped: the window's events are exactly the ring
            // slots `[start, start + assigned)`, so the matcher can run over
            // the ring's slice pair directly — the common no-shedding close
            // allocates no per-close entry vector at all.
            let (head, tail) = self.ring.slices(window.start, assigned);
            self.matcher.matches_ring(window.meta.id, head, tail)
        } else {
            // Walk the shared slice once, merging out the (sorted) dropped
            // positions; positions are derived from the slot offset, so they
            // are identical to what per-window storage would have recorded.
            let mut refs = Vec::with_capacity(assigned - window.dropped.len());
            let mut drops = window.dropped.iter();
            let mut next_drop = drops.next();
            for (position, event) in self.ring.range(window.start, assigned).enumerate() {
                if next_drop == Some(position as u32) {
                    next_drop = drops.next();
                    continue;
                }
                refs.push(EntryRef { position, event });
            }
            self.matcher.matches_refs(window.meta.id, &refs)
        };
        self.stats.complex_events += outcome.complex_events.len() as u64;
        outcome.complex_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KeepAll, Pattern, WindowSpec};
    use espice_events::{EventType, SimDuration, Timestamp, VecStream};

    fn ty(i: u32) -> EventType {
        EventType::from_index(i)
    }

    fn ev(t: u32, ts_secs: u64, seq: u64) -> Event {
        Event::new(ty(t), Timestamp::from_secs(ts_secs), seq)
    }

    fn seq_query(window: WindowSpec) -> Query {
        Query::builder().pattern(Pattern::sequence([ty(0), ty(1)])).window(window).build()
    }

    #[test]
    fn count_on_types_window_detects_match() {
        let query = seq_query(WindowSpec::count_on_types(vec![ty(0)], 3));
        let stream = VecStream::from_ordered(vec![ev(0, 0, 0), ev(2, 1, 1), ev(1, 2, 2)]);
        let mut op = Operator::new(query);
        let matches = op.run(&stream, &mut KeepAll);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].key(), (0, vec![0, 2]));
        assert_eq!(op.stats().windows_opened, 1);
        assert_eq!(op.stats().windows_closed, 1);
    }

    #[test]
    fn time_window_closes_when_duration_exceeded() {
        let query = seq_query(WindowSpec::time_on_types(vec![ty(0)], SimDuration::from_secs(10)));
        // Window opens at t=0; event at t=15 falls outside and closes it.
        let stream =
            VecStream::from_ordered(vec![ev(0, 0, 0), ev(1, 5, 1), ev(2, 15, 2), ev(1, 16, 3)]);
        let mut op = Operator::new(query);
        let matches = op.run(&stream, &mut KeepAll);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].key(), (0, vec![0, 1]));
    }

    #[test]
    fn overlapping_windows_share_events() {
        // Every type-0 event opens a 4-event window; a type-1 event can
        // complete matches in several overlapping windows.
        let query = seq_query(WindowSpec::count_on_types(vec![ty(0)], 4));
        let stream = VecStream::from_ordered(vec![
            ev(0, 0, 0),
            ev(0, 1, 1),
            ev(1, 2, 2),
            ev(2, 3, 3),
            ev(2, 4, 4),
            ev(2, 5, 5),
        ]);
        let mut op = Operator::new(query);
        let matches = op.run(&stream, &mut KeepAll);
        assert_eq!(matches.len(), 2);
        // Both windows matched with the shared type-1 event (seq 2).
        assert!(matches.iter().all(|c| c.key().1.contains(&2)));
        assert!(op.stats().assignments > op.stats().events_processed);
    }

    #[test]
    fn count_sliding_windows_open_every_slide() {
        let query = seq_query(WindowSpec::count_sliding(4, 2));
        let events: Vec<Event> = (0..8).map(|i| ev(if i % 2 == 0 { 0 } else { 1 }, i, i)).collect();
        let mut op = Operator::new(query);
        let matches = op.run(&VecStream::from_ordered(events), &mut KeepAll);
        assert_eq!(op.stats().windows_opened, 4);
        assert!(!matches.is_empty());
    }

    #[test]
    fn time_sliding_windows_open_every_slide_duration() {
        let query = seq_query(WindowSpec::time_sliding(
            SimDuration::from_secs(4),
            SimDuration::from_secs(2),
        ));
        let events: Vec<Event> =
            (0..10).map(|i| ev(if i % 2 == 0 { 0 } else { 1 }, i, i)).collect();
        let mut op = Operator::new(query);
        let _ = op.run(&VecStream::from_ordered(events), &mut KeepAll);
        // Openings at t=0,2,4,6,8.
        assert_eq!(op.stats().windows_opened, 5);
    }

    #[test]
    fn flush_emits_matches_of_still_open_windows() {
        let query = seq_query(WindowSpec::time_on_types(vec![ty(0)], SimDuration::from_secs(100)));
        let stream = VecStream::from_ordered(vec![ev(0, 0, 0), ev(1, 1, 1)]);
        let mut op = Operator::new(query);
        let mut keep = KeepAll;
        let mut matches = Vec::new();
        for e in stream.iter() {
            matches.extend(op.push(e, &mut keep));
        }
        assert!(matches.is_empty());
        matches.extend(op.flush(&mut keep));
        assert_eq!(matches.len(), 1);
        assert_eq!(op.open_windows(), 0);
    }

    /// A decider that drops every event of a given type; used to verify the
    /// shedding hook is honoured and reflected in the statistics.
    #[derive(Debug)]
    struct DropType(EventType);

    impl WindowEventDecider for DropType {
        fn decide(&mut self, _meta: &WindowMeta, _position: usize, event: &Event) -> Decision {
            if event.event_type() == self.0 {
                Decision::Drop
            } else {
                Decision::Keep
            }
        }
    }

    #[test]
    fn dropping_a_needed_type_prevents_matches() {
        let query = seq_query(WindowSpec::count_on_types(vec![ty(0)], 3));
        let stream = VecStream::from_ordered(vec![ev(0, 0, 0), ev(1, 1, 1), ev(2, 2, 2)]);
        let mut op = Operator::new(query);
        let matches = op.run(&stream, &mut DropType(ty(1)));
        assert!(matches.is_empty());
        assert_eq!(op.stats().dropped, 1);
        assert_eq!(op.stats().kept, op.stats().assignments - 1);
        assert!(op.stats().drop_ratio() > 0.0);
    }

    #[test]
    fn positions_count_dropped_events_too() {
        // Drop type-2 noise; the later type-1 event must still report its
        // original arrival position (2), not its index among kept events.
        let query = seq_query(WindowSpec::count_on_types(vec![ty(0)], 3));
        let stream = VecStream::from_ordered(vec![ev(0, 0, 0), ev(2, 1, 1), ev(1, 2, 2)]);
        let mut op = Operator::new(query);
        let matches = op.run(&stream, &mut DropType(ty(2)));
        assert_eq!(matches.len(), 1);
        let positions: Vec<_> = matches[0].constituents().iter().map(|c| c.position).collect();
        assert_eq!(positions, vec![0, 2]);
    }

    #[test]
    fn predicted_window_size_tracks_time_windows() {
        let query = seq_query(WindowSpec::time_on_types(vec![ty(0)], SimDuration::from_secs(5)));
        let mut op = Operator::new(query);
        // Two windows of ~6 events each.
        let mut events = Vec::new();
        let mut seq = 0;
        for start in [0u64, 20] {
            events.push(ev(0, start, seq));
            seq += 1;
            for i in 1..6u64 {
                events.push(ev(2, start + i % 5, seq));
                seq += 1;
            }
        }
        let stream = VecStream::from_unordered(events);
        let _ = op.run(&stream, &mut KeepAll);
        assert!(op.predicted_window_size() >= 5 && op.predicted_window_size() <= 7);
    }

    #[test]
    fn reset_clears_state() {
        let query = seq_query(WindowSpec::count_on_types(vec![ty(0)], 3));
        let stream = VecStream::from_ordered(vec![ev(0, 0, 0), ev(1, 1, 1), ev(2, 2, 2)]);
        let mut op = Operator::new(query);
        let _ = op.run(&stream, &mut KeepAll);
        assert!(op.stats().events_processed > 0);
        op.reset();
        assert_eq!(op.stats().events_processed, 0);
        assert_eq!(op.open_windows(), 0);
        // Re-running after reset produces the same results.
        let matches = op.run(&stream, &mut KeepAll);
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn sharded_operators_partition_windows_by_global_id() {
        let events: Vec<Event> =
            (0..24).map(|i| ev(if i % 3 == 0 { 0 } else { 1 }, i, i)).collect();
        let stream = VecStream::from_ordered(events);
        let query = seq_query(WindowSpec::count_on_types(vec![ty(0)], 4));

        let mut single = Operator::new(query.clone());
        let expected = single.run(&stream, &mut KeepAll);

        let mut merged = Vec::new();
        let mut opened = 0;
        let mut assignments = 0;
        for index in 0..3 {
            let mut shard = Operator::sharded(query.clone(), index, 3);
            let out = shard.run(&stream, &mut KeepAll);
            // Every materialised window id belongs to this shard.
            assert!(out.iter().all(|c| c.window_id() % 3 == index as u64));
            merged.extend(out);
            opened += shard.stats().windows_opened;
            assignments += shard.stats().assignments;
            // Every shard sees the whole stream.
            assert_eq!(shard.stats().events_processed, stream.len() as u64);
        }
        merged.sort_by_key(|c| c.window_id());
        assert_eq!(merged, expected);
        assert_eq!(opened, single.stats().windows_opened);
        assert_eq!(assignments, single.stats().assignments);
    }

    #[test]
    fn sharded_operator_rejects_bad_shard_geometry() {
        let query = seq_query(WindowSpec::count_sliding(4, 2));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = Operator::sharded(query.clone(), 2, 2);
        }));
        assert!(result.is_err());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = Operator::sharded(query, 0, 0);
        }));
        assert!(result.is_err());
    }

    /// A decider that drops everything via an overridden `decide_batch`, to
    /// verify the operator honours batched decisions in its bookkeeping.
    #[derive(Debug)]
    struct BatchDropAll;

    impl WindowEventDecider for BatchDropAll {
        fn decide(&mut self, _meta: &WindowMeta, _position: usize, _event: &Event) -> Decision {
            unreachable!("operator must use decide_batch");
        }

        fn decide_batch(
            &mut self,
            _event: &Event,
            requests: &[crate::BatchRequest],
            decisions: &mut Vec<Decision>,
        ) {
            decisions.clear();
            decisions.resize(requests.len(), Decision::Drop);
        }
    }

    #[test]
    fn operator_routes_decisions_through_decide_batch() {
        let query = seq_query(WindowSpec::count_on_types(vec![ty(0)], 3));
        let stream = VecStream::from_ordered(vec![ev(0, 0, 0), ev(1, 1, 1), ev(2, 2, 2)]);
        let mut op = Operator::new(query);
        let matches = op.run(&stream, &mut BatchDropAll);
        assert!(matches.is_empty());
        assert_eq!(op.stats().dropped, op.stats().assignments);
        assert_eq!(op.stats().kept, 0);
    }

    #[test]
    fn ring_is_pruned_to_the_open_window_span() {
        // Window 12, slide 3 → overlap 4. The shared ring must never hold
        // more than one window's span of events; per-window storage would
        // peak at ~4x that.
        let query = seq_query(WindowSpec::count_sliding(12, 3));
        let events: Vec<Event> = (0..120).map(|i| ev((i % 2) as u32, i, i)).collect();
        let mut op = Operator::new(query);
        let _ = op.run(&VecStream::from_ordered(events), &mut KeepAll);
        assert_eq!(op.resident_entries(), 0, "flush must empty the ring");
        assert!(
            op.peak_resident_entries() <= 12,
            "peak {} exceeds one window span",
            op.peak_resident_entries()
        );
        assert!(op.peak_resident_entries() >= 12 - 3);
    }

    #[test]
    fn no_events_are_buffered_while_no_window_is_open() {
        // The opener type never arrives: nothing may accumulate in the ring.
        let query = seq_query(WindowSpec::count_on_types(vec![ty(0)], 3));
        let events: Vec<Event> = (0..50).map(|i| ev(1 + (i % 2) as u32, i, i)).collect();
        let mut op = Operator::new(query);
        let matches = op.run(&VecStream::from_ordered(events), &mut KeepAll);
        assert!(matches.is_empty());
        assert_eq!(op.stats().assignments, 0);
        assert_eq!(op.peak_resident_entries(), 0);
    }

    #[test]
    fn dropped_events_stay_resident_only_within_the_window_span() {
        // Drops are per window: the shared slot stays (another window may
        // keep the event), but closing windows releases it.
        let query = seq_query(WindowSpec::count_sliding(6, 2));
        let events: Vec<Event> = (0..60).map(|i| ev((i % 2) as u32, i, i)).collect();
        let mut op = Operator::new(query);
        let _ = op.run(&VecStream::from_ordered(events), &mut DropType(ty(1)));
        assert!(op.stats().dropped > 0);
        assert!(op.peak_resident_entries() <= 6);
        assert_eq!(op.resident_entries(), 0);
    }

    #[test]
    fn operator_stats_merge_sums_counters() {
        let a = OperatorStats {
            events_processed: 1,
            windows_opened: 2,
            windows_closed: 3,
            assignments: 4,
            kept: 3,
            dropped: 1,
            complex_events: 5,
        };
        let mut b = a.clone();
        b.merge(&a);
        assert_eq!(b.assignments, 8);
        assert_eq!(b.kept, 6);
        assert_eq!(b.dropped, 2);
        assert_eq!(b.complex_events, 10);
    }

    #[test]
    fn stats_complex_event_counter_matches_output() {
        let query = seq_query(WindowSpec::count_on_types(vec![ty(0)], 3));
        let stream = VecStream::from_ordered(vec![
            ev(0, 0, 0),
            ev(1, 1, 1),
            ev(2, 2, 2),
            ev(0, 3, 3),
            ev(1, 4, 4),
            ev(2, 5, 5),
        ]);
        let mut op = Operator::new(query);
        let matches = op.run(&stream, &mut KeepAll);
        assert_eq!(op.stats().complex_events as usize, matches.len());
    }
}

//! Attribute predicates on primitive events.
//!
//! Pattern steps may constrain not only the event type but also the payload —
//! e.g. Q2 only matches quotes whose `change` attribute is positive (rising)
//! or negative (falling), and Q1's defend events are pre-filtered by distance.

use espice_events::Event;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operators usable in attribute predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `attribute == value`
    Eq,
    /// `attribute != value`
    Ne,
    /// `attribute < value`
    Lt,
    /// `attribute <= value`
    Le,
    /// `attribute > value`
    Gt,
    /// `attribute >= value`
    Ge,
}

impl CmpOp {
    fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            CmpOp::Eq => (lhs - rhs).abs() < f64::EPSILON,
            CmpOp::Ne => (lhs - rhs).abs() >= f64::EPSILON,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A boolean predicate over an event's attributes.
///
/// Predicates are a small expression tree: numeric comparisons on a named
/// attribute, string equality, and the usual boolean connectives.
///
/// # Example
///
/// ```
/// use espice_cep::{Predicate, CmpOp};
/// use espice_events::{Event, EventType, Timestamp, AttributeValue};
///
/// let rising = Predicate::attr_cmp("change", CmpOp::Gt, 0.0);
/// let event = Event::builder(EventType::from_index(0), Timestamp::ZERO)
///     .attr("change", AttributeValue::from(0.4))
///     .build();
/// assert!(rising.eval(&event));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum Predicate {
    /// Always true (useful as a neutral element).
    #[default]
    True,
    /// Numeric comparison against a named attribute. Evaluates to `false` if
    /// the attribute is missing or not numeric.
    AttrCmp {
        /// Attribute name.
        attr: String,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand side constant.
        value: f64,
    },
    /// String equality against a named attribute. Evaluates to `false` if the
    /// attribute is missing or not text.
    AttrEqText {
        /// Attribute name.
        attr: String,
        /// Expected value.
        value: String,
    },
    /// Boolean attribute must be `true`. Evaluates to `false` if missing.
    AttrIsTrue {
        /// Attribute name.
        attr: String,
    },
    /// Conjunction of two predicates.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction of two predicates.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation of a predicate.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Builds a numeric comparison predicate.
    pub fn attr_cmp(attr: &str, op: CmpOp, value: f64) -> Self {
        Predicate::AttrCmp { attr: attr.to_owned(), op, value }
    }

    /// Builds a string equality predicate.
    pub fn attr_eq_text(attr: &str, value: &str) -> Self {
        Predicate::AttrEqText { attr: attr.to_owned(), value: value.to_owned() }
    }

    /// Builds a boolean-flag predicate.
    pub fn attr_is_true(attr: &str) -> Self {
        Predicate::AttrIsTrue { attr: attr.to_owned() }
    }

    /// Conjunction with another predicate.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction with another predicate.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Evaluates the predicate against an event.
    pub fn eval(&self, event: &Event) -> bool {
        match self {
            Predicate::True => true,
            Predicate::AttrCmp { attr, op, value } => {
                event.attrs().get_f64(attr).is_some_and(|lhs| op.eval(lhs, *value))
            }
            Predicate::AttrEqText { attr, value } => {
                event.attrs().get_str(attr).is_some_and(|lhs| lhs == value)
            }
            Predicate::AttrIsTrue { attr } => event.attrs().get_bool(attr).unwrap_or(false),
            Predicate::And(a, b) => a.eval(event) && b.eval(event),
            Predicate::Or(a, b) => a.eval(event) || b.eval(event),
            Predicate::Not(inner) => !inner.eval(event),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espice_events::{AttributeValue, EventType, Timestamp};

    fn event_with(attr: &str, value: AttributeValue) -> Event {
        Event::builder(EventType::from_index(0), Timestamp::ZERO).attr(attr, value).build()
    }

    #[test]
    fn numeric_comparisons() {
        let e = event_with("change", AttributeValue::from(0.5));
        assert!(Predicate::attr_cmp("change", CmpOp::Gt, 0.0).eval(&e));
        assert!(Predicate::attr_cmp("change", CmpOp::Ge, 0.5).eval(&e));
        assert!(Predicate::attr_cmp("change", CmpOp::Le, 0.5).eval(&e));
        assert!(Predicate::attr_cmp("change", CmpOp::Eq, 0.5).eval(&e));
        assert!(Predicate::attr_cmp("change", CmpOp::Ne, 0.4).eval(&e));
        assert!(!Predicate::attr_cmp("change", CmpOp::Lt, 0.5).eval(&e));
    }

    #[test]
    fn missing_or_mistyped_attribute_is_false() {
        let e = event_with("name", AttributeValue::from("IBM"));
        assert!(!Predicate::attr_cmp("change", CmpOp::Gt, 0.0).eval(&e));
        assert!(!Predicate::attr_cmp("name", CmpOp::Gt, 0.0).eval(&e));
        assert!(!Predicate::attr_is_true("name").eval(&e));
    }

    #[test]
    fn text_and_bool_predicates() {
        let e = Event::builder(EventType::from_index(0), Timestamp::ZERO)
            .attr("symbol", AttributeValue::from("IBM"))
            .attr("leading", AttributeValue::from(true))
            .build();
        assert!(Predicate::attr_eq_text("symbol", "IBM").eval(&e));
        assert!(!Predicate::attr_eq_text("symbol", "AAPL").eval(&e));
        assert!(Predicate::attr_is_true("leading").eval(&e));
    }

    #[test]
    fn boolean_connectives() {
        let e = event_with("x", AttributeValue::from(3.0));
        let gt1 = Predicate::attr_cmp("x", CmpOp::Gt, 1.0);
        let lt2 = Predicate::attr_cmp("x", CmpOp::Lt, 2.0);
        assert!(gt1.clone().or(lt2.clone()).eval(&e));
        assert!(!gt1.clone().and(lt2.clone()).eval(&e));
        assert!(lt2.not().eval(&e));
        assert!(Predicate::True.eval(&e));
        assert_eq!(Predicate::default(), Predicate::True);
    }

    #[test]
    fn cmp_op_display() {
        assert_eq!(CmpOp::Ge.to_string(), ">=");
        assert_eq!(CmpOp::Ne.to_string(), "!=");
    }
}

//! An ordered set of queries sharing one ingestion pipeline.
//!
//! eSPICE's prototype runs one operator per engine; its successors (hSPICE,
//! gSPICE) are explicitly multi-operator settings where many queries watch
//! the *same* input stream. A [`QuerySet`] is the engine-facing form of
//! that: an ordered, non-empty list of [`Query`]s whose index is the
//! [`QueryId`] stamped into every window the engine opens. The
//! [`ShardedEngine`](crate::ShardedEngine) runs one operator per query per
//! shard, but pays the per-event ingestion costs — queue hand-off, event
//! clone, open-policy bookkeeping — once per shard, not once per query.

use crate::{Query, QueryId};

/// An ordered, non-empty collection of queries executed together by one
/// engine. A query's position is its [`QueryId`]; per-query outputs and
/// statistics are always indexed in this order.
///
/// # Example
///
/// ```
/// use espice_cep::{Pattern, Query, QuerySet, WindowSpec};
/// use espice_events::EventType;
///
/// let a = EventType::from_index(0);
/// let b = EventType::from_index(1);
/// let make = |size| {
///     Query::builder()
///         .pattern(Pattern::sequence([a, b]))
///         .window(WindowSpec::count_on_types(vec![a], size))
///         .build()
/// };
/// let set = QuerySet::new(vec![make(4), make(8)]);
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.get(1).unwrap().window().expected_size(), Some(8));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySet {
    queries: Vec<Query>,
}

impl QuerySet {
    /// Creates a query set from the given queries, in engine order.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty or holds more than [`QueryId`] can
    /// index.
    pub fn new(queries: Vec<Query>) -> Self {
        assert!(!queries.is_empty(), "a query set needs at least one query");
        assert!(u32::try_from(queries.len()).is_ok(), "a query set holds at most u32::MAX queries");
        QuerySet { queries }
    }

    /// The set containing exactly one query (the classic single-operator
    /// engine).
    pub fn single(query: Query) -> Self {
        QuerySet { queries: vec![query] }
    }

    /// Number of queries in the set (always at least 1).
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Always false: query sets are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The queries, in [`QueryId`] order.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Appends a query to the set, returning the [`QueryId`] it was
    /// assigned. This is how a live engine grows its per-query axis on
    /// admission: slots are handed out in append order and never reused.
    ///
    /// # Panics
    ///
    /// Panics if the set is already at [`QueryId`] capacity.
    pub fn push(&mut self, query: Query) -> QueryId {
        let id =
            u32::try_from(self.queries.len()).expect("a query set holds at most u32::MAX queries");
        self.queries.push(query);
        id
    }

    /// The query with the given id, if it exists.
    pub fn get(&self, query: QueryId) -> Option<&Query> {
        self.queries.get(query as usize)
    }

    /// Iterates the queries paired with their [`QueryId`]s.
    pub fn iter(&self) -> impl Iterator<Item = (QueryId, &Query)> {
        self.queries.iter().enumerate().map(|(id, query)| (id as QueryId, query))
    }
}

impl From<Query> for QuerySet {
    fn from(query: Query) -> Self {
        QuerySet::single(query)
    }
}

impl From<Vec<Query>> for QuerySet {
    fn from(queries: Vec<Query>) -> Self {
        QuerySet::new(queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pattern, WindowSpec};
    use espice_events::EventType;

    fn query(size: usize) -> Query {
        let a = EventType::from_index(0);
        Query::builder()
            .name(&format!("q{size}"))
            .pattern(Pattern::sequence([a, EventType::from_index(1)]))
            .window(WindowSpec::count_on_types(vec![a], size))
            .build()
    }

    #[test]
    fn set_preserves_order_and_exposes_ids() {
        let set = QuerySet::new(vec![query(4), query(6), query(8)]);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        let ids: Vec<_> = set.iter().map(|(id, q)| (id, q.name().to_owned())).collect();
        assert_eq!(ids, vec![(0, "q4".to_owned()), (1, "q6".to_owned()), (2, "q8".to_owned())]);
        assert!(set.get(3).is_none());
    }

    #[test]
    fn single_and_from_conversions_agree() {
        let q = query(5);
        assert_eq!(QuerySet::single(q.clone()), QuerySet::from(q.clone()));
        assert_eq!(QuerySet::from(vec![q.clone()]).queries(), std::slice::from_ref(&q));
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn empty_set_rejected() {
        let _ = QuerySet::new(Vec::new());
    }
}

//! pSPICE's partial-match store: per-window tracking of open partial
//! matches, shed by utility-per-remaining-cost once the store exceeds its
//! budget.
//!
//! Where eSPICE (and the other table-compiled family members) drop *input
//! events* before they reach the operator, pSPICE lets every event in and
//! sheds the operator's *state*: when a window tracks more open partial
//! matches than its budget allows, the match with the lowest expected
//! return — accumulated utility divided by the events still missing — is
//! evicted, and every kept event referenced **only** by evicted matches is
//! retroactively dropped from the window ([`DropSet::insert`]). Events that
//! contributed to a completed match, or that another live match still
//! references, are never retro-dropped.
//!
//! The store is a deliberately lightweight *proxy* of the real matcher: it
//! advances one partial match per admissible event per step (skip-till-any
//! semantics, one spawn per admissible step-0 event) rather than
//! enumerating every combination the closing-time matcher would. That
//! keeps the per-event cost O(live matches) — bounded by the budget — and
//! is entirely deterministic: feeding the same (position, event, utility)
//! sequence always evicts the same matches, which is what pins shedded
//! output byte-identical across shard counts and chunk sizes.

use crate::pattern::Pattern;
use crate::ring::DropSet;
use espice_events::{Event, EventType};

/// One open partial match: how far through the pattern it has advanced and
/// which window positions it references.
#[derive(Debug, Clone)]
struct PartialMatch {
    /// Index of the pattern step currently being filled.
    step: usize,
    /// Events already taken by the current step.
    taken_in_step: usize,
    /// Types taken by the current step (tracked only for distinct-type
    /// steps, cleared on step advance).
    in_step_types: Vec<EventType>,
    /// Sum of the constituent utilities accumulated so far.
    utility: u64,
    /// Window positions of the referenced events, in arrival order.
    positions: Vec<u32>,
    /// Spawn order within the window — the eviction tie-breaker (younger
    /// matches are evicted first on equal score).
    born: u64,
}

impl PartialMatch {
    /// Events still missing for a full match. At least 1 for any live
    /// match (completed matches are retired immediately).
    fn remaining(&self, total_events: usize) -> u64 {
        (total_events as u64).saturating_sub(self.positions.len() as u64).max(1)
    }
}

/// The per-window partial-match store (see the module docs).
///
/// Owned by the operator's open-window state and fed once per *kept*
/// event, in position order. Created only for windows whose decider
/// returned a budget from
/// [`WindowEventDecider::partial_match_budget`](crate::WindowEventDecider::partial_match_budget).
#[derive(Debug, Clone)]
pub(crate) struct PartialStore {
    /// Maximum number of live partial matches before eviction kicks in.
    budget: usize,
    /// Open partial matches, in spawn order.
    live: Vec<PartialMatch>,
    /// Window positions referenced by a *completed* match, sorted. These
    /// produced (proxy) complex events and are never retro-dropped.
    protected: Vec<u32>,
    /// Spawn counter feeding [`PartialMatch::born`].
    next_born: u64,
}

impl PartialStore {
    /// An empty store that evicts past `budget` live matches.
    pub(crate) fn new(budget: usize) -> Self {
        PartialStore { budget, live: Vec::new(), protected: Vec::new(), next_born: 0 }
    }

    /// Feeds one kept `event` at window `position` with constituent
    /// utility `utility` through the store: advances and spawns partial
    /// matches, then evicts down to the budget, retro-dropping orphaned
    /// positions into `dropped`. Returns how many positions were
    /// retro-dropped (all strictly below `position`... or `position`
    /// itself if the spawn it fed was immediately evicted).
    ///
    /// Must be called in strictly increasing `position` order per window.
    pub(crate) fn feed(
        &mut self,
        pattern: &Pattern,
        position: usize,
        event: &Event,
        utility: u8,
        dropped: &mut DropSet,
    ) -> usize {
        let position = u32::try_from(position).expect("window positions fit in u32");
        // 1. Advance every live match whose current step admits the event
        //    (respecting distinct-type steps), retiring completions.
        let mut index = 0;
        while index < self.live.len() {
            let m = &mut self.live[index];
            let step = &pattern.steps()[m.step];
            let admissible = step.admits(event)
                && !(step.distinct_types() && m.in_step_types.contains(&event.event_type()));
            if admissible {
                m.utility += utility as u64;
                m.positions.push(position);
                m.taken_in_step += 1;
                if step.distinct_types() {
                    m.in_step_types.push(event.event_type());
                }
                if m.taken_in_step == step.count() {
                    m.step += 1;
                    m.taken_in_step = 0;
                    m.in_step_types.clear();
                }
                if m.step == pattern.len() {
                    // Completed: retire and protect its constituents.
                    let retired = self.live.remove(index);
                    for p in retired.positions {
                        if let Err(at) = self.protected.binary_search(&p) {
                            self.protected.insert(at, p);
                        }
                    }
                    continue;
                }
            }
            index += 1;
        }
        // 2. Spawn a new match if the event can open one (one spawn per
        //    admissible event — the skip-till-any proxy).
        if pattern.steps()[0].admits(event) {
            let step = &pattern.steps()[0];
            let mut spawned = PartialMatch {
                step: 0,
                taken_in_step: 1,
                in_step_types: if step.distinct_types() {
                    vec![event.event_type()]
                } else {
                    Vec::new()
                },
                utility: utility as u64,
                positions: vec![position],
                born: self.next_born,
            };
            self.next_born += 1;
            if step.count() == 1 {
                spawned.step = 1;
                spawned.taken_in_step = 0;
                spawned.in_step_types.clear();
            }
            if spawned.step == pattern.len() {
                // Single-event pattern: complete on arrival.
                if let Err(at) = self.protected.binary_search(&position) {
                    self.protected.insert(at, position);
                }
            } else {
                self.live.push(spawned);
            }
        }
        // 3. Evict down to the budget by lowest utility-per-remaining-cost.
        let total_events = pattern.total_events();
        let mut retro = 0usize;
        while self.live.len() > self.budget {
            let mut victim = 0;
            for candidate in 1..self.live.len() {
                let (a, b) = (&self.live[victim], &self.live[candidate]);
                // a.utility / a.remaining  vs  b.utility / b.remaining,
                // compared exactly via cross-multiplication.
                let a_score = a.utility as u128 * b.remaining(total_events) as u128;
                let b_score = b.utility as u128 * a.remaining(total_events) as u128;
                if b_score < a_score || (b_score == a_score && b.born > a.born) {
                    victim = candidate;
                }
            }
            let evicted = self.live.remove(victim);
            for &p in &evicted.positions {
                let referenced = self.protected.binary_search(&p).is_ok()
                    || self.live.iter().any(|m| m.positions.contains(&p));
                if !referenced && !dropped.contains(p as usize) {
                    dropped.insert(p as usize);
                    retro += 1;
                }
            }
        }
        retro
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PatternStep;
    use espice_events::Timestamp;

    fn ty(i: u32) -> EventType {
        EventType::from_index(i)
    }

    fn ev(t: u32, seq: u64) -> Event {
        Event::new(ty(t), Timestamp::ZERO, seq)
    }

    #[test]
    fn matches_advance_complete_and_protect() {
        let pattern = Pattern::sequence([ty(0), ty(1)]);
        let mut store = PartialStore::new(8);
        let mut dropped = DropSet::new();
        assert_eq!(store.feed(&pattern, 0, &ev(0, 0), 10, &mut dropped), 0);
        assert_eq!(store.live.len(), 1);
        // Type 1 completes the match: retired and protected, nothing live.
        assert_eq!(store.feed(&pattern, 1, &ev(1, 1), 10, &mut dropped), 0);
        assert!(store.live.is_empty());
        assert_eq!(store.protected, vec![0, 1]);
        assert!(dropped.is_empty());
    }

    #[test]
    fn eviction_drops_orphaned_positions_only() {
        let pattern = Pattern::sequence([ty(0), ty(1)]);
        let mut store = PartialStore::new(1);
        let mut dropped = DropSet::new();
        // Two open step-0 matches; budget 1 evicts the lower-utility one.
        store.feed(&pattern, 0, &ev(0, 0), 50, &mut dropped);
        let retro = store.feed(&pattern, 1, &ev(0, 1), 10, &mut dropped);
        // The younger, lower-utility match at position 1 is evicted and its
        // only constituent retro-dropped.
        assert_eq!(retro, 1);
        assert!(dropped.contains(1));
        assert!(!dropped.contains(0));
        assert_eq!(store.live.len(), 1);
    }

    #[test]
    fn ties_evict_the_youngest() {
        let pattern = Pattern::sequence([ty(0), ty(1)]);
        let mut store = PartialStore::new(1);
        let mut dropped = DropSet::new();
        store.feed(&pattern, 0, &ev(0, 0), 10, &mut dropped);
        store.feed(&pattern, 1, &ev(0, 1), 10, &mut dropped);
        // Equal scores: position 1 (younger) went, position 0 survives.
        assert!(dropped.contains(1));
        assert!(!dropped.contains(0));
    }

    #[test]
    fn shared_positions_survive_eviction() {
        // any-step pattern where one event feeds multiple matches.
        let pattern = Pattern::new(vec![
            PatternStep::single(ty(0)),
            PatternStep::any_of([ty(1), ty(2)], 2, true),
        ]);
        let mut store = PartialStore::new(2);
        let mut dropped = DropSet::new();
        store.feed(&pattern, 0, &ev(0, 0), 50, &mut dropped); // match A @ step 1
        store.feed(&pattern, 1, &ev(0, 1), 40, &mut dropped); // match B @ step 1
                                                              // Position 2 (type 1) advances both A and B within their any-step.
        store.feed(&pattern, 2, &ev(1, 2), 5, &mut dropped);
        assert_eq!(store.live.len(), 2);
        // A third spawn overflows the budget; the evicted match's positions
        // that other live matches still reference must not be dropped.
        let retro = store.feed(&pattern, 3, &ev(0, 3), 1, &mut dropped);
        assert_eq!(store.live.len(), 2);
        // The victim is the new spawn itself (utility 1, remaining 2 →
        // lowest score), so only position 3 goes.
        assert_eq!(retro, 1);
        assert!(dropped.contains(3));
        assert!(!dropped.contains(2));
    }

    #[test]
    fn distinct_steps_refuse_repeated_types() {
        let pattern = Pattern::new(vec![
            PatternStep::single(ty(0)),
            PatternStep::any_of([ty(1), ty(2)], 2, true),
        ]);
        let mut store = PartialStore::new(8);
        let mut dropped = DropSet::new();
        store.feed(&pattern, 0, &ev(0, 0), 10, &mut dropped);
        store.feed(&pattern, 1, &ev(1, 1), 10, &mut dropped);
        // A second type-1 event cannot fill the distinct any-step...
        store.feed(&pattern, 2, &ev(1, 2), 10, &mut dropped);
        assert_eq!(store.live.len(), 1);
        assert!(store.protected.is_empty());
        // ...but a type-2 event completes it.
        store.feed(&pattern, 3, &ev(2, 3), 10, &mut dropped);
        assert!(store.live.is_empty());
        assert_eq!(store.protected, vec![0, 1, 3]);
    }

    #[test]
    fn single_event_patterns_complete_on_arrival() {
        let pattern = Pattern::sequence([ty(0)]);
        let mut store = PartialStore::new(1);
        let mut dropped = DropSet::new();
        for p in 0..5 {
            assert_eq!(store.feed(&pattern, p, &ev(0, p as u64), 10, &mut dropped), 0);
        }
        assert!(store.live.is_empty());
        assert_eq!(store.protected.len(), 5);
        assert!(dropped.is_empty());
    }
}

//! Property-based tests of the windowing and matching invariants.

use crate::reference::ReferenceOperator;
use crate::{
    Decision, KeepAll, Matcher, Operator, Pattern, PatternStep, Query, SelectionPolicy,
    ShardedEngine, SkipPolicy, WindowEntry, WindowEventDecider, WindowMeta, WindowSpec,
};
use espice_events::{
    Event, EventSource, EventStream, EventType, SliceSource, Timestamp, VecStream,
};
use proptest::prelude::*;

/// A stateless, shard-invariant decider with non-trivial drops, used to
/// exercise the drop-set path of the ring storage.
#[derive(Debug, Clone, Copy)]
struct DropEveryThird;

impl WindowEventDecider for DropEveryThird {
    fn decide(&mut self, _meta: &WindowMeta, position: usize, _event: &Event) -> Decision {
        if position % 3 == 2 {
            Decision::Drop
        } else {
            Decision::Keep
        }
    }
}

fn type_sequence(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..5, 1..max_len)
}

/// Chunk capacities for the ingestion sweeps: 1 is the exact legacy
/// per-event broadcast, the small primes land lifecycle positions and
/// stream ends mid-chunk (partial seals), 300 exceeds every generated
/// stream so the whole run travels as one partial flush.
fn chunk_capacities() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![1usize, 2, 7, 64, 300])
}

/// A paced source that stalls once, mid-stream, for longer than the
/// producer's partial-flush deadline — forcing a time-based partial-chunk
/// flush at a deterministic position.
struct StallingSource<S> {
    inner: S,
    stall_at: usize,
    delivered: usize,
}

impl<S: EventSource> EventSource for StallingSource<S> {
    fn next_event(&mut self) -> Option<Event> {
        if self.delivered == self.stall_at {
            std::thread::sleep(std::time::Duration::from_millis(3));
        }
        let event = self.inner.next_event()?;
        self.delivered += 1;
        Some(event)
    }

    fn is_paced(&self) -> bool {
        true
    }
}

fn entries_from(types: &[u32]) -> Vec<WindowEntry> {
    types
        .iter()
        .enumerate()
        .map(|(pos, &ty)| WindowEntry {
            position: pos,
            event: Event::new(
                EventType::from_index(ty),
                Timestamp::from_secs(pos as u64),
                pos as u64,
            ),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every constituent reported by the matcher is admissible for its pattern
    /// step, and first-selection constituents appear in window order.
    #[test]
    fn constituents_are_admissible_and_ordered(
        window in type_sequence(48),
        pattern_types in prop::collection::vec(0u32..5, 1..4),
        last in prop::bool::ANY,
    ) {
        let pattern = Pattern::sequence(pattern_types.iter().map(|&t| EventType::from_index(t)));
        let query = Query::builder()
            .pattern(pattern.clone())
            .window(WindowSpec::count_sliding(window.len().max(1), window.len().max(1)))
            .selection(if last { SelectionPolicy::Last } else { SelectionPolicy::First })
            .build();
        let matcher = Matcher::from_query(&query);
        let outcome = matcher.matches(0, &entries_from(&window));
        for complex in &outcome.complex_events {
            prop_assert_eq!(complex.len(), pattern.total_events());
            let positions: Vec<usize> = complex.constituents().iter().map(|c| c.position).collect();
            prop_assert!(positions.windows(2).all(|w| w[0] < w[1]));
            for (constituent, step) in complex.constituents().iter().zip(pattern.steps()) {
                prop_assert!(step.types().contains(&constituent.event_type));
            }
        }
    }

    /// Contiguous matching only ever reports adjacent constituents, and any
    /// contiguous match is also found under skip-till-next-match semantics.
    #[test]
    fn contiguous_matches_are_adjacent_and_a_subset_of_skip_matches(
        window in type_sequence(40),
        pattern_types in prop::collection::vec(0u32..5, 1..3),
    ) {
        let pattern = Pattern::sequence(pattern_types.iter().map(|&t| EventType::from_index(t)));
        let base = Query::builder()
            .pattern(pattern)
            .window(WindowSpec::count_sliding(window.len().max(1), window.len().max(1)));
        let contiguous = Matcher::from_query(&base.clone().skip(SkipPolicy::Contiguous).build());
        let skipping = Matcher::from_query(&base.skip(SkipPolicy::SkipTillNextMatch).build());
        let entries = entries_from(&window);
        let contiguous_matches = contiguous.matches(0, &entries).complex_events;
        for complex in &contiguous_matches {
            let positions: Vec<usize> = complex.constituents().iter().map(|c| c.position).collect();
            prop_assert!(positions.windows(2).all(|w| w[1] == w[0] + 1));
        }
        // A contiguous match implies the skipping matcher also finds a match.
        if !contiguous_matches.is_empty() {
            prop_assert!(!skipping.matches(0, &entries).complex_events.is_empty());
        }
    }

    /// Count-based windows always close with exactly the configured number of
    /// events as long as the stream is long enough.
    #[test]
    fn count_windows_have_exact_size(
        types in type_sequence(120),
        size in 2usize..20,
        slide in 1usize..10,
    ) {
        #[derive(Debug, Default)]
        struct SizeRecorder(Vec<usize>);
        impl crate::WindowEventDecider for SizeRecorder {
            fn decide(&mut self, _m: &crate::WindowMeta, _p: usize, _e: &Event) -> crate::Decision {
                crate::Decision::Keep
            }
            fn window_closed(&mut self, _m: &crate::WindowMeta, size: usize) {
                self.0.push(size);
            }
        }

        let query = Query::builder()
            .pattern(Pattern::new(vec![PatternStep::single(EventType::from_index(0))]))
            .window(WindowSpec::count_sliding(size, slide))
            .build();
        let events: Vec<Event> = types
            .iter()
            .enumerate()
            .map(|(i, &t)| Event::new(EventType::from_index(t), Timestamp::from_secs(i as u64), i as u64))
            .collect();
        let mut recorder = SizeRecorder::default();
        let mut operator = Operator::new(query);
        // Process without flushing: only naturally closed windows count.
        for e in &events {
            let _ = operator.push(e, &mut recorder);
        }
        prop_assert!(recorder.0.iter().all(|&s| s == size), "window sizes {:?}", recorder.0);
    }

    /// For any keyed stream and shard count N ∈ {1, 2, 4}, the sharded
    /// engine emits exactly the complex events of a single operator — same
    /// window ids, constituents and order — and its merged statistics equal
    /// the single-operator statistics.
    #[test]
    fn sharded_engine_equals_single_operator(
        types in type_sequence(150),
        window_size in 2usize..16,
        open_type in 0u32..3,
    ) {
        let query = Query::builder()
            .pattern(Pattern::sequence([EventType::from_index(0), EventType::from_index(1)]))
            .window(WindowSpec::count_on_types(vec![EventType::from_index(open_type)], window_size))
            .build();
        let events: Vec<Event> = types
            .iter()
            .enumerate()
            .map(|(i, &t)| Event::new(EventType::from_index(t), Timestamp::from_secs(i as u64), i as u64))
            .collect();
        let stream = VecStream::from_ordered(events);
        let mut single = Operator::new(query.clone());
        let expected = single.run(&stream, &mut KeepAll);
        for shards in [1usize, 2, 4] {
            let mut engine = ShardedEngine::new(query.clone(), shards);
            let merged = engine.run_keep_all(&stream);
            prop_assert_eq!(&merged, &expected, "complex events diverged at {} shards", shards);
            let stats = engine.stats();
            prop_assert_eq!(&stats.merged, single.stats(), "stats diverged at {} shards", shards);
        }
    }

    /// Count-sliding windows shard just as losslessly as type-opened ones.
    #[test]
    fn sharded_engine_equals_single_operator_on_sliding_windows(
        types in type_sequence(120),
        size in 3usize..12,
        slide in 1usize..6,
    ) {
        let query = Query::builder()
            .pattern(Pattern::sequence([EventType::from_index(0), EventType::from_index(1)]))
            .window(WindowSpec::count_sliding(size, slide))
            .build();
        let events: Vec<Event> = types
            .iter()
            .enumerate()
            .map(|(i, &t)| Event::new(EventType::from_index(t), Timestamp::from_secs(i as u64), i as u64))
            .collect();
        let stream = VecStream::from_ordered(events);
        let mut single = Operator::new(query.clone());
        let expected = single.run(&stream, &mut KeepAll);
        for shards in [2usize, 4] {
            let mut engine = ShardedEngine::new(query.clone(), shards);
            prop_assert_eq!(engine.run_keep_all(&stream), expected.clone());
            prop_assert_eq!(&engine.stats().merged, single.stats());
        }
    }

    /// High-overlap identity: with slide ≪ window, the ring-backed operator
    /// emits exactly the complex events and statistics of the seed
    /// per-window reference implementation — with and without drops, for
    /// N shards ∈ {1, 2, 4} — while storing each event once instead of once
    /// per overlapping window.
    #[test]
    fn ring_storage_equals_reference_per_window_storage(
        types in type_sequence(160),
        size in 4usize..24,
        slide in 1usize..4,
        shed in prop::bool::ANY,
    ) {
        let query = Query::builder()
            .pattern(Pattern::sequence([EventType::from_index(0), EventType::from_index(1)]))
            .window(WindowSpec::count_sliding(size, slide))
            .build();
        let events: Vec<Event> = types
            .iter()
            .enumerate()
            .map(|(i, &t)| Event::new(EventType::from_index(t), Timestamp::from_secs(i as u64), i as u64))
            .collect();
        let stream = VecStream::from_ordered(events);

        macro_rules! run_with_decider {
            ($runner:expr) => {
                if shed { $runner(&mut DropEveryThird) } else { $runner(&mut KeepAll) }
            };
        }

        let mut reference = ReferenceOperator::new(query.clone());
        let expected = run_with_decider!(|d: &mut dyn WindowEventDecider| reference.run(&stream, d));

        let mut ring_op = Operator::new(query.clone());
        let actual = run_with_decider!(|d: &mut dyn WindowEventDecider| ring_op.run(&stream, d));
        prop_assert_eq!(&actual, &expected);
        prop_assert_eq!(ring_op.stats(), reference.stats());
        // The ring stores each assigned event once (kept or dropped); the
        // reference stores every *kept* event once per window. At overlap
        // >= 2 with drop ratio <= 1/3 the ring always wins.
        if size / slide >= 2 {
            prop_assert!(ring_op.peak_resident_entries() <= reference.peak_resident_entries(),
                "ring peak {} vs reference peak {}",
                ring_op.peak_resident_entries(), reference.peak_resident_entries());
        }

        for shards in [1usize, 2, 4] {
            let mut engine = ShardedEngine::new(query.clone(), shards);
            let merged = if shed {
                let mut deciders = vec![DropEveryThird; shards];
                engine.run(&stream, &mut deciders)
            } else {
                engine.run_keep_all(&stream)
            };
            prop_assert_eq!(&merged, &expected, "diverged from reference at {} shards", shards);
            prop_assert_eq!(&engine.stats().merged, reference.stats());
        }
    }

    /// Streaming-ingestion identity: for any keyed stream, shard count
    /// N ∈ {1, 2, 4}, shedding on or off, any queue capacity — down to a
    /// capacity of 1, where the producer backpressures on *every*
    /// hand-off — and any chunk capacity (per-event broadcast at 1,
    /// mid-stream partial seals at the primes, one whole-stream partial
    /// flush at 300), the stream-driven engine (`run_source` over shared
    /// chunks through bounded per-shard SPSC queues) emits byte-identical
    /// complex events and merged statistics to a slice-driven
    /// single-operator run.
    #[test]
    fn streaming_engine_equals_slice_engine(
        types in type_sequence(150),
        window_size in 2usize..16,
        slide in 1usize..6,
        shed in prop::bool::ANY,
        tiny_queues in prop::bool::ANY,
        chunk_capacity in chunk_capacities(),
    ) {
        let query = Query::builder()
            .pattern(Pattern::sequence([EventType::from_index(0), EventType::from_index(1)]))
            .window(WindowSpec::count_sliding(window_size, slide))
            .build();
        let events: Vec<Event> = types
            .iter()
            .enumerate()
            .map(|(i, &t)| Event::new(EventType::from_index(t), Timestamp::from_secs(i as u64), i as u64))
            .collect();
        let stream = VecStream::from_ordered(events);

        let mut single = Operator::new(query.clone());
        let expected = if shed {
            single.run(&stream, &mut DropEveryThird)
        } else {
            single.run(&stream, &mut KeepAll)
        };

        // Capacity 1 forces a full-queue producer stall on every push (the
        // backpressure case); the larger capacity exercises the common path.
        let capacity = if tiny_queues { 1 } else { 64 };
        for shards in [1usize, 2, 4] {
            let mut engine = ShardedEngine::new(query.clone(), shards);
            engine.set_queue_capacity(capacity);
            engine.set_chunk_capacity(chunk_capacity);
            let mut source = SliceSource::from_stream(&stream);
            let merged = if shed {
                let mut deciders = vec![DropEveryThird; shards];
                engine.run_source(&mut source, &mut deciders)
            } else {
                let mut deciders = vec![KeepAll; shards];
                engine.run_source(&mut source, &mut deciders)
            };
            prop_assert_eq!(&merged, &expected,
                "streaming diverged at {} shards, capacity {}, chunk {}",
                shards, capacity, chunk_capacity);
            prop_assert_eq!(&engine.stats().merged, single.stats(),
                "stats diverged at {} shards, capacity {}, chunk {}",
                shards, capacity, chunk_capacity);
            for queue in engine.queue_stats() {
                // `pushed` counts events regardless of batching; slot
                // occupancy stays bounded by the configured capacity.
                prop_assert_eq!(queue.pushed, stream.len() as u64);
                prop_assert!(queue.peak_depth <= capacity);
            }
        }
    }

    /// Paced partial flushes preserve identity: a wall-clock source that
    /// stalls mid-chunk for longer than the flush deadline makes the
    /// producer seal and ship a partial chunk early — the output must
    /// still be byte-identical to the slice run, with every event
    /// accounted for exactly once.
    #[test]
    fn paced_partial_chunk_flushes_preserve_identity(
        types in type_sequence(120),
        window_size in 2usize..12,
        slide in 1usize..5,
        stall_frac in 0.0f64..1.0,
        shed in prop::bool::ANY,
    ) {
        let query = Query::builder()
            .pattern(Pattern::sequence([EventType::from_index(0), EventType::from_index(1)]))
            .window(WindowSpec::count_sliding(window_size, slide))
            .build();
        let events: Vec<Event> = types
            .iter()
            .enumerate()
            .map(|(i, &t)| Event::new(EventType::from_index(t), Timestamp::from_secs(i as u64), i as u64))
            .collect();
        let stream = VecStream::from_ordered(events);

        let mut single = Operator::new(query.clone());
        let expected = if shed {
            single.run(&stream, &mut DropEveryThird)
        } else {
            single.run(&stream, &mut KeepAll)
        };

        let stall_at = (stream.len() as f64 * stall_frac) as usize;
        for shards in [1usize, 2] {
            let mut engine = ShardedEngine::new(query.clone(), shards);
            // A chunk larger than the stream: without the deadline flush
            // nothing would ship until the trailing seal.
            engine.set_chunk_capacity(256);
            let mut source = StallingSource {
                inner: SliceSource::from_stream(&stream),
                stall_at,
                delivered: 0,
            };
            let merged = if shed {
                let mut deciders = vec![DropEveryThird; shards];
                engine.run_source(&mut source, &mut deciders)
            } else {
                let mut deciders = vec![KeepAll; shards];
                engine.run_source(&mut source, &mut deciders)
            };
            prop_assert_eq!(&merged, &expected,
                "paced flush diverged at {} shards, stall at {}", shards, stall_at);
            prop_assert_eq!(&engine.stats().merged, single.stats());
            for queue in engine.queue_stats() {
                prop_assert_eq!(queue.pushed, stream.len() as u64);
            }
        }
    }

    /// The fused multi-query engine is output- and stats-identical, per
    /// query, to independent single-query engines over the same stream:
    /// for random mixes of type-opened and sliding windows, shard counts
    /// N ∈ {1, 2, 4}, both backends (slice scan and bounded-queue
    /// streaming) and both with and without a deterministic dropper in the
    /// loop. One ingestion pipeline, N queries — same bytes out.
    #[test]
    fn fused_multi_query_equals_independent_engines(
        types in type_sequence(140),
        sizes in prop::collection::vec(2usize..14, 2..4),
        slide in 1usize..5,
        open_type in 0u32..3,
        shed in prop::bool::ANY,
        streaming in prop::bool::ANY,
    ) {
        // A mix of shared and distinct open policies: even-indexed queries
        // open on `open_type`, odd-indexed ones slide by `slide`.
        let queries: Vec<Query> = sizes
            .iter()
            .enumerate()
            .map(|(i, &size)| {
                let window = if i % 2 == 0 {
                    WindowSpec::count_on_types(vec![EventType::from_index(open_type)], size)
                } else {
                    WindowSpec::count_sliding(size, slide)
                };
                Query::builder()
                    .pattern(Pattern::sequence([EventType::from_index(0), EventType::from_index(1)]))
                    .window(window)
                    .build()
            })
            .collect();
        let set = crate::QuerySet::new(queries.clone());
        let events: Vec<Event> = types
            .iter()
            .enumerate()
            .map(|(i, &t)| Event::new(EventType::from_index(t), Timestamp::from_secs(i as u64), i as u64))
            .collect();
        let stream = VecStream::from_ordered(events);

        for shards in [1usize, 2, 4] {
            let mut fused = ShardedEngine::for_queries(set.clone(), shards);
            let decider_count = shards * set.len();
            let per_query = if streaming {
                let mut source = SliceSource::from_stream(&stream);
                if shed {
                    let mut deciders = vec![DropEveryThird; decider_count];
                    fused.run_source_per_query(&mut source, &mut deciders)
                } else {
                    let mut deciders = vec![KeepAll; decider_count];
                    fused.run_source_per_query(&mut source, &mut deciders)
                }
            } else if shed {
                let mut deciders = vec![DropEveryThird; decider_count];
                fused.run_slice_per_query(&stream, &mut deciders)
            } else {
                let mut deciders = vec![KeepAll; decider_count];
                fused.run_slice_per_query(&stream, &mut deciders)
            };
            let fused_stats = fused.stats();

            for (id, query) in set.iter() {
                let mut solo = ShardedEngine::new(query.clone(), shards);
                let expected = if shed {
                    let mut deciders = vec![DropEveryThird; shards];
                    solo.run_slice(&stream, &mut deciders)
                } else {
                    let mut deciders = vec![KeepAll; shards];
                    solo.run_slice(&stream, &mut deciders)
                };
                prop_assert_eq!(
                    &per_query[id as usize], &expected,
                    "query {} complex events diverged at {} shards (shed={}, streaming={})",
                    id, shards, shed, streaming
                );
                prop_assert_eq!(
                    &fused_stats.per_query[id as usize], &solo.stats().merged,
                    "query {} stats diverged at {} shards (shed={}, streaming={})",
                    id, shards, shed, streaming
                );
            }
        }
    }

    /// Lifecycle churn identity: a query admitted at event `k` and never
    /// retired produces byte-identical complex events and statistics to a
    /// fresh static engine over `events[k..]`, while retiring another
    /// query mid-run leaves the surviving query's output untouched — for
    /// shard counts {1, 2, 4}, shedding on and off, on both the slice and
    /// the streaming lifecycle backends. The retired query's output is a
    /// drained prefix of its static full-stream output (windows opened
    /// before the retirement, fed to completion). The streaming backend is
    /// additionally swept across chunk capacities: the in-band commands
    /// must land at their exact positions whether the boundary seal splits
    /// a chunk mid-fill or the whole stream rides in one partial flush.
    #[test]
    fn lifecycle_churn_is_pinned_against_static_engine_oracles(
        types in type_sequence(140),
        survivor_size in 2usize..12,
        retired_size in 3usize..14,
        admitted_size in 2usize..12,
        slide in 1usize..5,
        admit_frac in 0.1f64..0.9,
        retire_frac in 0.1f64..0.9,
        shed in prop::bool::ANY,
        streaming in prop::bool::ANY,
        chunk_capacity in chunk_capacities(),
    ) {
        let retired_query = Query::builder()
            .pattern(Pattern::sequence([EventType::from_index(0), EventType::from_index(1)]))
            .window(WindowSpec::count_sliding(retired_size, slide))
            .build();
        let survivor_query = Query::builder()
            .pattern(Pattern::sequence([EventType::from_index(0), EventType::from_index(1)]))
            .window(WindowSpec::count_on_types(vec![EventType::from_index(0)], survivor_size))
            .build();
        let admitted_query = Query::builder()
            .pattern(Pattern::sequence([EventType::from_index(0), EventType::from_index(1)]))
            .window(WindowSpec::count_sliding(admitted_size, slide))
            .build();
        let events: Vec<Event> = types
            .iter()
            .enumerate()
            .map(|(i, &t)| Event::new(EventType::from_index(t), Timestamp::from_secs(i as u64), i as u64))
            .collect();
        let stream = VecStream::from_ordered(events);
        let admit_at = ((stream.len() as f64 * admit_frac) as u64).min(stream.len() as u64 - 1);
        let retire_at = ((stream.len() as f64 * retire_frac) as u64).min(stream.len() as u64 - 1);
        let suffix = VecStream::from_ordered(stream.events()[admit_at as usize..].to_vec());

        let set = crate::QuerySet::new(vec![retired_query.clone(), survivor_query.clone()]);
        let boxed = |shed: bool| -> crate::BoxedDecider {
            if shed { Box::new(DropEveryThird) } else { Box::new(KeepAll) }
        };

        for shards in [1usize, 2, 4] {
            let mut engine = ShardedEngine::for_queries(set.clone(), shards);
            engine.set_chunk_capacity(chunk_capacity);
            let control = engine.control();
            let handle = engine.query_handle(0).expect("slot 0 starts live");
            control.retire_at(retire_at, handle);
            let admitted_handle = control.admit_at(
                admit_at,
                admitted_query.clone(),
                (0..shards).map(|_| boxed(shed)).collect(),
            );
            prop_assert_eq!(admitted_handle.slot, 2);

            let initial: Vec<crate::BoxedDecider> =
                (0..shards * set.len()).map(|_| boxed(shed)).collect();
            let outcome = if streaming {
                let mut source = SliceSource::from_stream(&stream);
                engine.run_source_live(&mut source, initial)
            } else {
                engine.run_slice_live(&stream, initial)
            };
            prop_assert_eq!(outcome.complex_events.len(), 3);
            prop_assert_eq!(outcome.lifecycle.admitted.len(), 1);
            prop_assert_eq!(outcome.lifecycle.retired.len(), 1);
            prop_assert_eq!(outcome.lifecycle.rejected, 0);
            let stats = engine.stats();

            // Admitted query: byte-identical to a fresh static engine over
            // the suffix — complex events and statistics.
            let mut fresh = ShardedEngine::new(admitted_query.clone(), shards);
            let expected_admitted = if shed {
                let mut deciders = vec![DropEveryThird; shards];
                fresh.run_slice(&suffix, &mut deciders)
            } else {
                let mut deciders = vec![KeepAll; shards];
                fresh.run_slice(&suffix, &mut deciders)
            };
            prop_assert_eq!(&outcome.complex_events[2], &expected_admitted,
                "admitted query diverged at {} shards (shed={}, streaming={}, k={})",
                shards, shed, streaming, admit_at);
            prop_assert_eq!(&stats.per_query[2], &fresh.stats().merged,
                "admitted stats diverged at {} shards", shards);

            // Survivor: untouched by both the retirement and the admission.
            let mut solo = ShardedEngine::new(survivor_query.clone(), shards);
            let expected_survivor = if shed {
                let mut deciders = vec![DropEveryThird; shards];
                solo.run_slice(&stream, &mut deciders)
            } else {
                let mut deciders = vec![KeepAll; shards];
                solo.run_slice(&stream, &mut deciders)
            };
            prop_assert_eq!(&outcome.complex_events[1], &expected_survivor,
                "survivor diverged at {} shards (shed={}, streaming={})",
                shards, shed, streaming);
            prop_assert_eq!(&stats.per_query[1], &solo.stats().merged);

            // Retired query: a prefix of its static output (window-id
            // ordered; windows opened before the retirement drained to
            // completion, none opened after).
            let mut full = ShardedEngine::new(retired_query.clone(), shards);
            let expected_full = if shed {
                let mut deciders = vec![DropEveryThird; shards];
                full.run_slice(&stream, &mut deciders)
            } else {
                let mut deciders = vec![KeepAll; shards];
                full.run_slice(&stream, &mut deciders)
            };
            let retired = &outcome.complex_events[0];
            prop_assert!(retired.len() <= expected_full.len());
            prop_assert_eq!(retired.as_slice(), &expected_full[..retired.len()],
                "retired output is not a drained prefix at {} shards", shards);

            // The retired slot's deciders were torn down on every shard;
            // the others survived.
            for row in &outcome.deciders {
                prop_assert!(row[0].is_none());
                prop_assert!(row[1].is_some() && row[2].is_some());
            }
        }
    }

    /// Running the operator twice over the same stream produces identical
    /// complex events (the engine is deterministic).
    #[test]
    fn operator_runs_are_deterministic(types in type_sequence(100)) {
        let query = Query::builder()
            .pattern(Pattern::sequence([EventType::from_index(0), EventType::from_index(1)]))
            .window(WindowSpec::count_on_types(vec![EventType::from_index(0)], 12))
            .build();
        let events: Vec<Event> = types
            .iter()
            .enumerate()
            .map(|(i, &t)| Event::new(EventType::from_index(t), Timestamp::from_secs(i as u64), i as u64))
            .collect();
        let stream = VecStream::from_ordered(events);
        let a = Operator::new(query.clone()).run(&stream, &mut KeepAll);
        let b = Operator::new(query).run(&stream, &mut KeepAll);
        prop_assert_eq!(a, b);
    }
}

/// A decider whose keep/drop choice is a pure function of
/// `(window id, position)` — so a pristine clone replays the exact
/// decisions of a crashed shard incarnation — while its counters
/// accumulate history, so comparing deciders end-to-end proves a recovery
/// restored decider state, not just emissions.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ParityShed {
    modulo: u64,
    kept: u64,
    dropped: u64,
}

impl ParityShed {
    fn new(shed: bool) -> Self {
        // A huge modulo makes drops vanishingly rare: the "shedding off"
        // arm of the sweeps, with the same code path and counters.
        ParityShed { modulo: if shed { 3 } else { 1_000_000_007 }, kept: 0, dropped: 0 }
    }
}

impl WindowEventDecider for ParityShed {
    fn decide(&mut self, meta: &WindowMeta, position: usize, _event: &Event) -> Decision {
        if (meta.id + position as u64).is_multiple_of(self.modulo) {
            self.dropped += 1;
            Decision::Drop
        } else {
            self.kept += 1;
            Decision::Keep
        }
    }
}

fn events_from(types: &[u32]) -> VecStream {
    VecStream::from_ordered(
        types
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                Event::new(EventType::from_index(t), Timestamp::from_secs(i as u64), i as u64)
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chaos sweep: for seeded fault plans (shard panics at arbitrary
    /// chunk boundaries, short stalls), shard counts N ∈ {1, 2, 4}, chunk
    /// capacities {1, 7, 64} and shedding on or off, a crashed-and-
    /// recovered resilient run emits **byte-identical** complex events,
    /// merged statistics and final decider state to a fault-free run —
    /// which itself matches the non-resilient streaming path.
    #[test]
    fn chaos_recovery_is_byte_identical(
        types in type_sequence(150),
        window_size in 2usize..16,
        slide in 1usize..6,
        shed in prop::bool::ANY,
        chunk_capacity in prop::sample::select(vec![1usize, 7, 64]),
        seed in 0u64..u64::MAX,
    ) {
        use crate::{FaultKind, FaultPlan, ResilienceOptions, ShardStatus};

        let query = Query::builder()
            .pattern(Pattern::sequence([EventType::from_index(0), EventType::from_index(1)]))
            .window(WindowSpec::count_sliding(window_size, slide))
            .build();
        let stream = events_from(&types);

        for shards in [1usize, 2, 4] {
            // Fault-free oracle on the resilient path, cross-checked
            // against the legacy streaming entry point.
            let mut legacy_engine = ShardedEngine::new(query.clone(), shards);
            legacy_engine.set_chunk_capacity(chunk_capacity);
            let mut legacy_deciders = vec![ParityShed::new(shed); shards];
            let mut source = SliceSource::from_stream(&stream);
            let legacy = legacy_engine.run_source_per_query(&mut source, &mut legacy_deciders);

            let mut oracle_engine = ShardedEngine::new(query.clone(), shards);
            oracle_engine.set_chunk_capacity(chunk_capacity);
            let mut source = SliceSource::from_stream(&stream);
            let oracle = oracle_engine
                .run_source_resilient(
                    &mut source,
                    vec![ParityShed::new(shed); shards],
                    &ResilienceOptions::default(),
                )
                .unwrap();
            prop_assert_eq!(&oracle.complex_events, &legacy,
                "fault-free resilient run diverged from the streaming path at {} shards", shards);

            // Seeded faults; producer kills change the delivered stream
            // and have their own prefix-identity property below.
            let mut plan = FaultPlan::new();
            for fault in FaultPlan::seeded(seed, shards, stream.len() as u64, chunk_capacity)
                .faults()
            {
                if !matches!(fault, FaultKind::KillProducer { .. }) {
                    plan = plan.with(fault.clone());
                }
            }
            let options = ResilienceOptions { fault_plan: Some(plan), ..Default::default() };
            let mut chaos_engine = ShardedEngine::new(query.clone(), shards);
            chaos_engine.set_chunk_capacity(chunk_capacity);
            let mut source = SliceSource::from_stream(&stream);
            let report = chaos_engine
                .run_source_resilient(&mut source, vec![ParityShed::new(shed); shards], &options)
                .unwrap();

            prop_assert_eq!(&report.complex_events, &oracle.complex_events,
                "recovered output diverged at {} shards, chunk {}, seed {}",
                shards, chunk_capacity, seed);
            prop_assert_eq!(&report.deciders, &oracle.deciders,
                "recovered decider state diverged at {} shards, chunk {}, seed {}",
                shards, chunk_capacity, seed);
            prop_assert_eq!(chaos_engine.stats().merged, oracle_engine.stats().merged,
                "recovered stats diverged at {} shards, chunk {}, seed {}",
                shards, chunk_capacity, seed);
            for status in &report.shard_status {
                prop_assert!(!matches!(status, ShardStatus::Failed(_)),
                    "no shard may exhaust its restart budget under a seeded plan: {:?}", status);
            }
        }
    }

    /// A producer kill delivers exactly the longest sealed-chunk prefix:
    /// the run's output equals a fault-free run over
    /// `after_events - (after_events % chunk_capacity)` events.
    #[test]
    fn chaos_producer_kill_delivers_sealed_prefix(
        types in type_sequence(120),
        window_size in 2usize..12,
        slide in 1usize..5,
        shed in prop::bool::ANY,
        chunk_capacity in prop::sample::select(vec![1usize, 7, 64]),
        kill_frac in 0.0f64..1.0,
    ) {
        use crate::{FaultKind, FaultPlan, ResilienceOptions};

        let query = Query::builder()
            .pattern(Pattern::sequence([EventType::from_index(0), EventType::from_index(1)]))
            .window(WindowSpec::count_sliding(window_size, slide))
            .build();
        let stream = events_from(&types);
        let kill_after = (stream.len() as f64 * kill_frac) as u64;
        let prefix_len = (kill_after - kill_after % chunk_capacity as u64) as usize;
        let prefix = VecStream::from_ordered(stream.events()[..prefix_len].to_vec());

        for shards in [1usize, 2] {
            let mut oracle_engine = ShardedEngine::new(query.clone(), shards);
            oracle_engine.set_chunk_capacity(chunk_capacity);
            let mut source = SliceSource::from_stream(&prefix);
            let oracle = oracle_engine
                .run_source_resilient(
                    &mut source,
                    vec![ParityShed::new(shed); shards],
                    &ResilienceOptions::default(),
                )
                .unwrap();

            let plan = FaultPlan::new().with(FaultKind::KillProducer { after_events: kill_after });
            let options = ResilienceOptions { fault_plan: Some(plan), ..Default::default() };
            let mut killed_engine = ShardedEngine::new(query.clone(), shards);
            killed_engine.set_chunk_capacity(chunk_capacity);
            let mut source = SliceSource::from_stream(&stream);
            let report = killed_engine
                .run_source_resilient(&mut source, vec![ParityShed::new(shed); shards], &options)
                .unwrap();

            prop_assert_eq!(&report.complex_events, &oracle.complex_events,
                "killed producer diverged from sealed prefix of {} events at {} shards",
                prefix_len, shards);
            prop_assert_eq!(&report.deciders, &oracle.deciders);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Work stealing is output-invariant: routing window ownership through
    /// the [`WindowBalancer`](crate::WindowBalancer) instead of the static
    /// modulo emits **byte-identical** complex events, merged statistics
    /// and aggregate shedder counters — for count- and time-based windows,
    /// shards {1, 2, 4}, shedding on and off, and every chunk capacity of
    /// the ingestion sweep. The partition may differ per shard; the union
    /// never does.
    #[test]
    fn work_stealing_equals_static_modulo(
        types in type_sequence(150),
        window_size in 2usize..16,
        slide in 1usize..6,
        time_windows in prop::bool::ANY,
        shed in prop::bool::ANY,
        chunk_capacity in chunk_capacities(),
    ) {
        use crate::OwnershipPolicy;
        use espice_events::SimDuration;

        let window = if time_windows {
            WindowSpec::time_on_types(
                vec![EventType::from_index(0)],
                SimDuration::from_secs(window_size as u64),
            )
        } else {
            WindowSpec::count_sliding(window_size, slide)
        };
        let query = Query::builder()
            .pattern(Pattern::sequence([EventType::from_index(0), EventType::from_index(1)]))
            .window(window)
            .build();
        let stream = events_from(&types);

        let totals = |deciders: &[ParityShed]| -> (u64, u64) {
            (deciders.iter().map(|d| d.kept).sum(), deciders.iter().map(|d| d.dropped).sum())
        };

        for shards in [1usize, 2, 4] {
            let mut fixed_engine = ShardedEngine::new(query.clone(), shards);
            fixed_engine.set_chunk_capacity(chunk_capacity);
            let mut fixed_deciders = vec![ParityShed::new(shed); shards];
            let mut source = SliceSource::from_stream(&stream);
            let fixed = fixed_engine.run_source(&mut source, &mut fixed_deciders);

            let mut steal_engine = ShardedEngine::new(query.clone(), shards);
            steal_engine.set_ownership_policy(OwnershipPolicy::StealAtOpen);
            steal_engine.set_chunk_capacity(chunk_capacity);
            let mut steal_deciders = vec![ParityShed::new(shed); shards];
            let mut source = SliceSource::from_stream(&stream);
            let stolen = steal_engine.run_source(&mut source, &mut steal_deciders);

            prop_assert_eq!(&stolen, &fixed,
                "stolen output diverged at {} shards, chunk {} (shed={}, time={})",
                shards, chunk_capacity, shed, time_windows);
            prop_assert_eq!(steal_engine.stats().merged, fixed_engine.stats().merged,
                "stolen stats diverged at {} shards, chunk {}", shards, chunk_capacity);
            // Every (window, position) pair is decided exactly once
            // *somewhere*: the per-shard split moves, the sum cannot.
            prop_assert_eq!(totals(&steal_deciders), totals(&fixed_deciders),
                "aggregate shedder counters diverged at {} shards", shards);
            // One shard owns everything either way.
            if shards == 1 {
                prop_assert_eq!(steal_engine.stolen_windows(), 0);
            }
        }
    }

    /// Work stealing on the fused multi-query path: identical per-query
    /// complex events and per-query statistics, query sets with mixed open
    /// policies, lifecycle churn included (a retirement and a mid-stream
    /// admission must route their windows identically under both
    /// ownership policies).
    #[test]
    fn work_stealing_is_invariant_under_multi_query_churn(
        types in type_sequence(140),
        retired_size in 3usize..14,
        survivor_size in 2usize..12,
        admitted_size in 2usize..12,
        slide in 1usize..5,
        admit_frac in 0.1f64..0.9,
        retire_frac in 0.1f64..0.9,
        shed in prop::bool::ANY,
        chunk_capacity in chunk_capacities(),
    ) {
        use crate::OwnershipPolicy;

        let retired_query = Query::builder()
            .pattern(Pattern::sequence([EventType::from_index(0), EventType::from_index(1)]))
            .window(WindowSpec::count_sliding(retired_size, slide))
            .build();
        let survivor_query = Query::builder()
            .pattern(Pattern::sequence([EventType::from_index(0), EventType::from_index(1)]))
            .window(WindowSpec::count_on_types(vec![EventType::from_index(0)], survivor_size))
            .build();
        let admitted_query = Query::builder()
            .pattern(Pattern::sequence([EventType::from_index(0), EventType::from_index(1)]))
            .window(WindowSpec::count_sliding(admitted_size, slide))
            .build();
        let stream = events_from(&types);
        let admit_at = ((stream.len() as f64 * admit_frac) as u64).min(stream.len() as u64 - 1);
        let retire_at = ((stream.len() as f64 * retire_frac) as u64).min(stream.len() as u64 - 1);
        let set = crate::QuerySet::new(vec![retired_query, survivor_query]);
        let boxed = |shed: bool| -> crate::BoxedDecider {
            if shed { Box::new(DropEveryThird) } else { Box::new(KeepAll) }
        };

        for shards in [2usize, 4] {
            let mut runs = Vec::new();
            for steal in [false, true] {
                let mut engine = ShardedEngine::for_queries(set.clone(), shards);
                if steal {
                    engine.set_ownership_policy(OwnershipPolicy::StealAtOpen);
                }
                engine.set_chunk_capacity(chunk_capacity);
                let control = engine.control();
                let handle = engine.query_handle(0).expect("slot 0 starts live");
                control.retire_at(retire_at, handle);
                control.admit_at(
                    admit_at,
                    admitted_query.clone(),
                    (0..shards).map(|_| boxed(shed)).collect(),
                );
                let initial: Vec<crate::BoxedDecider> =
                    (0..shards * set.len()).map(|_| boxed(shed)).collect();
                let mut source = SliceSource::from_stream(&stream);
                let outcome = engine.run_source_live(&mut source, initial);
                runs.push((outcome.complex_events, engine.stats()));
            }
            let (fixed_events, fixed_stats) = &runs[0];
            let (stolen_events, stolen_stats) = &runs[1];
            prop_assert_eq!(stolen_events, fixed_events,
                "churned stolen output diverged at {} shards, chunk {} (shed={})",
                shards, chunk_capacity, shed);
            prop_assert_eq!(&stolen_stats.per_query, &fixed_stats.per_query,
                "churned per-query stats diverged at {} shards", shards);
            prop_assert_eq!(&stolen_stats.merged, &fixed_stats.merged);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chaos × work stealing: a shard that crashes while owning *stolen*
    /// windows recovers byte-identically — the checkpointed ownership
    /// table makes the replacement re-derive the exact same (possibly
    /// stolen) ownership for every replayed open.
    #[test]
    fn chaos_recovery_with_work_stealing_is_byte_identical(
        types in type_sequence(150),
        window_size in 2usize..16,
        slide in 1usize..6,
        shed in prop::bool::ANY,
        chunk_capacity in prop::sample::select(vec![1usize, 7, 64]),
        seed in 0u64..u64::MAX,
    ) {
        use crate::{FaultKind, FaultPlan, OwnershipPolicy, ResilienceOptions, ShardStatus};

        let query = Query::builder()
            .pattern(Pattern::sequence([EventType::from_index(0), EventType::from_index(1)]))
            .window(WindowSpec::count_sliding(window_size, slide))
            .build();
        let stream = events_from(&types);

        for shards in [2usize, 4] {
            // Fault-free stealing oracle, itself pinned against the static
            // partition (both fault-free).
            let mut fixed_engine = ShardedEngine::new(query.clone(), shards);
            fixed_engine.set_chunk_capacity(chunk_capacity);
            let mut source = SliceSource::from_stream(&stream);
            let fixed = fixed_engine
                .run_source_resilient(
                    &mut source,
                    vec![ParityShed::new(shed); shards],
                    &ResilienceOptions::default(),
                )
                .unwrap();

            let mut oracle_engine = ShardedEngine::new(query.clone(), shards);
            oracle_engine.set_ownership_policy(OwnershipPolicy::StealAtOpen);
            oracle_engine.set_chunk_capacity(chunk_capacity);
            let mut source = SliceSource::from_stream(&stream);
            let oracle = oracle_engine
                .run_source_resilient(
                    &mut source,
                    vec![ParityShed::new(shed); shards],
                    &ResilienceOptions::default(),
                )
                .unwrap();
            prop_assert_eq!(&oracle.complex_events, &fixed.complex_events,
                "fault-free stealing diverged from static at {} shards", shards);

            let mut plan = FaultPlan::new();
            for fault in FaultPlan::seeded(seed, shards, stream.len() as u64, chunk_capacity)
                .faults()
            {
                if !matches!(fault, FaultKind::KillProducer { .. }) {
                    plan = plan.with(fault.clone());
                }
            }
            let options = ResilienceOptions { fault_plan: Some(plan), ..Default::default() };
            let mut chaos_engine = ShardedEngine::new(query.clone(), shards);
            chaos_engine.set_ownership_policy(OwnershipPolicy::StealAtOpen);
            chaos_engine.set_chunk_capacity(chunk_capacity);
            let mut source = SliceSource::from_stream(&stream);
            let report = chaos_engine
                .run_source_resilient(&mut source, vec![ParityShed::new(shed); shards], &options)
                .unwrap();

            prop_assert_eq!(&report.complex_events, &oracle.complex_events,
                "recovered stolen output diverged at {} shards, chunk {}, seed {}",
                shards, chunk_capacity, seed);
            prop_assert_eq!(&report.deciders, &oracle.deciders,
                "recovered decider state diverged at {} shards, chunk {}, seed {}",
                shards, chunk_capacity, seed);
            prop_assert_eq!(chaos_engine.stats().merged, oracle_engine.stats().merged,
                "recovered stats diverged at {} shards, chunk {}, seed {}",
                shards, chunk_capacity, seed);
            for status in &report.shard_status {
                prop_assert!(!matches!(status, ShardStatus::Failed(_)),
                    "no shard may exhaust its restart budget under a seeded plan: {:?}", status);
            }
        }
    }
}

proptest! {
    // Stall detection burns its deadline per case; a handful of sweeps
    // over shard/position placement is enough on top of the deterministic
    // unit test.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A wedged shard yields `EngineError::Stalled` naming that shard
    /// within the configured deadline, instead of hanging the producer.
    #[test]
    fn chaos_stall_is_detected_within_deadline(
        types in type_sequence(150),
        shards in prop::sample::select(vec![1usize, 2, 4]),
        chunk_capacity in prop::sample::select(vec![1usize, 7, 64]),
        stall_seed in 0u64..u64::MAX,
    ) {
        use crate::{EngineError, FaultKind, FaultPlan, ResilienceOptions};
        use std::time::{Duration, Instant};

        let query = Query::builder()
            .pattern(Pattern::sequence([EventType::from_index(0), EventType::from_index(1)]))
            .window(WindowSpec::count_sliding(8, 3))
            .build();
        let stream = events_from(&types);
        let boundaries = (stream.len() / chunk_capacity).max(1) as u64;
        let shard = (stall_seed % shards as u64) as usize;
        let at_position = (stall_seed.wrapping_mul(0x9E37_79B9) % boundaries)
            * chunk_capacity as u64;
        let plan = FaultPlan::new()
            .with(FaultKind::StallShard { shard, at_position, millis: 60_000 });
        let options = ResilienceOptions {
            stall_deadline: Some(Duration::from_millis(150)),
            fault_plan: Some(plan),
            ..Default::default()
        };
        let mut engine = ShardedEngine::new(query, shards);
        engine.set_chunk_capacity(chunk_capacity);
        let mut source = SliceSource::from_stream(&stream);
        let started = Instant::now();
        let result = engine.run_source_resilient(
            &mut source,
            vec![ParityShed::new(true); shards],
            &options,
        );
        let elapsed = started.elapsed();
        match result {
            Err(EngineError::Stalled { shard: stalled, .. }) => {
                prop_assert_eq!(stalled, shard, "watchdog blamed the wrong shard");
            }
            other => prop_assert!(false, "expected Stalled, got {:?}", other.is_ok()),
        }
        prop_assert!(elapsed < Duration::from_secs(30),
            "stall detection took {:?} against a 150ms deadline", elapsed);
    }
}

/// A panic injected into the *live* (lifecycle) path mid-churn is contained
/// as a typed `ShardsFailed` value — survivors drain, nothing unwinds
/// through the caller — satisfying the containment guarantee on the one
/// path that has no replay recovery yet.
#[test]
fn live_path_contains_injected_panic_during_churn() {
    use crate::{EngineError, FaultKind, FaultPlan};

    let base = Query::builder()
        .pattern(Pattern::sequence([EventType::from_index(0), EventType::from_index(1)]))
        .window(WindowSpec::count_sliding(8, 3))
        .build();
    let admitted = Query::builder()
        .pattern(Pattern::sequence([EventType::from_index(0), EventType::from_index(1)]))
        .window(WindowSpec::count_sliding(5, 2))
        .build();
    let types: Vec<u32> = (0..200).map(|i| (i % 3 % 2) as u32).collect();
    let stream = events_from(&types);

    let shards = 2;
    let mut engine = ShardedEngine::for_queries(crate::QuerySet::single(base), shards);
    // Per-event hand-off: every stream position is a hand-off boundary,
    // so the injected position fires regardless of how the mid-stream
    // admission re-aligns chunk framing.
    engine.set_chunk_capacity(1);
    engine.set_fault_plan(Some(
        FaultPlan::new().with(FaultKind::PanicShard { shard: 1, at_position: 70 }),
    ));
    let control = engine.control();
    control.admit_at(
        40,
        admitted,
        (0..shards).map(|_| Box::new(KeepAll) as crate::BoxedDecider).collect(),
    );
    let initial: Vec<crate::BoxedDecider> =
        (0..shards).map(|_| Box::new(KeepAll) as crate::BoxedDecider).collect();
    let mut source = SliceSource::from_stream(&stream);
    match engine.try_run_source_live(&mut source, initial) {
        Err(EngineError::ShardsFailed { failures }) => {
            assert_eq!(failures.len(), 1);
            assert_eq!(failures[0].shard, 1);
            assert!(
                failures[0].message.contains("injected fault: shard 1"),
                "unexpected failure message: {}",
                failures[0].message
            );
        }
        Err(other) => panic!("expected ShardsFailed, got {other:?}"),
        Ok(_) => panic!("the injected panic was silently swallowed"),
    }
}

//! Seed-driven chaos harness: the CI entry point for fault-injection
//! sweeps (`CHAOS_SEED=n cargo test -p espice-cep --test chaos`).
//!
//! For each seed, [`FaultPlan::seeded`] derives a plan — always a shard
//! panic at some chunk boundary, for half the seeds a second fault (another
//! panic, a short stall, or a producer kill) — and the run is pinned
//! byte-for-byte against a fault-free oracle over the stream the producer
//! actually delivered (the full stream, or the sealed-chunk prefix when the
//! plan kills the producer).

use espice_cep::{
    Decision, FaultKind, FaultPlan, Pattern, Query, QuerySet, ResilienceOptions, ShardStatus,
    ShardedEngine, WindowEventDecider, WindowMeta, WindowSpec,
};
use espice_events::{Event, EventStream, EventType, SliceSource, Timestamp, VecStream};

/// Keep/drop from `(window id, position)` alone — replay-consistent by
/// construction — with counters that pin recovered decider state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ParityShed {
    kept: u64,
    dropped: u64,
}

impl WindowEventDecider for ParityShed {
    fn decide(&mut self, meta: &WindowMeta, position: usize, _event: &Event) -> Decision {
        if (meta.id + position as u64).is_multiple_of(3) {
            self.dropped += 1;
            Decision::Drop
        } else {
            self.kept += 1;
            Decision::Keep
        }
    }
}

fn queries() -> QuerySet {
    let a = EventType::from_index(0);
    let b = EventType::from_index(1);
    QuerySet::new(vec![
        Query::builder()
            .pattern(Pattern::sequence([a, b]))
            .window(WindowSpec::count_sliding(9, 4))
            .build(),
        Query::builder()
            .pattern(Pattern::sequence([b, a]))
            .window(WindowSpec::count_sliding(6, 2))
            .build(),
    ])
}

/// A deterministic 600-event stream with a skewed type mix.
fn stream() -> VecStream {
    let mut state = 0x5EED_u64;
    let events = (0..600)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let ty = ((state >> 33) % 3 % 2) as u32;
            Event::new(EventType::from_index(ty), Timestamp::from_secs(i), i)
        })
        .collect();
    VecStream::from_ordered(events)
}

fn run(
    set: &QuerySet,
    events: &VecStream,
    shards: usize,
    chunk_capacity: usize,
    options: &ResilienceOptions,
) -> (espice_cep::RunReport<ParityShed>, ShardedEngine) {
    let mut engine = ShardedEngine::for_queries(set.clone(), shards);
    engine.set_chunk_capacity(chunk_capacity);
    let deciders = vec![ParityShed { kept: 0, dropped: 0 }; shards * set.len()];
    let mut source = SliceSource::from_stream(events);
    let report = engine
        .run_source_resilient(&mut source, deciders, options)
        .unwrap_or_else(|error| panic!("chaos run failed: {error}"));
    (report, engine)
}

/// Seeds to sweep: `CHAOS_SEED` (space- or comma-separated) when set, a
/// small default battery otherwise.
fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(value) => value
            .split([' ', ','])
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().unwrap_or_else(|_| panic!("bad CHAOS_SEED entry: {s}")))
            .collect(),
        Err(_) => (1..=8).collect(),
    }
}

#[test]
fn seeded_chaos_sweep_is_byte_identical_to_fault_free_oracle() {
    let set = queries();
    let full = stream();
    for seed in seeds() {
        for shards in [1usize, 2, 4] {
            for chunk_capacity in [1usize, 7, 64] {
                let plan = FaultPlan::seeded(seed, shards, full.len() as u64, chunk_capacity);
                // The oracle covers the stream the producer actually
                // delivers: a producer kill truncates it to the longest
                // sealed-chunk prefix.
                let delivered = plan
                    .faults()
                    .iter()
                    .filter_map(|fault| match fault {
                        FaultKind::KillProducer { after_events } => Some(*after_events),
                        _ => None,
                    })
                    .min()
                    .map(|kill| (kill - kill % chunk_capacity as u64) as usize)
                    .unwrap_or(full.len());
                let oracle_stream = VecStream::from_ordered(full.events()[..delivered].to_vec());
                let (oracle, oracle_engine) = run(
                    &set,
                    &oracle_stream,
                    shards,
                    chunk_capacity,
                    &ResilienceOptions::default(),
                );

                let options =
                    ResilienceOptions { fault_plan: Some(plan.clone()), ..Default::default() };
                let (report, engine) = run(&set, &full, shards, chunk_capacity, &options);

                let label =
                    format!("seed {seed}, {shards} shards, chunk {chunk_capacity}, plan {plan:?}");
                assert_eq!(
                    report.complex_events, oracle.complex_events,
                    "recovered output diverged from oracle at {label}"
                );
                assert_eq!(
                    report.deciders, oracle.deciders,
                    "recovered decider state diverged at {label}"
                );
                assert_eq!(
                    engine.stats().merged,
                    oracle_engine.stats().merged,
                    "recovered statistics diverged at {label}"
                );
                for status in &report.shard_status {
                    assert!(
                        !matches!(status, ShardStatus::Failed(_)),
                        "restart budget exhausted at {label}: {status:?}"
                    );
                }
                // Panics only fire at positions the producer delivered;
                // when one did, the report must say so.
                let expected_recoveries = plan
                    .faults()
                    .iter()
                    .filter(|fault| {
                        matches!(
                            fault,
                            FaultKind::PanicShard { at_position, .. }
                                if (*at_position as usize) < delivered
                        )
                    })
                    .count() as u32;
                assert_eq!(
                    report.recoveries, expected_recoveries,
                    "recovery count mismatch at {label}"
                );
            }
        }
    }
}

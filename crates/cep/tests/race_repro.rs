use espice_cep::{
    Decision, FaultKind, FaultPlan, Pattern, Query, ResilienceOptions, ShardedEngine,
    WindowEventDecider, WindowMeta, WindowSpec,
};
use espice_events::{Event, EventType, SliceSource, Timestamp, VecStream};

#[derive(Debug, Clone, PartialEq, Eq)]
struct ParityShed {
    kept: u64,
    dropped: u64,
}

impl WindowEventDecider for ParityShed {
    fn decide(&mut self, meta: &WindowMeta, position: usize, _e: &Event) -> Decision {
        if (meta.id + position as u64).is_multiple_of(3) {
            self.dropped += 1;
            Decision::Drop
        } else {
            self.kept += 1;
            Decision::Keep
        }
    }
}

fn stream(len: usize) -> VecStream {
    VecStream::from_ordered(
        (0..len)
            .map(|i| {
                Event::new(
                    EventType::from_index((i % 3 % 2) as u32),
                    Timestamp::from_secs(i as u64),
                    i as u64,
                )
            })
            .collect(),
    )
}

fn run(plan: Option<FaultPlan>, shards: usize, len: usize) -> Vec<Vec<espice_cep::ComplexEvent>> {
    let q = Query::builder()
        .pattern(Pattern::sequence([EventType::from_index(0), EventType::from_index(1)]))
        .window(WindowSpec::count_sliding(6, 2))
        .build();
    let mut e = ShardedEngine::new(q, shards);
    e.set_chunk_capacity(1);
    e.set_queue_capacity(2);
    let ev = stream(len);
    let mut src = SliceSource::from_stream(&ev);
    let options = ResilienceOptions { fault_plan: plan, ..Default::default() };
    e.run_source_resilient(&mut src, vec![ParityShed { kept: 0, dropped: 0 }; shards], &options)
        .unwrap()
        .complex_events
}

#[test]
fn single_panic() {
    let oracle = run(None, 4, 400);
    for t in 0..50 {
        let plan = FaultPlan::new().with(FaultKind::PanicShard { shard: 0, at_position: 50 });
        assert_eq!(run(Some(plan), 4, 400), oracle, "single-panic diverged on trial {t}");
    }
}

#[test]
fn two_panics_far_apart() {
    let oracle = run(None, 4, 400);
    for t in 0..50 {
        let plan = FaultPlan::new()
            .with(FaultKind::PanicShard { shard: 0, at_position: 50 })
            .with(FaultKind::PanicShard { shard: 3, at_position: 300 });
        assert_eq!(run(Some(plan), 4, 400), oracle, "far-apart diverged on trial {t}");
    }
}

#[test]
fn two_panics_same_position() {
    let oracle = run(None, 4, 400);
    for t in 0..50 {
        let plan = FaultPlan::new()
            .with(FaultKind::PanicShard { shard: 0, at_position: 50 })
            .with(FaultKind::PanicShard { shard: 3, at_position: 50 });
        assert_eq!(run(Some(plan), 4, 400), oracle, "same-position diverged on trial {t}");
    }
}

//! Simulated time.
//!
//! All experiments in this repository run against a discrete-event simulation
//! rather than the wall clock (see `DESIGN.md` §3). Time is represented with
//! microsecond resolution, which is fine enough for the latency-bound
//! experiments (the paper uses a 1 second latency bound and millisecond-scale
//! measurements) while staying cheap to manipulate.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, measured in microseconds since the start of the
/// simulation.
///
/// `Timestamp` is a transparent newtype over `u64` (see C-NEWTYPE): it cannot
/// be confused with a [`SimDuration`] and arithmetic between the two is
/// restricted to the operations that make sense.
///
/// # Example
///
/// ```
/// use espice_events::{Timestamp, SimDuration};
///
/// let t = Timestamp::from_secs(2) + SimDuration::from_millis(500);
/// assert_eq!(t.as_micros(), 2_500_000);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The origin of simulated time.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Timestamp(micros)
    }

    /// Creates a timestamp from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Timestamp(millis * 1_000)
    }

    /// Creates a timestamp from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs * 1_000_000)
    }

    /// Creates a timestamp from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "timestamp seconds must be non-negative");
        Timestamp((secs * 1_000_000.0).round() as u64)
    }

    /// Raw microseconds since the simulation origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the simulation origin (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds since the simulation origin.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    pub fn saturating_since(self, earlier: Timestamp) -> SimDuration {
        SimDuration::from_micros(self.0.saturating_sub(earlier.0))
    }

    /// Checked duration since `earlier`; `None` if `earlier > self`.
    pub fn checked_since(self, earlier: Timestamp) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration::from_micros)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for Timestamp {
    type Output = Timestamp;

    fn add(self, rhs: SimDuration) -> Timestamp {
        Timestamp(self.0 + rhs.as_micros())
    }
}

impl AddAssign<SimDuration> for Timestamp {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_micros();
    }
}

impl Sub<SimDuration> for Timestamp {
    type Output = Timestamp;

    fn sub(self, rhs: SimDuration) -> Timestamp {
        Timestamp(self.0.saturating_sub(rhs.as_micros()))
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = SimDuration;

    fn sub(self, rhs: Timestamp) -> SimDuration {
        self.saturating_since(rhs)
    }
}

/// A span of simulated time, measured in microseconds.
///
/// # Example
///
/// ```
/// use espice_events::SimDuration;
///
/// let slice = SimDuration::from_secs(1) / 4;
/// assert_eq!(slice.as_millis(), 250);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "duration seconds must be non-negative");
        SimDuration((secs * 1_000_000.0).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Whether this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the duration by a non-negative float, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor.is_finite() && factor >= 0.0, "duration factor must be non-negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_roundtrip_units() {
        let t = Timestamp::from_secs(3);
        assert_eq!(t.as_micros(), 3_000_000);
        assert_eq!(t.as_millis(), 3_000);
        assert!((t.as_secs_f64() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn timestamp_from_fractional_seconds() {
        let t = Timestamp::from_secs_f64(0.0015);
        assert_eq!(t.as_micros(), 1_500);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn timestamp_rejects_negative_seconds() {
        let _ = Timestamp::from_secs_f64(-1.0);
    }

    #[test]
    fn timestamp_duration_arithmetic() {
        let t = Timestamp::from_millis(100) + SimDuration::from_millis(50);
        assert_eq!(t.as_millis(), 150);
        assert_eq!((t - Timestamp::from_millis(100)).as_millis(), 50);
        // Saturating behaviour when subtracting a later timestamp.
        assert_eq!((Timestamp::from_millis(10) - Timestamp::from_millis(20)).as_micros(), 0);
    }

    #[test]
    fn checked_since_detects_ordering() {
        let early = Timestamp::from_secs(1);
        let late = Timestamp::from_secs(2);
        assert_eq!(late.checked_since(early), Some(SimDuration::from_secs(1)));
        assert_eq!(early.checked_since(late), None);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_secs(2);
        assert_eq!((d * 3).as_secs_f64(), 6.0);
        assert_eq!((d / 4).as_millis(), 500);
        assert_eq!(d.mul_f64(0.25).as_millis(), 500);
        assert_eq!((d - SimDuration::from_secs(5)).as_micros(), 0);
    }

    #[test]
    fn duration_is_zero() {
        assert!(SimDuration::ZERO.is_zero());
        assert!(!SimDuration::from_micros(1).is_zero());
    }

    #[test]
    fn display_formats_in_seconds() {
        assert_eq!(Timestamp::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250000s");
    }
}

//! The primitive event.

use crate::{AttributeValue, Attributes, EventType, Timestamp};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Global sequence number of an event within its input stream.
///
/// The paper assumes a total order over the input stream ("events in the
/// input event streams have global order, e.g., by using the sequence number
/// or the timestamp and a tie-breaker"); the sequence number provides that
/// order and doubles as a stable identity when comparing detected complex
/// events against ground truth.
pub type SequenceNumber = u64;

/// A primitive event: meta-data (type, sequence number, timestamp) plus
/// attribute/value pairs.
///
/// Events are cheap to clone: the attribute payload is stored behind an
/// [`Arc`], because the same event is shared by every overlapping window it
/// belongs to.
///
/// # Example
///
/// ```
/// use espice_events::{Event, TypeRegistry, Timestamp, AttributeValue};
///
/// let mut registry = TypeRegistry::new();
/// let quote = registry.intern("QUOTE");
/// let event = Event::builder(quote, Timestamp::from_secs(10))
///     .seq(42)
///     .attr("change", AttributeValue::from(-0.3))
///     .build();
///
/// assert_eq!(event.seq(), 42);
/// assert!(event.attrs().get_f64("change").unwrap() < 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Event {
    seq: SequenceNumber,
    timestamp: Timestamp,
    event_type: EventType,
    attrs: Arc<Attributes>,
}

impl Event {
    /// Creates a new event with an empty attribute set.
    pub fn new(event_type: EventType, timestamp: Timestamp, seq: SequenceNumber) -> Self {
        Event { seq, timestamp, event_type, attrs: Arc::new(Attributes::new()) }
    }

    /// Starts building an event of the given type and timestamp.
    pub fn builder(event_type: EventType, timestamp: Timestamp) -> EventBuilder {
        EventBuilder { seq: 0, timestamp, event_type, attrs: Attributes::new() }
    }

    /// The event's global sequence number.
    pub fn seq(&self) -> SequenceNumber {
        self.seq
    }

    /// The event's timestamp.
    pub fn timestamp(&self) -> Timestamp {
        self.timestamp
    }

    /// The event's type.
    pub fn event_type(&self) -> EventType {
        self.event_type
    }

    /// The event's attribute payload.
    pub fn attrs(&self) -> &Attributes {
        &self.attrs
    }

    /// Returns a copy of this event with a different sequence number.
    ///
    /// Used by stream mergers and replay tools that re-number events to
    /// restore a global order.
    pub fn with_seq(&self, seq: SequenceNumber) -> Event {
        let mut e = self.clone();
        e.seq = seq;
        e
    }

    /// Returns a copy of this event shifted to a different timestamp.
    pub fn with_timestamp(&self, timestamp: Timestamp) -> Event {
        let mut e = self.clone();
        e.timestamp = timestamp;
        e
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        // Identity of an event in the stream is its sequence number; the
        // payload is not re-compared.
        self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Global order: timestamp, then sequence number as the tie-breaker.
        self.timestamp.cmp(&other.timestamp).then(self.seq.cmp(&other.seq))
    }
}

impl std::hash::Hash for Event {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.seq.hash(state);
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e#{}@{} ({})", self.seq, self.timestamp, self.event_type)
    }
}

/// Builder for [`Event`] values.
///
/// # Example
///
/// ```
/// use espice_events::{Event, EventType, Timestamp, AttributeValue};
///
/// let event = Event::builder(EventType::from_index(0), Timestamp::ZERO)
///     .seq(7)
///     .attr("x", AttributeValue::from(1.0))
///     .attr("y", AttributeValue::from(2.0))
///     .build();
/// assert_eq!(event.attrs().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct EventBuilder {
    seq: SequenceNumber,
    timestamp: Timestamp,
    event_type: EventType,
    attrs: Attributes,
}

impl EventBuilder {
    /// Sets the sequence number.
    pub fn seq(mut self, seq: SequenceNumber) -> Self {
        self.seq = seq;
        self
    }

    /// Adds (or replaces) an attribute.
    pub fn attr(mut self, name: &str, value: AttributeValue) -> Self {
        self.attrs.set(name, value);
        self
    }

    /// Finishes building the event.
    pub fn build(self) -> Event {
        Event {
            seq: self.seq,
            timestamp: self.timestamp,
            event_type: self.event_type,
            attrs: Arc::new(self.attrs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    fn ev(ty: u32, ts_ms: u64, seq: u64) -> Event {
        Event::new(EventType::from_index(ty), Timestamp::from_millis(ts_ms), seq)
    }

    #[test]
    fn builder_sets_all_fields() {
        let e = Event::builder(EventType::from_index(3), Timestamp::from_secs(5))
            .seq(11)
            .attr("price", AttributeValue::from(10.5))
            .build();
        assert_eq!(e.seq(), 11);
        assert_eq!(e.event_type().index(), 3);
        assert_eq!(e.timestamp(), Timestamp::from_secs(5));
        assert_eq!(e.attrs().get_f64("price"), Some(10.5));
    }

    #[test]
    fn equality_is_by_sequence_number() {
        let a = ev(0, 10, 1);
        let b = ev(5, 999, 1);
        let c = ev(0, 10, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ordering_is_timestamp_then_seq() {
        let early = ev(0, 10, 5);
        let late = ev(0, 20, 1);
        let tie_low = ev(0, 10, 1);
        assert!(early < late);
        assert!(tie_low < early);
        let mut v = vec![late.clone(), early.clone(), tie_low.clone()];
        v.sort();
        assert_eq!(v, vec![tie_low, early, late]);
    }

    #[test]
    fn with_seq_and_with_timestamp_do_not_mutate_original() {
        let original = ev(1, 100, 7);
        let renumbered = original.with_seq(99);
        let shifted =
            original.with_timestamp(Timestamp::from_millis(100) + SimDuration::from_millis(50));
        assert_eq!(original.seq(), 7);
        assert_eq!(renumbered.seq(), 99);
        assert_eq!(shifted.timestamp().as_millis(), 150);
        assert_eq!(original.timestamp().as_millis(), 100);
    }

    #[test]
    fn clone_shares_attribute_storage() {
        let e = Event::builder(EventType::from_index(0), Timestamp::ZERO)
            .attr("a", AttributeValue::from(1i64))
            .build();
        let c = e.clone();
        assert!(Arc::ptr_eq(&e.attrs, &c.attrs));
    }

    #[test]
    fn display_mentions_seq_and_type() {
        let e = ev(2, 1000, 3);
        let s = e.to_string();
        assert!(s.contains("e#3"));
        assert!(s.contains("type#2"));
    }
}

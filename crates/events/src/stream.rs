//! In-memory event streams.
//!
//! The experiments replay stored (synthetic) datasets "from stored files to
//! the system with an event input rate" (§4.2 of the paper). This module
//! provides the pieces for that: a materialised [`VecStream`], a
//! rate-controlled [`RateReplay`] adaptor that rewrites timestamps so the
//! stream arrives at a chosen events/second rate, stream merging, and
//! [`StreamStats`] summaries used by the dataset generators and tests.

use crate::{Event, SimDuration, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A source of primitive events in global order.
///
/// The trait is deliberately minimal — downstream code mostly needs "give me
/// the events, in order" — and is object-safe so heterogeneous sources can be
/// boxed.
pub trait EventStream {
    /// Returns the events of this stream in global order.
    fn events(&self) -> &[Event];

    /// Number of events in the stream.
    fn len(&self) -> usize {
        self.events().len()
    }

    /// Whether the stream contains no events.
    fn is_empty(&self) -> bool {
        self.events().is_empty()
    }

    /// Timestamp of the first event, if any.
    fn start_time(&self) -> Option<Timestamp> {
        self.events().first().map(Event::timestamp)
    }

    /// Timestamp of the last event, if any.
    fn end_time(&self) -> Option<Timestamp> {
        self.events().last().map(Event::timestamp)
    }

    /// Summary statistics over the stream.
    fn stats(&self) -> StreamStats {
        StreamStats::from_events(self.events())
    }
}

/// A materialised, totally ordered event stream.
///
/// # Example
///
/// ```
/// use espice_events::{Event, EventType, Timestamp, VecStream, EventStream};
///
/// let events = vec![
///     Event::new(EventType::from_index(0), Timestamp::from_secs(2), 2),
///     Event::new(EventType::from_index(0), Timestamp::from_secs(1), 1),
/// ];
/// let stream = VecStream::from_unordered(events);
/// assert_eq!(stream.events()[0].seq(), 1);
/// ```
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct VecStream {
    events: Vec<Event>,
}

impl VecStream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a stream from events that are already in global order.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the events are not sorted by
    /// `(timestamp, seq)`.
    pub fn from_ordered(events: Vec<Event>) -> Self {
        debug_assert!(
            events.windows(2).all(|w| w[0] <= w[1]),
            "events passed to from_ordered must already be sorted"
        );
        VecStream { events }
    }

    /// Creates a stream from possibly unordered events, sorting them into
    /// global order.
    pub fn from_unordered(mut events: Vec<Event>) -> Self {
        events.sort();
        VecStream { events }
    }

    /// Appends an event.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the event would break the global order.
    pub fn push(&mut self, event: Event) {
        debug_assert!(
            self.events.last().is_none_or(|last| *last <= event),
            "pushed event breaks stream order"
        );
        self.events.push(event);
    }

    /// Merges several ordered streams into one, re-assigning sequence numbers
    /// so the result has a dense global order.
    pub fn merge<I>(streams: I) -> VecStream
    where
        I: IntoIterator<Item = VecStream>,
    {
        let mut all: Vec<Event> = streams.into_iter().flat_map(|s| s.events).collect();
        all.sort();
        let renumbered = all.into_iter().enumerate().map(|(i, e)| e.with_seq(i as u64)).collect();
        VecStream { events: renumbered }
    }

    /// Consumes the stream and returns the underlying vector.
    pub fn into_inner(self) -> Vec<Event> {
        self.events
    }

    /// Iterates over the events.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// Returns a sub-stream containing the events in `[from, to)` index range.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, from: usize, to: usize) -> VecStream {
        VecStream { events: self.events[from..to].to_vec() }
    }
}

impl EventStream for VecStream {
    fn events(&self) -> &[Event] {
        &self.events
    }
}

impl FromIterator<Event> for VecStream {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        VecStream::from_unordered(iter.into_iter().collect())
    }
}

impl Extend<Event> for VecStream {
    fn extend<I: IntoIterator<Item = Event>>(&mut self, iter: I) {
        self.events.extend(iter);
        self.events.sort();
    }
}

impl IntoIterator for VecStream {
    type Item = Event;
    type IntoIter = std::vec::IntoIter<Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl<'a> IntoIterator for &'a VecStream {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

/// Replays a stream at a fixed input rate by rewriting arrival timestamps.
///
/// The paper drives each experiment by streaming a stored dataset into the
/// operator at a controlled rate (at/below throughput during model building,
/// 20 % / 40 % above throughput during overload). `RateReplay` models exactly
/// that: event *content* (including the original timestamps used by
/// time-based windows) is preserved, while a separate *arrival* timestamp is
/// produced for the queueing simulation.
///
/// # Example
///
/// ```
/// use espice_events::{Event, EventType, Timestamp, VecStream, RateReplay};
///
/// let stream = VecStream::from_ordered(vec![
///     Event::new(EventType::from_index(0), Timestamp::from_secs(0), 0),
///     Event::new(EventType::from_index(0), Timestamp::from_secs(60), 1),
/// ]);
/// // Replay at 10 events/second: arrivals are 100 ms apart regardless of the
/// // original one-minute spacing.
/// let arrivals: Vec<_> = RateReplay::new(&stream, 10.0).collect();
/// assert_eq!(arrivals[1].0.as_millis(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct RateReplay<'a> {
    events: &'a [Event],
    interarrival: SimDuration,
    next_index: usize,
    next_arrival: Timestamp,
}

impl<'a> RateReplay<'a> {
    /// Creates a replay of `stream` at `rate` events per second, starting at
    /// simulated time zero.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn new<S: EventStream + ?Sized>(stream: &'a S, rate: f64) -> Self {
        Self::starting_at(stream, rate, Timestamp::ZERO)
    }

    /// Creates a replay starting at an arbitrary simulated time.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn starting_at<S: EventStream + ?Sized>(
        stream: &'a S,
        rate: f64,
        start: Timestamp,
    ) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "replay rate must be positive");
        RateReplay {
            events: stream.events(),
            interarrival: SimDuration::from_secs_f64(1.0 / rate),
            next_index: 0,
            next_arrival: start,
        }
    }

    /// The fixed inter-arrival gap used by this replay.
    pub fn interarrival(&self) -> SimDuration {
        self.interarrival
    }
}

impl Iterator for RateReplay<'_> {
    /// Pairs of (arrival time, event).
    type Item = (Timestamp, Event);

    fn next(&mut self) -> Option<Self::Item> {
        let event = self.events.get(self.next_index)?.clone();
        let arrival = self.next_arrival;
        self.next_index += 1;
        self.next_arrival += self.interarrival;
        Some((arrival, event))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.events.len() - self.next_index;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for RateReplay<'_> {}

/// Summary statistics of an event stream.
///
/// Used by the dataset generators to sanity check generated data and by the
/// experiment driver to report workload characteristics.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Total number of events.
    pub count: usize,
    /// Number of distinct event types observed.
    pub distinct_types: usize,
    /// Events per type (keyed by the dense type index).
    pub per_type_counts: HashMap<u32, usize>,
    /// Stream duration in simulated seconds (0 for empty / single-event streams).
    pub duration_secs: f64,
    /// Mean event rate in events per second (0 if duration is 0).
    pub mean_rate: f64,
}

impl StreamStats {
    /// Computes statistics over a slice of ordered events.
    pub fn from_events(events: &[Event]) -> Self {
        let mut per_type_counts: HashMap<u32, usize> = HashMap::new();
        for e in events {
            *per_type_counts.entry(e.event_type().as_u32()).or_insert(0) += 1;
        }
        let duration_secs = match (events.first(), events.last()) {
            (Some(first), Some(last)) => {
                last.timestamp().saturating_since(first.timestamp()).as_secs_f64()
            }
            _ => 0.0,
        };
        let mean_rate = if duration_secs > 0.0 { events.len() as f64 / duration_secs } else { 0.0 };
        StreamStats {
            count: events.len(),
            distinct_types: per_type_counts.len(),
            per_type_counts,
            duration_secs,
            mean_rate,
        }
    }

    /// The relative frequency of a type within the stream, in `[0, 1]`.
    pub fn type_frequency(&self, type_index: u32) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        *self.per_type_counts.get(&type_index).unwrap_or(&0) as f64 / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventType;

    fn ev(ty: u32, ts_ms: u64, seq: u64) -> Event {
        Event::new(EventType::from_index(ty), Timestamp::from_millis(ts_ms), seq)
    }

    #[test]
    fn from_unordered_sorts_events() {
        let s = VecStream::from_unordered(vec![ev(0, 30, 3), ev(0, 10, 1), ev(0, 20, 2)]);
        let seqs: Vec<_> = s.iter().map(Event::seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn merge_renumbers_globally() {
        let a = VecStream::from_ordered(vec![ev(0, 10, 0), ev(0, 30, 1)]);
        let b = VecStream::from_ordered(vec![ev(1, 20, 0), ev(1, 40, 1)]);
        let merged = VecStream::merge(vec![a, b]);
        let seqs: Vec<_> = merged.iter().map(Event::seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        let types: Vec<_> = merged.iter().map(|e| e.event_type().index()).collect();
        assert_eq!(types, vec![0, 1, 0, 1]);
    }

    #[test]
    fn stream_time_bounds() {
        let s = VecStream::from_ordered(vec![ev(0, 100, 0), ev(0, 500, 1)]);
        assert_eq!(s.start_time(), Some(Timestamp::from_millis(100)));
        assert_eq!(s.end_time(), Some(Timestamp::from_millis(500)));
        assert_eq!(VecStream::new().start_time(), None);
    }

    #[test]
    fn slice_returns_subrange() {
        let s = VecStream::from_ordered(vec![ev(0, 1, 0), ev(0, 2, 1), ev(0, 3, 2)]);
        let sub = s.slice(1, 3);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.events()[0].seq(), 1);
    }

    #[test]
    fn rate_replay_spaces_arrivals_evenly() {
        let s = VecStream::from_ordered(vec![ev(0, 0, 0), ev(0, 60_000, 1), ev(0, 120_000, 2)]);
        let arrivals: Vec<_> = RateReplay::new(&s, 100.0).map(|(t, _)| t.as_millis()).collect();
        assert_eq!(arrivals, vec![0, 10, 20]);
    }

    #[test]
    fn rate_replay_preserves_event_content() {
        let s = VecStream::from_ordered(vec![ev(3, 0, 0), ev(4, 60_000, 1)]);
        let events: Vec<_> = RateReplay::new(&s, 1.0).map(|(_, e)| e).collect();
        assert_eq!(events[0].event_type().index(), 3);
        assert_eq!(events[1].timestamp().as_millis(), 60_000);
    }

    #[test]
    fn rate_replay_is_exact_size() {
        let s = VecStream::from_ordered(vec![ev(0, 0, 0), ev(0, 1, 1)]);
        let replay = RateReplay::new(&s, 10.0);
        assert_eq!(replay.len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rate_replay_rejects_zero_rate() {
        let s = VecStream::new();
        let _ = RateReplay::new(&s, 0.0);
    }

    #[test]
    fn stats_count_types_and_rate() {
        let s = VecStream::from_ordered(vec![ev(0, 0, 0), ev(1, 500, 1), ev(0, 1_000, 2)]);
        let stats = s.stats();
        assert_eq!(stats.count, 3);
        assert_eq!(stats.distinct_types, 2);
        assert!((stats.duration_secs - 1.0).abs() < 1e-9);
        assert!((stats.mean_rate - 3.0).abs() < 1e-9);
        assert!((stats.type_frequency(0) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(stats.type_frequency(9), 0.0);
    }

    #[test]
    fn stats_of_empty_stream_are_zero() {
        let stats = VecStream::new().stats();
        assert_eq!(stats.count, 0);
        assert_eq!(stats.mean_rate, 0.0);
        assert_eq!(stats.type_frequency(0), 0.0);
    }

    #[test]
    fn collect_and_extend() {
        let mut s: VecStream = vec![ev(0, 20, 1), ev(0, 10, 0)].into_iter().collect();
        assert_eq!(s.events()[0].seq(), 0);
        s.extend(vec![ev(0, 5, 2)]);
        assert_eq!(s.events()[0].seq(), 2);
        assert_eq!(s.len(), 3);
    }
}

//! Property-based tests of the time arithmetic and stream invariants.

use crate::{Event, EventStream, EventType, RateReplay, SimDuration, Timestamp, VecStream};
use proptest::prelude::*;

fn arbitrary_events() -> impl Strategy<Value = Vec<(u32, u64, u64)>> {
    prop::collection::vec((0u32..8, 0u64..10_000, 0u64..1_000), 0..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Adding and subtracting the same duration is the identity (when it does
    /// not underflow), and durations compose additively.
    #[test]
    fn timestamp_duration_roundtrip(base in 0u64..1_000_000_000, delta in 0u64..1_000_000_000) {
        let t = Timestamp::from_micros(base);
        let d = SimDuration::from_micros(delta);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!(((t + d) - t), d);
        prop_assert_eq!(d + SimDuration::ZERO, d);
    }

    /// Duration scaling by integers matches repeated addition.
    #[test]
    fn duration_scaling(delta in 0u64..1_000_000, factor in 0u64..16) {
        let d = SimDuration::from_micros(delta);
        let mut acc = SimDuration::ZERO;
        for _ in 0..factor {
            acc += d;
        }
        prop_assert_eq!(d * factor, acc);
    }

    /// `from_unordered` always yields a totally ordered stream, and merging
    /// preserves the multiset of event types while producing dense sequence
    /// numbers.
    #[test]
    fn streams_are_ordered_and_merge_densely(raw in arbitrary_events(), raw_b in arbitrary_events()) {
        let build = |raw: &[(u32, u64, u64)]| -> VecStream {
            VecStream::from_unordered(
                raw.iter()
                    .map(|&(ty, ts, seq)| {
                        Event::new(EventType::from_index(ty), Timestamp::from_millis(ts), seq)
                    })
                    .collect(),
            )
        };
        let a = build(&raw);
        let b = build(&raw_b);
        prop_assert!(a.events().windows(2).all(|w| w[0] <= w[1]));

        let total = a.len() + b.len();
        let mut type_histogram = vec![0usize; 8];
        for e in a.iter().chain(b.iter()) {
            type_histogram[e.event_type().index()] += 1;
        }
        let merged = VecStream::merge(vec![a, b]);
        prop_assert_eq!(merged.len(), total);
        let seqs: Vec<u64> = merged.iter().map(Event::seq).collect();
        prop_assert!(seqs.iter().enumerate().all(|(i, &s)| s == i as u64));
        let mut merged_histogram = vec![0usize; 8];
        for e in merged.iter() {
            merged_histogram[e.event_type().index()] += 1;
        }
        prop_assert_eq!(type_histogram, merged_histogram);
    }

    /// Rate replay emits every event exactly once, in order, with arrivals
    /// spaced by 1/rate.
    #[test]
    fn rate_replay_preserves_order_and_spacing(raw in arbitrary_events(), rate in 1.0f64..10_000.0) {
        let stream = VecStream::from_unordered(
            raw.iter()
                .map(|&(ty, ts, seq)| {
                    Event::new(EventType::from_index(ty), Timestamp::from_millis(ts), seq)
                })
                .collect(),
        );
        let replayed: Vec<(Timestamp, Event)> = RateReplay::new(&stream, rate).collect();
        prop_assert_eq!(replayed.len(), stream.len());
        let gap = SimDuration::from_secs_f64(1.0 / rate);
        for (i, (arrival, event)) in replayed.iter().enumerate() {
            prop_assert_eq!(event.seq(), stream.events()[i].seq());
            let expected = Timestamp::ZERO + gap * i as u64;
            let diff = arrival.as_micros().abs_diff(expected.as_micros());
            // Rounding of the inter-arrival gap may accumulate at most one
            // microsecond per event.
            prop_assert!(diff <= i as u64 + 1);
        }
    }
}

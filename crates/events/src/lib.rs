//! Event model and stream abstractions for the eSPICE reproduction.
//!
//! Complex event processing (CEP) operators consume *primitive events*: small,
//! typed records carrying a global order (sequence number), a timestamp and a
//! payload of attribute/value pairs. This crate defines that event model plus
//! the supporting pieces every other crate in the workspace builds on:
//!
//! * [`Timestamp`] / [`SimDuration`] — microsecond-resolution simulated time,
//! * [`EventType`] / [`TypeRegistry`] — interned event types,
//! * [`AttributeValue`] / [`Attributes`] — the event payload,
//! * [`Event`] — the primitive event itself,
//! * [`stream`] — in-memory event streams and rate-controlled replay,
//! * [`source`] — incremental (pull/push) event sources for streaming
//!   ingestion.
//!
//! # Example
//!
//! ```
//! use espice_events::{Event, TypeRegistry, Timestamp, AttributeValue};
//!
//! let mut registry = TypeRegistry::new();
//! let quote = registry.intern("STOCK_QUOTE");
//!
//! let event = Event::builder(quote, Timestamp::from_secs(1))
//!     .seq(1)
//!     .attr("symbol", AttributeValue::from("IBM"))
//!     .attr("price", AttributeValue::from(182.4))
//!     .build();
//!
//! assert_eq!(event.event_type(), quote);
//! assert_eq!(event.attrs().get_str("symbol"), Some("IBM"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod attributes;
mod event;
#[cfg(test)]
mod proptests;
pub mod source;
pub mod stream;
mod time;
mod types;

pub use attributes::{AttributeValue, Attributes};
pub use event::{Event, EventBuilder, SequenceNumber};
pub use source::{EventSource, IterSource, PacedSource, PushHandle, PushSource, SliceSource};
pub use stream::{EventStream, RateReplay, StreamStats, VecStream};
pub use time::{SimDuration, Timestamp};
pub use types::{EventType, TypeRegistry};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::{
        AttributeValue, Attributes, Event, EventSource, EventStream, EventType, SimDuration,
        SliceSource, Timestamp, TypeRegistry, VecStream,
    };
}

//! Incremental event sources.
//!
//! [`EventStream`] hands the engine a fully materialised `&[Event]` slice —
//! fine for offline experiments, but it forces the whole stream to exist
//! before the first event is processed. An [`EventSource`] is the streaming
//! counterpart: a cursor that yields events one at a time, so an ingestion
//! pipeline can start shards before the stream is buffered and apply
//! backpressure to the producer instead of materialising everything up
//! front.
//!
//! Three kinds of sources cover the workloads in this repository:
//!
//! * [`SliceSource`] — replays a pre-recorded slice (the slice-compat path
//!   every existing experiment uses),
//! * [`RateReplay`] — the rate-controlled replay adaptor implements
//!   [`EventSource`] directly, yielding the events of its schedule in
//!   arrival order (the arrival *timestamps* remain the queueing
//!   simulator's domain),
//! * [`PushSource`] — the push half: a bounded channel whose
//!   [`PushHandle`] lets another thread feed events in live, with
//!   backpressure when the engine falls behind.
//!
//! [`EventStream`]: crate::EventStream

use crate::{Event, RateReplay};
use std::sync::mpsc;

/// A pull-based source of primitive events in global order.
///
/// Unlike [`EventStream`](crate::EventStream), which exposes the whole
/// stream as a slice, an `EventSource` is consumed incrementally: the
/// caller pulls one event at a time until `None` signals the end of the
/// stream. Sources are single-pass cursors; rewinding means building a new
/// source.
pub trait EventSource {
    /// The next event of the stream, or `None` once the source is
    /// exhausted.
    fn next_event(&mut self) -> Option<Event>;

    /// Bounds on the number of remaining events, mirroring
    /// [`Iterator::size_hint`].
    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }

    /// Whether this source paces delivery to wall-clock time — sleeping to a
    /// schedule ([`PacedSource`]) or blocking on a live producer
    /// ([`PushSource`]) — rather than yielding events as fast as they can be
    /// pulled. Chunked ingestion uses this as a hint: paced sources get a
    /// flush deadline so a partial chunk never waits on future arrivals,
    /// while saturated replays skip the producer-side clock reads entirely.
    fn is_paced(&self) -> bool {
        false
    }
}

/// Every source stays usable through a mutable reference (the engines take
/// `&mut Src` so callers keep ownership).
impl<S: EventSource + ?Sized> EventSource for &mut S {
    fn next_event(&mut self) -> Option<Event> {
        (**self).next_event()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (**self).size_hint()
    }

    fn is_paced(&self) -> bool {
        (**self).is_paced()
    }
}

/// Replays a pre-recorded slice of events as an incremental source.
///
/// This is the slice-compatibility path: engines that accept an
/// [`EventSource`] can run any materialised [`EventStream`](crate::EventStream)
/// through it, and a streaming run over a `SliceSource` is
/// decision-for-decision identical to a slice-driven run because the events
/// come out in exactly the stored order.
///
/// # Example
///
/// ```
/// use espice_events::{Event, EventType, Timestamp, VecStream};
/// use espice_events::source::{EventSource, SliceSource};
///
/// let stream = VecStream::from_ordered(vec![
///     Event::new(EventType::from_index(0), Timestamp::from_secs(0), 0),
///     Event::new(EventType::from_index(1), Timestamp::from_secs(1), 1),
/// ]);
/// let mut source = SliceSource::from_stream(&stream);
/// assert_eq!(source.size_hint(), (2, Some(2)));
/// assert_eq!(source.next_event().unwrap().seq(), 0);
/// assert_eq!(source.next_event().unwrap().seq(), 1);
/// assert!(source.next_event().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    events: &'a [Event],
    next: usize,
}

impl<'a> SliceSource<'a> {
    /// A source over an ordered slice of events.
    pub fn new(events: &'a [Event]) -> Self {
        SliceSource { events, next: 0 }
    }

    /// A source over the events of a materialised stream.
    pub fn from_stream<S: crate::EventStream + ?Sized>(stream: &'a S) -> Self {
        SliceSource::new(stream.events())
    }

    /// Number of events already pulled from the source.
    pub fn consumed(&self) -> usize {
        self.next
    }
}

impl EventSource for SliceSource<'_> {
    fn next_event(&mut self) -> Option<Event> {
        let event = self.events.get(self.next)?.clone();
        self.next += 1;
        Some(event)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.events.len() - self.next;
        (remaining, Some(remaining))
    }
}

/// The rate-controlled replay is itself a source: it yields the events of
/// its arrival schedule in order. The arrival timestamps the replay
/// computes are used by the queueing simulation; a live engine consuming a
/// `RateReplay` as a source applies its own (wall-clock) notion of arrival.
impl EventSource for RateReplay<'_> {
    fn next_event(&mut self) -> Option<Event> {
        self.next().map(|(_, event)| event)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        Iterator::size_hint(self)
    }
}

/// Adapts any ordered event iterator into an [`EventSource`].
#[derive(Debug)]
pub struct IterSource<I> {
    iter: I,
}

impl<I: Iterator<Item = Event>> IterSource<I> {
    /// Wraps an iterator that yields events in global order.
    pub fn new(iter: I) -> Self {
        IterSource { iter }
    }
}

impl<I: Iterator<Item = Event>> EventSource for IterSource<I> {
    fn next_event(&mut self) -> Option<Event> {
        self.iter.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.iter.size_hint()
    }
}

/// Paces any source to a wall-clock arrival schedule: event `k` (0-based)
/// is released no earlier than `k / rate` seconds after the first pull.
///
/// [`RateReplay`] computes arrival *timestamps* but yields its events
/// immediately — right for the queueing simulation, which advances its own
/// clock, but a live closed-loop engine fed that way only ever measures
/// producer saturation. Wrapping the source in a `PacedSource` makes the
/// real pipeline experience the configured input rate in real time: the
/// producer thread sleeps to the schedule, the shard queues fill exactly
/// when the drain rate falls below `rate`, and a
/// `runtime::streaming` closed-loop run becomes directly comparable to the
/// simulator's traces at the same rate.
///
/// Pacing is schedule-anchored, not inter-event: a slow consumer does not
/// stretch the schedule, it eats into the sleep of later events (bursts
/// are delivered back-to-back until the source catches up with its
/// schedule — the same catch-up behaviour a recorded feed replayed at
/// `rate` would show).
///
/// # Example
///
/// ```
/// use espice_events::{Event, EventType, Timestamp, VecStream};
/// use espice_events::source::{EventSource, PacedSource, SliceSource};
///
/// let stream = VecStream::from_ordered(vec![
///     Event::new(EventType::from_index(0), Timestamp::from_secs(0), 0),
///     Event::new(EventType::from_index(0), Timestamp::from_secs(1), 1),
/// ]);
/// // 2000 events/s: the second event is released ~500 µs after the first.
/// let mut source = PacedSource::new(SliceSource::from_stream(&stream), 2000.0);
/// assert_eq!(source.next_event().unwrap().seq(), 0);
/// assert_eq!(source.next_event().unwrap().seq(), 1);
/// assert!(source.next_event().is_none());
/// ```
#[derive(Debug)]
pub struct PacedSource<S> {
    inner: S,
    rate: f64,
    started: Option<std::time::Instant>,
    released: u64,
}

impl<S: EventSource> PacedSource<S> {
    /// Paces `inner` to `rate` events per second of wall time.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive and finite.
    pub fn new(inner: S, rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "replay rate must be positive");
        PacedSource { inner, rate, started: None, released: 0 }
    }

    /// The configured replay rate (events/s).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Events released so far.
    pub fn released(&self) -> u64 {
        self.released
    }

    /// The wrapped source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<'a> PacedSource<SliceSource<'a>> {
    /// Paces the events of a materialised stream (the most common replay
    /// shape: a recorded dataset driven at a chosen live rate).
    pub fn from_stream<St: crate::EventStream + ?Sized>(stream: &'a St, rate: f64) -> Self {
        PacedSource::new(SliceSource::from_stream(stream), rate)
    }
}

impl<S: EventSource> EventSource for PacedSource<S> {
    fn next_event(&mut self) -> Option<Event> {
        // Pull first so an exhausted source never sleeps.
        let event = self.inner.next_event()?;
        let started = *self.started.get_or_insert_with(std::time::Instant::now);
        let due = std::time::Duration::from_secs_f64(self.released as f64 / self.rate);
        let elapsed = started.elapsed();
        if due > elapsed {
            std::thread::sleep(due - elapsed);
        }
        self.released += 1;
        Some(event)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }

    fn is_paced(&self) -> bool {
        true
    }
}

/// The push half of the source abstraction: a bounded channel. The producer
/// side pushes through a [`PushHandle`] (blocking when the engine lags
/// `capacity` events behind — backpressure instead of unbounded buffering);
/// the engine drains the [`PushSource`] like any other source. The source
/// ends when every handle has been dropped.
///
/// # Example
///
/// ```
/// use espice_events::{Event, EventType, Timestamp};
/// use espice_events::source::{EventSource, PushSource};
///
/// let (handle, mut source) = PushSource::bounded(8);
/// handle.push(Event::new(EventType::from_index(0), Timestamp::ZERO, 0)).unwrap();
/// drop(handle); // end of stream
/// assert_eq!(source.next_event().unwrap().seq(), 0);
/// assert!(source.next_event().is_none());
/// ```
#[derive(Debug)]
pub struct PushSource {
    receiver: mpsc::Receiver<Event>,
}

/// Producer handle of a [`PushSource`]. Cloneable so several producers can
/// feed one engine; the stream ends when the last handle is dropped.
#[derive(Debug, Clone)]
pub struct PushHandle {
    sender: mpsc::SyncSender<Event>,
}

impl PushSource {
    /// Creates a bounded push channel holding at most `capacity` undrained
    /// events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn bounded(capacity: usize) -> (PushHandle, PushSource) {
        assert!(capacity >= 1, "push source capacity must be at least 1");
        let (sender, receiver) = mpsc::sync_channel(capacity);
        (PushHandle { sender }, PushSource { receiver })
    }
}

impl PushHandle {
    /// Pushes one event, blocking while the channel is full. Returns the
    /// event back if the consuming source has been dropped.
    pub fn push(&self, event: Event) -> Result<(), Event> {
        self.sender.send(event).map_err(|mpsc::SendError(event)| event)
    }
}

impl EventSource for PushSource {
    fn next_event(&mut self) -> Option<Event> {
        self.receiver.recv().ok()
    }

    fn is_paced(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventType, Timestamp, VecStream};

    fn ev(seq: u64) -> Event {
        Event::new(EventType::from_index(0), Timestamp::from_secs(seq), seq)
    }

    #[test]
    fn slice_source_yields_events_in_order() {
        let stream = VecStream::from_ordered(vec![ev(0), ev(1), ev(2)]);
        let mut source = SliceSource::from_stream(&stream);
        let mut seqs = Vec::new();
        while let Some(event) = source.next_event() {
            seqs.push(event.seq());
        }
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(source.consumed(), 3);
        assert_eq!(source.size_hint(), (0, Some(0)));
    }

    #[test]
    fn rate_replay_is_a_source() {
        let stream = VecStream::from_ordered(vec![ev(0), ev(1)]);
        let mut replay = RateReplay::new(&stream, 100.0);
        assert_eq!(EventSource::size_hint(&replay), (2, Some(2)));
        assert_eq!(replay.next_event().unwrap().seq(), 0);
        assert_eq!(replay.next_event().unwrap().seq(), 1);
        assert!(replay.next_event().is_none());
    }

    #[test]
    fn iter_source_wraps_any_event_iterator() {
        let mut source = IterSource::new((0..3).map(ev));
        assert_eq!(source.size_hint(), (3, Some(3)));
        assert_eq!(source.next_event().unwrap().seq(), 0);
    }

    #[test]
    fn push_source_delivers_until_all_handles_drop() {
        let (handle, mut source) = PushSource::bounded(4);
        let second = handle.clone();
        handle.push(ev(0)).unwrap();
        second.push(ev(1)).unwrap();
        drop(handle);
        drop(second);
        assert_eq!(source.next_event().unwrap().seq(), 0);
        assert_eq!(source.next_event().unwrap().seq(), 1);
        assert!(source.next_event().is_none());
    }

    #[test]
    fn push_after_source_drop_returns_the_event() {
        let (handle, source) = PushSource::bounded(1);
        drop(source);
        let rejected = handle.push(ev(7)).unwrap_err();
        assert_eq!(rejected.seq(), 7);
    }

    #[test]
    fn paced_source_holds_to_its_schedule_and_preserves_events() {
        let events: Vec<Event> = (0..40).map(ev).collect();
        let stream = VecStream::from_ordered(events.clone());
        // 40 events at 2000/s: the last event is due 39/2000 ≈ 19.5 ms
        // after the first pull.
        let mut source = PacedSource::from_stream(&stream, 2000.0);
        assert_eq!(source.size_hint(), (40, Some(40)));
        let started = std::time::Instant::now();
        let mut seqs = Vec::new();
        while let Some(event) = source.next_event() {
            seqs.push(event.seq());
        }
        let elapsed = started.elapsed();
        assert_eq!(seqs, (0..40).collect::<Vec<_>>());
        assert_eq!(source.released(), 40);
        assert!(
            elapsed >= std::time::Duration::from_secs_f64(39.0 / 2000.0),
            "paced replay finished in {elapsed:?}, faster than its schedule"
        );
    }

    #[test]
    fn paced_source_does_not_sleep_on_exhaustion() {
        let stream = VecStream::from_ordered(vec![ev(0)]);
        let mut source = PacedSource::from_stream(&stream, 0.001);
        assert!(source.next_event().is_some());
        let started = std::time::Instant::now();
        assert!(source.next_event().is_none());
        assert!(started.elapsed() < std::time::Duration::from_millis(100));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn paced_source_rejects_zero_rate() {
        let stream = VecStream::from_ordered(vec![ev(0)]);
        let _ = PacedSource::from_stream(&stream, 0.0);
    }

    #[test]
    fn sources_work_through_mutable_references() {
        fn drain<S: EventSource>(mut source: S) -> usize {
            let mut n = 0;
            while source.next_event().is_some() {
                n += 1;
            }
            n
        }
        let stream = VecStream::from_ordered(vec![ev(0), ev(1)]);
        let mut source = SliceSource::from_stream(&stream);
        assert_eq!(drain(&mut source), 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_push_source_rejected() {
        let _ = PushSource::bounded(0);
    }

    #[test]
    fn pacing_hint_marks_wall_clock_sources_and_survives_reborrows() {
        let stream = VecStream::from_ordered(vec![ev(0)]);
        let slice = SliceSource::from_stream(&stream);
        assert!(!slice.is_paced(), "a saturated replay is not paced");
        assert!(!IterSource::new(std::iter::empty()).is_paced());

        // Generic call sites see reborrowed sources as `&mut S`; the
        // blanket impl must forward the hint.
        fn hint<S: EventSource>(source: S) -> bool {
            source.is_paced()
        }
        let mut paced = PacedSource::from_stream(&stream, 1000.0);
        assert!(paced.is_paced());
        assert!(hint(&mut paced), "the hint must delegate through &mut");

        let (_handle, push) = PushSource::bounded(1);
        assert!(push.is_paced(), "a live push channel blocks on its producer");
    }
}

//! Event types and the type registry.
//!
//! eSPICE's utility model is keyed by *event type* and window position, so the
//! type of an event must be cheap to compare and to use as an index into the
//! utility table. Event types are therefore interned: the human-readable name
//! (e.g. the stock symbol `"IBM"` or the player event `"DF_7"`) is stored once
//! in a [`TypeRegistry`] and events carry only a compact [`EventType`] id.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A compact, interned identifier for an event type.
///
/// The inner index is dense (0, 1, 2, …) so it can be used directly as a row
/// index in the utility table `UT(T, P)`.
///
/// # Example
///
/// ```
/// use espice_events::TypeRegistry;
///
/// let mut registry = TypeRegistry::new();
/// let a = registry.intern("A");
/// let b = registry.intern("B");
/// assert_ne!(a, b);
/// assert_eq!(registry.intern("A"), a);
/// assert_eq!(a.index(), 0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct EventType(u32);

impl EventType {
    /// Creates an event type from a raw dense index.
    ///
    /// Prefer [`TypeRegistry::intern`]; this constructor exists for tests and
    /// for deserialisation of precomputed models.
    pub const fn from_index(index: u32) -> Self {
        EventType(index)
    }

    /// The dense index of this type (usable as a `UT` row).
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` representation.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for EventType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type#{}", self.0)
    }
}

impl From<u32> for EventType {
    fn from(raw: u32) -> Self {
        EventType(raw)
    }
}

/// Bidirectional mapping between event-type names and dense [`EventType`] ids.
///
/// The registry is append-only: once interned a name keeps its id for the
/// lifetime of the registry, which keeps utility-table rows stable across
/// model retraining.
///
/// # Example
///
/// ```
/// use espice_events::TypeRegistry;
///
/// let mut registry = TypeRegistry::new();
/// let ibm = registry.intern("IBM");
/// assert_eq!(registry.name(ibm), Some("IBM"));
/// assert_eq!(registry.lookup("IBM"), Some(ibm));
/// assert_eq!(registry.len(), 1);
/// ```
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct TypeRegistry {
    names: Vec<String>,
    by_name: HashMap<String, EventType>,
}

impl TypeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its stable id. Re-interning an existing name
    /// returns the previously assigned id.
    pub fn intern(&mut self, name: &str) -> EventType {
        if let Some(&ty) = self.by_name.get(name) {
            return ty;
        }
        let ty = EventType(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), ty);
        ty
    }

    /// Interns every name in `names`, in order, returning their ids.
    pub fn intern_all<'a, I>(&mut self, names: I) -> Vec<EventType>
    where
        I: IntoIterator<Item = &'a str>,
    {
        names.into_iter().map(|n| self.intern(n)).collect()
    }

    /// Looks up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<EventType> {
        self.by_name.get(name).copied()
    }

    /// The name associated with `ty`, if it was interned by this registry.
    pub fn name(&self, ty: EventType) -> Option<&str> {
        self.names.get(ty.index()).map(String::as_str)
    }

    /// Number of distinct types interned so far. This is the `M` dimension of
    /// the utility table.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no types have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(EventType, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (EventType, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (EventType(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut reg = TypeRegistry::new();
        let a1 = reg.intern("A");
        let a2 = reg.intern("A");
        assert_eq!(a1, a2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn indices_are_dense_and_ordered() {
        let mut reg = TypeRegistry::new();
        let ids = reg.intern_all(["x", "y", "z"]);
        assert_eq!(ids.iter().map(|t| t.index()).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn lookup_and_name_roundtrip() {
        let mut reg = TypeRegistry::new();
        let ty = reg.intern("STR");
        assert_eq!(reg.lookup("STR"), Some(ty));
        assert_eq!(reg.name(ty), Some("STR"));
        assert_eq!(reg.lookup("DF"), None);
        assert_eq!(reg.name(EventType::from_index(9)), None);
    }

    #[test]
    fn iter_preserves_interning_order() {
        let mut reg = TypeRegistry::new();
        reg.intern_all(["a", "b", "c"]);
        let names: Vec<_> = reg.iter().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_registry_reports_empty() {
        let reg = TypeRegistry::new();
        assert!(reg.is_empty());
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn display_shows_index() {
        assert_eq!(EventType::from_index(7).to_string(), "type#7");
    }
}

//! Event payloads: attribute/value pairs.
//!
//! Primitive events carry domain data (stock quote, player position, …) as a
//! small ordered set of named attributes. The eSPICE load shedder itself never
//! inspects these values — it only uses event type and window position — but
//! the CEP pattern predicates (e.g. "change is positive", "distance below
//! threshold") and the dataset generators do.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single attribute value.
///
/// The variants cover everything the synthetic datasets and queries need:
/// numbers, booleans and short strings.
///
/// # Example
///
/// ```
/// use espice_events::AttributeValue;
///
/// let price = AttributeValue::from(182.5);
/// assert_eq!(price.as_f64(), Some(182.5));
/// assert_eq!(price.as_str(), None);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttributeValue {
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A boolean flag.
    Bool(bool),
    /// A short string (symbol, player name, …).
    Text(String),
}

impl AttributeValue {
    /// Returns the value as an `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            AttributeValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as an `f64` if it is numeric (int or float).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttributeValue::Float(v) => Some(*v),
            AttributeValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the value as a `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttributeValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as a string slice if it is text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttributeValue::Text(v) => Some(v.as_str()),
            _ => None,
        }
    }
}

impl fmt::Display for AttributeValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttributeValue::Int(v) => write!(f, "{v}"),
            AttributeValue::Float(v) => write!(f, "{v}"),
            AttributeValue::Bool(v) => write!(f, "{v}"),
            AttributeValue::Text(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for AttributeValue {
    fn from(v: i64) -> Self {
        AttributeValue::Int(v)
    }
}

impl From<f64> for AttributeValue {
    fn from(v: f64) -> Self {
        AttributeValue::Float(v)
    }
}

impl From<bool> for AttributeValue {
    fn from(v: bool) -> Self {
        AttributeValue::Bool(v)
    }
}

impl From<&str> for AttributeValue {
    fn from(v: &str) -> Self {
        AttributeValue::Text(v.to_owned())
    }
}

impl From<String> for AttributeValue {
    fn from(v: String) -> Self {
        AttributeValue::Text(v)
    }
}

/// An ordered collection of named attribute values.
///
/// Events typically carry 1–4 attributes, so a small `Vec` of pairs is both
/// smaller and faster than a hash map.
///
/// # Example
///
/// ```
/// use espice_events::{Attributes, AttributeValue};
///
/// let mut attrs = Attributes::new();
/// attrs.set("change", AttributeValue::from(0.75));
/// attrs.set("symbol", AttributeValue::from("IBM"));
/// assert_eq!(attrs.get_f64("change"), Some(0.75));
/// assert_eq!(attrs.len(), 2);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attributes {
    entries: Vec<(String, AttributeValue)>,
}

impl Attributes {
    /// Creates an empty attribute set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an attribute set with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Attributes { entries: Vec::with_capacity(capacity) }
    }

    /// Sets `name` to `value`, replacing any existing value of the same name.
    pub fn set(&mut self, name: &str, value: AttributeValue) {
        if let Some(entry) = self.entries.iter_mut().find(|(n, _)| n == name) {
            entry.1 = value;
        } else {
            self.entries.push((name.to_owned(), value));
        }
    }

    /// Gets the value stored under `name`.
    pub fn get(&self, name: &str) -> Option<&AttributeValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Convenience accessor: numeric value of `name`.
    pub fn get_f64(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(AttributeValue::as_f64)
    }

    /// Convenience accessor: integer value of `name`.
    pub fn get_i64(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(AttributeValue::as_i64)
    }

    /// Convenience accessor: boolean value of `name`.
    pub fn get_bool(&self, name: &str) -> Option<bool> {
        self.get(name).and_then(AttributeValue::as_bool)
    }

    /// Convenience accessor: string value of `name`.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(AttributeValue::as_str)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the attribute set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AttributeValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }
}

impl FromIterator<(String, AttributeValue)> for Attributes {
    fn from_iter<I: IntoIterator<Item = (String, AttributeValue)>>(iter: I) -> Self {
        let mut attrs = Attributes::new();
        for (name, value) in iter {
            attrs.set(&name, value);
        }
        attrs
    }
}

impl Extend<(String, AttributeValue)> for Attributes {
    fn extend<I: IntoIterator<Item = (String, AttributeValue)>>(&mut self, iter: I) {
        for (name, value) in iter {
            self.set(&name, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversions() {
        assert_eq!(AttributeValue::from(3i64).as_i64(), Some(3));
        assert_eq!(AttributeValue::from(3i64).as_f64(), Some(3.0));
        assert_eq!(AttributeValue::from(2.5).as_f64(), Some(2.5));
        assert_eq!(AttributeValue::from(true).as_bool(), Some(true));
        assert_eq!(AttributeValue::from("abc").as_str(), Some("abc"));
        assert_eq!(AttributeValue::from("abc").as_f64(), None);
    }

    #[test]
    fn set_replaces_existing_value() {
        let mut attrs = Attributes::new();
        attrs.set("price", AttributeValue::from(1.0));
        attrs.set("price", AttributeValue::from(2.0));
        assert_eq!(attrs.len(), 1);
        assert_eq!(attrs.get_f64("price"), Some(2.0));
    }

    #[test]
    fn missing_attribute_is_none() {
        let attrs = Attributes::new();
        assert!(attrs.get("nope").is_none());
        assert!(attrs.is_empty());
    }

    #[test]
    fn typed_accessors() {
        let mut attrs = Attributes::new();
        attrs.set("n", AttributeValue::from(4i64));
        attrs.set("flag", AttributeValue::from(false));
        attrs.set("name", AttributeValue::from("player"));
        assert_eq!(attrs.get_i64("n"), Some(4));
        assert_eq!(attrs.get_bool("flag"), Some(false));
        assert_eq!(attrs.get_str("name"), Some("player"));
        assert_eq!(attrs.get_f64("name"), None);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut attrs: Attributes =
            vec![("a".to_owned(), AttributeValue::from(1i64))].into_iter().collect();
        attrs.extend(vec![("b".to_owned(), AttributeValue::from(2i64))]);
        assert_eq!(attrs.get_i64("a"), Some(1));
        assert_eq!(attrs.get_i64("b"), Some(2));
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let mut attrs = Attributes::new();
        attrs.set("x", AttributeValue::from(1i64));
        attrs.set("y", AttributeValue::from(2i64));
        let names: Vec<_> = attrs.iter().map(|(n, _)| n.to_owned()).collect();
        assert_eq!(names, vec!["x", "y"]);
    }

    #[test]
    fn display_of_values() {
        assert_eq!(AttributeValue::from(3i64).to_string(), "3");
        assert_eq!(AttributeValue::from(true).to_string(), "true");
        assert_eq!(AttributeValue::from("hi").to_string(), "hi");
    }
}
